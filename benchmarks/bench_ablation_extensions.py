"""Ablation bench — extensions and related-work baselines.

Beyond the paper's seven methods, the repository implements Remark 3
(LPF — population-division FAST), post-release smoothing, the THRESH
related-work baseline and the mean-query port.  This bench quantifies
each against the core methods so the design choices are documented with
numbers:

* LPF vs LPU/LPA on a slowly varying stream (Kalman filtering payoff);
* THRESH vs LPA on the paper's smooth families (strategy determination
  payoff);
* smoothing post-processing on LBU (free error reduction);
* MPA vs MPU for the mean query (adaptivity transfers to other queries).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import mean_squared_error
from repro.engine import run_stream
from repro.extensions import exponential_smoothing
from repro.query import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    make_sine_numeric_stream,
)
from repro.streams import make_lns, make_sin


def _mse(method, stream, epsilon, window, seeds=range(4)):
    values = []
    for seed in seeds:
        result = run_stream(method, stream, epsilon=epsilon, window=window, seed=seed)
        values.append(mean_squared_error(result.releases, result.true_frequencies))
    return float(np.mean(values))


@pytest.mark.benchmark(group="ablation-ext")
def test_lpf_filtering_payoff(benchmark):
    def run():
        stream = make_sin(n_users=10_000, horizon=120, b=0.005, seed=3)
        return {
            "LPU": _mse("LPU", stream, 0.5, 10),
            "LPA": _mse("LPA", stream, 0.5, 10),
            "LPF": _mse("LPF", stream, 0.5, 10),
        }

    mses = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("LPF ablation — MSE on slow Sin:", {k: f"{v:.2e}" for k, v in mses.items()})
    assert mses["LPF"] < mses["LPU"], "Kalman filtering should beat raw LPU"


@pytest.mark.benchmark(group="ablation-ext")
def test_thresh_vs_lpa(benchmark):
    def run():
        out = {}
        for name, stream in (
            ("LNS", make_lns(n_users=20_000, horizon=120, seed=21)),
            ("Sin", make_sin(n_users=20_000, horizon=120, seed=21)),
        ):
            out[name] = {
                "THRESH": _mse("THRESH", stream, 1.0, 20),
                "LPA": _mse("LPA", stream, 1.0, 20),
            }
        return out

    mses = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for name, row in mses.items():
        print(
            f"THRESH ablation — {name}: THRESH={row['THRESH']:.2e} "
            f"LPA={row['LPA']:.2e}"
        )
        assert row["LPA"] < row["THRESH"]


@pytest.mark.benchmark(group="ablation-ext")
def test_smoothing_payoff_on_lbu(benchmark):
    def run():
        stream = make_lns(n_users=10_000, horizon=120, seed=5)
        raw_mse, smooth_mse = [], []
        for seed in range(4):
            result = run_stream("LBU", stream, epsilon=1.0, window=20, seed=seed)
            raw_mse.append(
                mean_squared_error(result.releases, result.true_frequencies)
            )
            smoothed = exponential_smoothing(result.releases, alpha=0.15)
            smooth_mse.append(
                mean_squared_error(smoothed, result.true_frequencies)
            )
        return float(np.mean(raw_mse)), float(np.mean(smooth_mse))

    raw, smooth = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(f"Smoothing ablation — LBU raw={raw:.2e}, EWMA(0.15)={smooth:.2e}")
    assert smooth < raw


@pytest.mark.benchmark(group="ablation-ext")
def test_mean_query_adaptivity(benchmark):
    def run():
        stream = make_sine_numeric_stream(
            n_users=8_000, horizon=100, amplitude=0.3, period=80, seed=5
        )
        mpu = MeanPopulationUniform().run(stream, 1.0, 10, seed=1)
        mpa = MeanPopulationAbsorption().run(stream, 1.0, 10, seed=1)
        return {"MPU": mpu.mse, "MPA": mpa.mse}

    mses = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Mean-query ablation — MSE:", {k: f"{v:.2e}" for k, v in mses.items()})
    # Both must track; adaptivity should not lose by more than 2x and
    # typically wins on streams with slow segments.
    assert mses["MPA"] < 2.0 * mses["MPU"]
