"""Ablation bench — closed-form theory vs simulation, and design choices.

Not a paper figure, but the quantitative backbone of Sections 5.4 / 6.3:

* Theorem 6.1: measured MSE(LPU) < MSE(LBU), and both match their
  closed forms V(eps, N/w) / V(eps/w, N) on a static stream;
* Eq. (8)-(11): the per-publication variance ordering LPD < LBD and
  LPA < LBA across publication counts;
* design-choice ablations DESIGN.md calls out: frequency oracle choice
  (GRR vs OUE at small/large domains) and the dissimilarity bias
  correction of Theorem 5.2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    mean_squared_error,
    mse_lbu,
    mse_lpu,
    publication_variance_lba,
    publication_variance_lbd,
    publication_variance_lpa,
    publication_variance_lpd,
)
from repro.engine import run_stream
from repro.freq_oracles import get_oracle
from repro.streams import make_constant


@pytest.mark.benchmark(group="ablation")
def test_theorem_6_1_theory_vs_simulation(benchmark):
    def run():
        stream = make_constant(n_users=10_000, horizon=60, p=0.1, seed=2)
        eps, w = 1.0, 10
        measured = {}
        for method in ("LBU", "LPU"):
            mses = [
                mean_squared_error(
                    run_stream(method, stream, epsilon=eps, window=w, seed=s).releases,
                    stream.frequency_matrix(),
                )
                for s in range(8)
            ]
            measured[method] = float(np.mean(mses))
        predicted = {
            "LBU": mse_lbu(eps, stream.n_users, w, 2),
            "LPU": mse_lpu(eps, stream.n_users, w, 2),
        }
        return measured, predicted

    measured, predicted = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Theorem 6.1 — MSE, measured vs closed form:")
    for method in ("LBU", "LPU"):
        print(
            f"  {method}: measured={measured[method]:.3e} "
            f"predicted={predicted[method]:.3e}"
        )
    assert measured["LPU"] < measured["LBU"]
    for method in ("LBU", "LPU"):
        assert measured[method] == pytest.approx(predicted[method], rel=0.35)


@pytest.mark.benchmark(group="ablation")
def test_eq_8_to_11_variance_orderings(benchmark):
    def run():
        rows = []
        for m in (1, 2, 4, 8, 16):
            rows.append(
                {
                    "m": m,
                    "LBD": publication_variance_lbd(1.0, 200_000, m, 2),
                    "LBA": publication_variance_lba(1.0, 200_000, m, 20, 2),
                    "LPD": publication_variance_lpd(1.0, 200_000, m, 2),
                    "LPA": publication_variance_lpa(1.0, 200_000, m, 20, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Eqs. (8)-(11) — per-window publication variance:")
    for row in rows:
        print(
            f"  m={row['m']:>2}  LBD={row['LBD']:.3e} LBA={row['LBA']:.3e} "
            f"LPD={row['LPD']:.3e} LPA={row['LPA']:.3e}"
        )
    for row in rows:
        if row["m"] <= 20:
            assert row["LPD"] < row["LBD"]
            assert row["LPA"] < row["LBA"]


@pytest.mark.benchmark(group="ablation")
def test_oracle_choice_ablation(benchmark):
    """GRR wins for small domains, OUE for large domains — the standard FO
    crossover, which justifies making the oracle pluggable."""

    def run():
        out = {}
        for d in (2, 64):
            out[d] = {
                name: get_oracle(name).variance(1.0, 10_000, d)
                for name in ("grr", "oue")
            }
        return out

    variances = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Oracle ablation — V(eps=1, n=10k):", variances)
    assert variances[2]["grr"] < variances[2]["oue"]
    assert variances[64]["oue"] < variances[64]["grr"]


@pytest.mark.benchmark(group="ablation")
def test_dissimilarity_bias_correction_ablation(benchmark):
    """Theorem 5.2's variance subtraction matters: the uncorrected raw
    squared distance overestimates dis* by exactly the FO variance, which
    would push adaptive methods toward needless publications."""
    from repro.freq_oracles import GRR
    from repro.mechanisms import estimate_dissimilarity

    def run():
        oracle = GRR()
        rng = np.random.default_rng(0)
        true_counts = np.array([1_000, 9_000])
        last = np.array([0.1, 0.9])  # equals the truth: dis* = 0
        corrected, raw = [], []
        for _ in range(300):
            est = oracle.sample_aggregate(true_counts, 1.0, rng=rng)
            corrected.append(estimate_dissimilarity(est, last))
            raw.append(float(np.mean((est.frequencies - last) ** 2)))
        return float(np.mean(corrected)), float(np.mean(raw)), est.variance

    corrected_mean, raw_mean, variance = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    print()
    print(
        f"Bias correction — corrected mean={corrected_mean:.2e}, "
        f"raw mean={raw_mean:.2e}, FO variance={variance:.2e}"
    )
    assert abs(corrected_mean) < raw_mean / 5
    assert raw_mean == pytest.approx(variance, rel=0.2)
