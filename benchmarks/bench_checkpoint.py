"""Checkpoint round-trip cost — snapshot/serialize/restore timing.

A durable session pays for its crash-safety in checkpoint writes: every
``--checkpoint-every`` chunks the server captures the full session state,
JSON-encodes it and atomically replaces ``checkpoint.json``.  This bench
times the three legs of that round trip — :meth:`snapshot`, JSON
encode+decode, :meth:`restore <repro.engine.StreamSession.restore>` —
across a small mechanism matrix and payload-relevant knobs (store
capacity, trace recording), prints the table, and (as a script) writes
the JSON record CI uploads so the persistence overhead is tracked per
PR.

The pytest entry asserts sanity floors only (a round trip completes and
is bit-faithful); absolute numbers are the artifact's job — CI runners
are time-shared and absolute thresholds flake.

Run as a script::

    python benchmarks/bench_checkpoint.py --size smoke --out bench_checkpoint.json

or under pytest (sizes via BENCH_SIZE, like every other bench)::

    pytest benchmarks/bench_checkpoint.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if REPO_SRC not in sys.path:  # script mode without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.engine import StreamSession  # noqa: E402
from repro.streams import MaterializedStream  # noqa: E402

#: Workload per size tier: (horizon, n_users, domain_size).
_SIZES = {
    "smoke": (400, 2_048, 32),
    "default": (2_000, 8_192, 32),
    "paper": (8_000, 50_000, 64),
}

#: (mechanism, oracle, record_trace, store_capacity) rows.  The traced
#: unbounded-store row carries the largest payload (full release trace +
#: every store slot); the trace-free bounded row is the serve default.
_CONFIGS = (
    ("LBD", "grr", False, 64),
    ("LBD", "grr", True, None),
    ("LPU", "oue", False, 64),
    ("LPA", "olh", True, None),
)

_SEED = 31
_WINDOW = 10
_EPSILON = 1.0
_REPEATS = 5


def _dataset(size: str) -> MaterializedStream:
    horizon, n_users, domain = _SIZES[size]
    values = np.random.default_rng(_SEED).integers(
        0, domain, size=(horizon, n_users)
    )
    return MaterializedStream(values, domain_size=domain)


def _session(dataset, mechanism, oracle, record_trace, capacity, horizon):
    session = StreamSession(
        mechanism,
        dataset,
        _EPSILON,
        _WINDOW,
        horizon=horizon,
        oracle=oracle,
        seed=_SEED,
        record_trace=record_trace,
    )
    session.attach_store(capacity)
    return session.start()


def _time(fn, repeats=_REPEATS):
    """Best-of-N wall time plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def measure(size: str) -> dict:
    """Time every configuration; return the timing record."""
    horizon, n_users, domain = _SIZES[size]
    dataset = _dataset(size)
    split = horizon // 2
    rows = []
    for mechanism, oracle, record_trace, capacity in _CONFIGS:
        live = _session(
            dataset, mechanism, oracle, record_trace, capacity, horizon
        )
        live.observe_many(0, split)

        snap_s, payload = _time(live.snapshot)
        encode_s, text = _time(lambda: json.dumps(payload))
        decode_s, decoded = _time(lambda: json.loads(text))
        restore_s, restored = _time(
            lambda: StreamSession.restore(decoded, _dataset(size))
        )

        # Bit-fidelity check before trusting any timing: the restored
        # session must finish the stream exactly like the live one.
        # Trace-free sessions compare through their stores (finalize()
        # requires a trace).
        live.observe_many(split, horizon - split)
        restored.observe_many(split, horizon - split)
        if record_trace:
            a, b = live.finalize(), restored.finalize()
            assert np.array_equal(a.releases, b.releases), (
                f"restore diverged for {mechanism}/{oracle}"
            )
            assert a.total_reports == b.total_reports
        else:
            t0, t1 = horizon - _WINDOW, horizon - 1
            assert np.array_equal(
                live.store.window_sum(t0, t1),
                restored.store.window_sum(t0, t1),
            ), f"restore diverged for {mechanism}/{oracle}"

        rows.append(
            {
                "mechanism": mechanism,
                "oracle": oracle,
                "record_trace": record_trace,
                "store_capacity": capacity,
                "payload_bytes": len(text),
                "snapshot_ms": snap_s * 1e3,
                "encode_ms": encode_s * 1e3,
                "decode_ms": decode_s * 1e3,
                "restore_ms": restore_s * 1e3,
                "roundtrip_ms": (snap_s + encode_s + decode_s + restore_s)
                * 1e3,
            }
        )
    return {
        "bench": "checkpoint_roundtrip",
        "size": size,
        "horizon": horizon,
        "split": split,
        "n_users": n_users,
        "domain_size": domain,
        "repeats": _REPEATS,
        "rows": rows,
        "max_roundtrip_ms": max(row["roundtrip_ms"] for row in rows),
    }


def _report(record: dict) -> str:
    lines = [
        f"checkpoint round trip — size={record['size']} "
        f"(T={record['horizon']}, snapshot at t={record['split']}, "
        f"N={record['n_users']}, d={record['domain_size']}), "
        f"best of {record['repeats']}",
        f"{'config':>22} {'payload':>10} {'snap':>8} {'enc':>8} "
        f"{'dec':>8} {'restore':>8} {'total':>8}",
    ]
    for row in record["rows"]:
        config = (
            f"{row['mechanism']}/{row['oracle']}"
            f"{'+trace' if row['record_trace'] else ''}"
            f"[{row['store_capacity'] or 'inf'}]"
        )
        lines.append(
            f"{config:>22} {row['payload_bytes'] / 1024:>9.1f}K "
            f"{row['snapshot_ms']:>7.2f} {row['encode_ms']:>7.2f} "
            f"{row['decode_ms']:>7.2f} {row['restore_ms']:>7.2f} "
            f"{row['roundtrip_ms']:>7.2f}  (ms)"
        )
    lines.append(
        f"worst full round trip: {record['max_roundtrip_ms']:.2f} ms "
        f"(all restores bit-identical)"
    )
    return "\n".join(lines)


def test_checkpoint_roundtrip_timing(size):
    """Pytest entry: the round trip completes and stays bit-faithful."""
    record = measure(size)
    print()
    print(_report(record))
    for row in record["rows"]:
        assert row["payload_bytes"] > 0
        assert row["roundtrip_ms"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="smoke", choices=sorted(_SIZES))
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON record here"
    )
    args = parser.parse_args(argv)
    record = measure(args.size)
    print(_report(record))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
