"""Fig. 4 — data utility (MRE) vs privacy budget epsilon, w = 20.

Paper: 6 datasets × 7 methods × eps in {0.5, 1, 1.5, 2, 2.5}.  This bench
regenerates the LNS and Taxi panels (one synthetic, one simulator) at bench
scale and asserts the paper's qualitative findings:

* MRE decreases with epsilon for every method;
* population-division methods beat budget-division methods.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig4_utility_vs_epsilon, format_figure

EPSILONS = (0.5, 1.0, 1.5, 2.0, 2.5)


def _run(size):
    return fig4_utility_vs_epsilon(
        datasets=("LNS", "Taxi"),
        epsilons=EPSILONS,
        window=20,
        size=size,
        repeats=2,
        seed=42,
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_series(benchmark, size):
    series = benchmark.pedantic(_run, args=(size,), iterations=1, rounds=1)
    print()
    print("Fig. 4 — MRE vs epsilon (w=20)")
    print(format_figure(series, x_label="epsilon"))

    for dataset, methods in series.items():
        # Trend: more budget, less error (compare the endpoints).
        for method, values in methods.items():
            assert values[2.5] < values[0.5] * 1.3, (
                f"{method} on {dataset}: MRE should fall with epsilon"
            )
        # Family ordering at eps = 1 (the paper's headline).
        assert methods["LPU"][1.0] < methods["LBU"][1.0]
        assert methods["LPA"][1.0] < methods["LBA"][1.0]
        assert methods["LPD"][1.0] < methods["LBD"][1.0]
