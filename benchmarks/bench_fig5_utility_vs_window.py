"""Fig. 5 — data utility (MRE) vs window size w, eps = 1.

Paper: MRE grows with w for all methods; LBD degrades fastest (exponential
budget decay leaves the newest timestamps almost no budget), LBA stays
usable, and the population methods keep a wide margin over the budget ones.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig5_utility_vs_window, format_figure

WINDOWS = (10, 20, 30, 40, 50)


def _run(size):
    return fig5_utility_vs_window(
        datasets=("Sin", "Foursquare"),
        windows=WINDOWS,
        epsilon=1.0,
        size=size,
        repeats=2,
        seed=42,
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5_series(benchmark, size):
    series = benchmark.pedantic(_run, args=(size,), iterations=1, rounds=1)
    print()
    print("Fig. 5 — MRE vs window size (eps=1)")
    print(format_figure(series, x_label="w"))

    for dataset, methods in series.items():
        # Non-adaptive methods grow monotonically-ish with w (endpoints).
        for method in ("LBU", "LPU"):
            assert methods[method][50] > methods[method][10], (
                f"{method} on {dataset}: MRE should grow with w"
            )
        # Population division keeps its advantage at every window size.
        for w in WINDOWS:
            assert methods["LPU"][w] < methods["LBU"][w]
        # LBA more robust than LBD at the largest window (Fig. 5 text).
        assert methods["LBA"][50] < methods["LBD"][50]
