"""Fig. 6 — impact of dataset parameters (eps = 1, w = 30).

Panels (a,b): MRE vs population N on LNS and Sin — error falls with N for
every method.  Panels (c,d): MRE vs fluctuation (sqrt(Q) for LNS, b for
Sin) — the data-dependent methods degrade as fluctuation grows, and the
population family dominates the budget family throughout.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig6_fluctuation,
    fig6_population,
    format_figure,
)


def _run_population(size):
    populations = (
        (2_000, 4_000, 8_000, 16_000)
        if size == "smoke"
        else (10_000, 20_000, 40_000, 80_000)
    )
    horizon = 60 if size == "smoke" else 200
    return fig6_population(
        populations=populations,
        horizon=horizon,
        epsilon=1.0,
        window=30,
        repeats=2,
        seed=7,
    )


def _run_fluctuation(size):
    n_users = 6_000 if size == "smoke" else 20_000
    horizon = 60 if size == "smoke" else 200
    return fig6_fluctuation(
        n_users=n_users,
        horizon=horizon,
        epsilon=1.0,
        window=30,
        repeats=2,
        seed=7,
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_population_panels(benchmark, size):
    series = benchmark.pedantic(_run_population, args=(size,), iterations=1, rounds=1)
    print()
    print("Fig. 6(a,b) — MRE vs population N (eps=1, w=30)")
    print(format_figure(series, x_label="N"))
    for dataset, methods in series.items():
        xs = sorted(next(iter(methods.values())))
        for method, values in methods.items():
            assert values[xs[-1]] < values[xs[0]], (
                f"{method} on {dataset}: MRE should fall with N"
            )


@pytest.mark.benchmark(group="fig6")
def test_fig6_fluctuation_panels(benchmark, size):
    series = benchmark.pedantic(_run_fluctuation, args=(size,), iterations=1, rounds=1)
    print()
    print("Fig. 6(c,d) — MRE vs fluctuation (Q for LNS, b for Sin)")
    print(format_figure(series, x_label="fluctuation"))
    for methods in series.values():
        xs = sorted(next(iter(methods.values())))
        # Budget family stays worse than population family at every x.
        for x in xs:
            assert methods["LPU"][x] < methods["LBU"][x]
    # LSP is hurt by fluctuation: compare its endpoints on LNS.
    lns = series["LNS"]["LSP"]
    xs = sorted(lns)
    assert lns[xs[-1]] > lns[xs[0]]
