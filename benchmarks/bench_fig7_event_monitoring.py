"""Fig. 7 — ROC curves for above-threshold event monitoring (eps=1, w=50).

Paper: population-division methods detect extreme events better than LBA;
LSP generally performs the worst despite its low MRE because its fixed
sampling misses real-time changes.  This bench prints the AUC table for
the regenerated curves and asserts the family-level ordering on a
fast-moving LNS variant where staleness matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import monitoring_roc
from repro.engine import run_stream
from repro.experiments import (
    fig7_event_monitoring,
    format_roc_summary,
    make_dataset,
)


def _run(size):
    return fig7_event_monitoring(
        datasets=("LNS", "Sin", "Taxi"),
        epsilon=1.0,
        window=50 if size != "smoke" else 20,
        size=size,
        seed=11,
    )


@pytest.mark.benchmark(group="fig7")
def test_fig7_roc_curves(benchmark, size):
    curves = benchmark.pedantic(_run, args=(size,), iterations=1, rounds=1)
    print()
    print("Fig. 7 — event-monitoring ROC (AUC per dataset x method)")
    print(format_roc_summary(curves))
    for dataset, methods in curves.items():
        for method, curve in methods.items():
            assert 0.0 <= curve.auc <= 1.0
            assert curve.false_positive_rate[-1] == pytest.approx(1.0)


@pytest.mark.benchmark(group="fig7")
def test_fig7_population_beats_lsp_on_fast_stream(benchmark):
    """On a fast-moving stream with w=50, adaptive population methods beat
    the stale LSP snapshots (the paper's Fig. 7 takeaway)."""

    def run():
        stream = make_dataset(
            "LNS", n_users=40_000, horizon=300, q_std=0.008, seed=13
        )
        aucs = {}
        for method in ("LSP", "LPD", "LPA"):
            scores = []
            for seed in range(3):
                result = run_stream(
                    method, stream, epsilon=1.0, window=50, seed=seed
                )
                scores.append(
                    monitoring_roc(result.releases, result.true_frequencies).auc
                )
            aucs[method] = float(np.mean(scores))
        return aucs

    aucs = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Fig. 7 (fast LNS) — AUC:", {k: round(v, 3) for k, v in aucs.items()})
    assert aucs["LPA"] > aucs["LSP"]
    assert aucs["LPD"] > aucs["LSP"]
