"""Fig. 8 — communication frequency per user (CFPU) on LNS.

Four panels: CFPU vs N, vs fluctuation Q, vs epsilon, vs window w.
Paper shape asserted here:

* budget-division CFPU >= 1 (LBU exactly 1; LBD/LBA above 1);
* population-division CFPU ~ 1/w, with LPD and LPA *below* LPU;
* CFPU of LPD/LPA increases with epsilon (cheaper publications);
* CFPU of LSP/LPU scales as 1/w.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig8_communication, format_figure


def _run(size):
    n = 6_000 if size == "smoke" else 20_000
    horizon = 80 if size == "smoke" else 200
    return fig8_communication(
        populations=(2_000, 4_000, 8_000) if size == "smoke" else (5_000, 10_000, 20_000),
        q_values=(0.01, 0.02, 0.04, 0.08),
        epsilons=(0.5, 1.0, 1.5, 2.0),
        windows=(10, 20, 30, 40),
        n_users=n,
        horizon=horizon,
        epsilon=1.0,
        window=20,
        seed=23,
    )


@pytest.mark.benchmark(group="fig8")
def test_fig8_cfpu_panels(benchmark, size):
    panels = benchmark.pedantic(_run, args=(size,), iterations=1, rounds=1)
    print()
    print("Fig. 8 — CFPU on LNS (panels: N, Q, epsilon, window)")
    print(format_figure(panels, x_label="x"))

    for panel_name, methods in panels.items():
        for x, value in methods["LBU"].items():
            assert value == pytest.approx(1.0), "LBU reports exactly once/step"
        for x in methods["LBD"]:
            assert methods["LBD"][x] > 1.0
            assert methods["LBA"][x] > 1.0
            assert methods["LPD"][x] < methods["LPU"][x] + 1e-9
            assert methods["LPA"][x] < methods["LPU"][x] + 1e-9

    # Panel-specific trends.
    eps_panel = panels["epsilon"]
    assert eps_panel["LPA"][2.0] >= eps_panel["LPA"][0.5] - 1e-3, (
        "more budget -> cheaper publications -> CFPU should not fall"
    )
    w_panel = panels["window"]
    assert w_panel["LPU"][40.0] < w_panel["LPU"][10.0], "LPU CFPU scales as 1/w"
    assert w_panel["LSP"][40.0] < w_panel["LSP"][10.0]
