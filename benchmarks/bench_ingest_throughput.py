"""Bulk-ingestion throughput — steps/sec, looped vs chunked sessions.

A trace-free "unbounded" :class:`~repro.engine.StreamSession` advanced
one :meth:`observe` at a time pays Python-level overhead at every
timestamp: context objects, per-step accounting, one oracle draw per
round.  :meth:`observe_many` ingests a whole chunk per call — mechanism
chunk kernels batch their collection rounds through the oracles'
order-preserving run samplers, the accountant charges spans in one
scalar loop, and truth histograms amortise — while staying bit-identical
to the loop (verified here per configuration before timing).

This bench measures steps/sec for the looped and chunked paths over a
small (mechanism × oracle) matrix, trace-free and traced, prints the
table, and (as a script) writes a JSON record CI uploads so the perf
trajectory is tracked per PR.  The headline ``speedup`` is the
worst chunk>=64 trace-free speedup across the *vectorized* rows —
mechanisms with a chunk kernel on oracles whose run sampler is a single
batched draw (OUE/SUE/OLH/HR).  GRR rows are reported too but excluded
from the floor: GRR's per-round binomial→multinomial interleaving
cannot be reordered into one draw without breaking bit-identity, so its
chunked path only sheds the engine overhead around the draws.

Run as a script::

    python benchmarks/bench_ingest_throughput.py --size smoke --out bench_ingest.json

or under pytest (sizes via BENCH_SIZE, like every other bench)::

    pytest benchmarks/bench_ingest_throughput.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if REPO_SRC not in sys.path:  # script mode without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.engine import StreamSession  # noqa: E402
from repro.streams import MaterializedStream  # noqa: E402

#: Workload per size tier: (horizon, n_users, domain_size).
_SIZES = {
    "smoke": (1_500, 2_048, 32),
    "default": (6_000, 8_192, 32),
    "paper": (20_000, 50_000, 32),
}

#: (mechanism, oracle, vectorized) rows; ``vectorized`` rows carry the
#: speedup floor (chunk kernel + single-draw run sampler).
_CONFIGS = (
    ("LBU", "oue", True),
    ("LBU", "olh", True),
    ("LPU", "olh", True),
    ("LBU", "grr", False),
    ("LBD", "grr", False),  # adaptive: per-step fallback inside the chunk
)

_CHUNKS = (64, 256)
_SEED = 23
_WINDOW = 10
_EPSILON = 1.0


def _dataset(size: str) -> MaterializedStream:
    horizon, n_users, domain = _SIZES[size]
    values = np.random.default_rng(_SEED).integers(
        0, domain, size=(horizon, n_users)
    )
    return MaterializedStream(values, domain_size=domain)


def _session(dataset, mechanism, oracle, record_trace):
    return StreamSession(
        mechanism,
        dataset,
        _EPSILON,
        _WINDOW,
        oracle=oracle,
        seed=_SEED,
        record_trace=record_trace,
    ).start()


def _drive(session, horizon: int, chunk: int) -> float:
    """Advance ``session`` over the horizon; return elapsed seconds."""
    started = time.perf_counter()
    if chunk == 1:
        for t in range(horizon):
            session.observe(t)
    else:
        t = 0
        while t < horizon:
            t += len(session.observe_many(t, min(chunk, horizon - t)))
    return time.perf_counter() - started


def _assert_identical(dataset, mechanism, oracle, horizon):
    """Chunked releases must equal the looped ones bit for bit."""
    looped = _session(dataset, mechanism, oracle, record_trace=True)
    _drive(looped, horizon, 1)
    chunked = _session(dataset, mechanism, oracle, record_trace=True)
    _drive(chunked, horizon, 97)  # deliberately window-misaligned
    a, b = looped.finalize(), chunked.finalize()
    assert np.array_equal(a.releases, b.releases), (
        f"chunked ingestion diverged for {mechanism}/{oracle}"
    )
    assert a.total_reports == b.total_reports
    assert a.max_window_spend == b.max_window_spend


def measure(size: str) -> dict:
    """Time every configuration; return the throughput record."""
    horizon, n_users, domain = _SIZES[size]
    dataset = _dataset(size)
    check_span = min(horizon, 400)
    rows = []
    for mechanism, oracle, vectorized in _CONFIGS:
        _assert_identical(dataset, mechanism, oracle, check_span)
        row = {
            "mechanism": mechanism,
            "oracle": oracle,
            "vectorized": vectorized,
        }
        for record_trace in (False, True):
            label = "traced" if record_trace else "trace_free"
            looped = _drive(
                _session(dataset, mechanism, oracle, record_trace),
                horizon,
                1,
            )
            row[f"{label}_looped_steps_per_sec"] = horizon / looped
            for chunk in _CHUNKS:
                chunked = _drive(
                    _session(dataset, mechanism, oracle, record_trace),
                    horizon,
                    chunk,
                )
                row[f"{label}_chunk{chunk}_steps_per_sec"] = horizon / chunked
                row[f"{label}_chunk{chunk}_speedup"] = looped / chunked
        rows.append(row)
    floor_rows = [row for row in rows if row["vectorized"]]
    speedup = min(
        max(row[f"trace_free_chunk{chunk}_speedup"] for chunk in _CHUNKS)
        for row in floor_rows
    )
    return {
        "bench": "ingest_throughput",
        "size": size,
        "horizon": horizon,
        "n_users": n_users,
        "domain_size": domain,
        "chunks": list(_CHUNKS),
        "rows": rows,
        # Headline floor: every vectorized (chunk kernel + batched run
        # sampler) row's best trace-free speedup at chunk >= 64; the
        # minimum across rows is what the CI rail guards.
        "speedup": speedup,
    }


def _report(record: dict) -> str:
    lines = [
        f"bulk-ingestion throughput — size={record['size']} "
        f"(T={record['horizon']}, N={record['n_users']}, "
        f"d={record['domain_size']}), steps/sec",
        f"{'config':>10} {'mode':>11} {'looped':>9} "
        + "".join(f"{f'chunk {c}':>10}{'':>8}" for c in record["chunks"]),
    ]
    for row in record["rows"]:
        config = f"{row['mechanism']}/{row['oracle']}"
        for label, title in (("trace_free", "trace-free"), ("traced", "traced")):
            cells = "".join(
                f"{row[f'{label}_chunk{c}_steps_per_sec']:>10.0f}"
                f"{row[f'{label}_chunk{c}_speedup']:>7.2f}x"
                for c in record["chunks"]
            )
            lines.append(
                f"{config:>10} {title:>11} "
                f"{row[f'{label}_looped_steps_per_sec']:>9.0f}{cells}"
            )
    lines.append(
        f"floor speedup (vectorized rows, trace-free, chunk >= 64): "
        f"{record['speedup']:.2f}x (results bit-identical)"
    )
    return "\n".join(lines)


def test_chunked_ingest_speedup(size):
    """Pytest entry: chunked ingestion must beat the per-step loop."""
    record = measure(size)
    print()
    print(_report(record))
    # The acceptance bar is 2x on an idle machine; assert a conservative
    # floor so a time-shared CI runner cannot flake the suite.
    assert record["speedup"] > 1.6, (
        f"expected chunked ingestion to amortise per-step overhead, "
        f"measured {record['speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="smoke", choices=sorted(_SIZES))
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON record here"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the floor speedup falls below this",
    )
    args = parser.parse_args(argv)
    record = measure(args.size)
    print(_report(record))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x < {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
