"""Bulk-ingestion throughput — steps/sec, looped vs chunked sessions.

A trace-free "unbounded" :class:`~repro.engine.StreamSession` advanced
one :meth:`observe` at a time pays Python-level overhead at every
timestamp: context objects, per-step accounting, one oracle draw per
round.  :meth:`observe_many` ingests a whole chunk per call — mechanism
chunk kernels batch their collection rounds through the oracles'
order-preserving run samplers, the accountant charges spans in one
scalar loop, and truth histograms amortise — while staying bit-identical
to the loop (verified here per configuration before timing).

This bench measures steps/sec for the looped and chunked paths over a
small (mechanism × oracle) matrix, trace-free and traced, prints the
table, and (as a script) writes a JSON record CI uploads so the perf
trajectory is tracked per PR.  The headline ``speedup`` is the
worst chunk>=64 trace-free speedup across the *vectorized* rows —
mechanisms with a chunk kernel on oracles whose run sampler is a single
batched draw (OUE/SUE/OLH/HR).  GRR rows are reported too but excluded
from the floor: GRR's per-round binomial→multinomial interleaving
cannot be reordered into one draw without breaking bit-identity, so its
chunked path only sheds the engine overhead around the draws.

The *adaptive* mechanisms get their own section: each row times the
per-step loop, the chunked kernel (hybrid sequential/speculative for
LBD/LBA, streamlined round loop for LPD/LPA) and the generic per-step
fallback the same chunk sizes used to hit before these kernels existed
(forced by clearing ``chunk_kernel`` on the mechanism instance).  Two
workload regimes are measured, because the speedup physically depends
on the publication cadence:

* ``drift`` — the shared noisy workload, where the dissimilarity signal
  is noise-dominated and publications land every few steps.  Here the
  kernels run mostly sequential rounds: wins come from hoisted oracle
  setup, cached error terms and single-call stacked draws (modest,
  guarded by ``ADAPTIVE_FLOOR``).
* ``stable`` — a static stream with a small window and a larger domain,
  which pushes the publication error several sigmas above the
  dissimilarity noise: LBD never publishes and its kernel stays in
  speculative batching the whole horizon.  This is the regime the
  speculative design targets (>=2x, guarded by
  ``ADAPTIVE_STABLE_FLOOR``).  LBA is deliberately absent: absorption
  grows the publication budget with every skipped step, so its
  publication error shrinks until a publish happens — a publish-free
  stretch long enough for deep speculation does not arise.

``adaptive_speedup`` / ``adaptive_stable_speedup`` are the worst
kernel-vs-fallback ratios per regime and carry their own CI floors;
``adaptive_gap_ratio`` publishes each drift row's throughput as a
fraction of its uniform peer's (LBD/LBA vs LBU, LPD/LPA vs LPU) so the
cost of adaptivity is tracked per PR.  The record also carries
``kernels_backend`` (:func:`repro.engine.kernels_fast.backend`) so the
perf trajectory distinguishes numpy-fallback runs from compiled ones.

Run as a script::

    python benchmarks/bench_ingest_throughput.py --size smoke --out bench_ingest.json

or under pytest (sizes via BENCH_SIZE, like every other bench)::

    pytest benchmarks/bench_ingest_throughput.py -s
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if REPO_SRC not in sys.path:  # script mode without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.engine import StreamSession  # noqa: E402
from repro.streams import MaterializedStream  # noqa: E402

#: Workload per size tier: (horizon, n_users, domain_size).
_SIZES = {
    "smoke": (1_500, 2_048, 32),
    "default": (6_000, 8_192, 32),
    "paper": (20_000, 50_000, 32),
}

#: (mechanism, oracle, vectorized) rows; ``vectorized`` rows carry the
#: speedup floor (chunk kernel + single-draw run sampler).
_CONFIGS = (
    ("LBU", "oue", True),
    ("LBU", "olh", True),
    ("LPU", "olh", True),
    ("LBU", "grr", False),
)

#: Adaptive rows: (mechanism, oracle, uniform peer for the gap ratio,
#: regime).  Oracles match the peers' so the gap ratio isolates the cost
#: of adaptivity; stable rows have no peer (different workload).
_ADAPTIVE_CONFIGS = (
    ("LBD", "oue", ("LBU", "oue"), "drift"),
    ("LBA", "oue", ("LBU", "oue"), "drift"),
    ("LPD", "olh", ("LPU", "olh"), "drift"),
    ("LPA", "olh", ("LPU", "olh"), "drift"),
    ("LBD", "oue", None, "stable"),
)

_CHUNKS = (64, 256)
_SEED = 23
_WINDOW = 10
_EPSILON = 1.0

#: Stable-regime workload: a static stream with a small window and a
#: larger domain keeps the publication error ~6 sigmas above the
#: dissimilarity noise, so LBD never publishes and its chunk kernel
#: stays in speculative batching for the whole horizon.
_STABLE_WINDOW = 2
_STABLE_DOMAIN = 64

#: CI rails for the adaptive kernels (vs the generic per-step fallback),
#: conservative so a time-shared CI runner cannot flake the suite.  On
#: the drift workload publications land every few steps, the kernels run
#: mostly sequential rounds, and the (noise-dominated) draws bound the
#: achievable win to ~1.1-1.5x — the rail only guards against regressing
#: below fallback speed.  The speculative >=2x acceptance bar lives on
#: the stable rail (measured 2.5-3.2x on an idle machine).
ADAPTIVE_FLOOR = 1.0
ADAPTIVE_STABLE_FLOOR = 1.7


def _dataset(size: str, stable: bool = False) -> MaterializedStream:
    horizon, n_users, domain = _SIZES[size]
    rng = np.random.default_rng(_SEED)
    if stable:
        base = rng.integers(0, _STABLE_DOMAIN, size=n_users)
        values = np.tile(base, (horizon, 1))
        return MaterializedStream(values, domain_size=_STABLE_DOMAIN)
    values = rng.integers(0, domain, size=(horizon, n_users))
    return MaterializedStream(values, domain_size=domain)


def _session(
    dataset,
    mechanism,
    oracle,
    record_trace,
    force_fallback=False,
    window=_WINDOW,
):
    session = StreamSession(
        mechanism,
        dataset,
        _EPSILON,
        window,
        oracle=oracle,
        seed=_SEED,
        record_trace=record_trace,
    )
    if force_fallback:
        # Shadow the class flag on this instance: observe_many routes to
        # the generic per-step fallback, which is what every adaptive
        # mechanism ran before it grew a chunk kernel.
        session.mechanism.chunk_kernel = False
    return session.start()


def _drive(session, horizon: int, chunk: int) -> float:
    """Advance ``session`` over the horizon; return elapsed seconds."""
    started = time.perf_counter()
    if chunk == 1:
        for t in range(horizon):
            session.observe(t)
    else:
        t = 0
        while t < horizon:
            t += len(session.observe_many(t, min(chunk, horizon - t)))
    return time.perf_counter() - started


def _assert_identical(dataset, mechanism, oracle, horizon, window=_WINDOW):
    """Chunked releases must equal the looped ones bit for bit."""
    looped = _session(
        dataset, mechanism, oracle, record_trace=True, window=window
    )
    _drive(looped, horizon, 1)
    chunked = _session(
        dataset, mechanism, oracle, record_trace=True, window=window
    )
    _drive(chunked, horizon, 97)  # deliberately window-misaligned
    a, b = looped.finalize(), chunked.finalize()
    assert np.array_equal(a.releases, b.releases), (
        f"chunked ingestion diverged for {mechanism}/{oracle}"
    )
    assert a.total_reports == b.total_reports
    assert a.max_window_spend == b.max_window_spend


def measure(size: str) -> dict:
    """Time every configuration; return the throughput record."""
    from repro.engine.kernels_fast import backend

    horizon, n_users, domain = _SIZES[size]
    dataset = _dataset(size)
    check_span = min(horizon, 400)
    rows = []
    for mechanism, oracle, vectorized in _CONFIGS:
        _assert_identical(dataset, mechanism, oracle, check_span)
        row = {
            "mechanism": mechanism,
            "oracle": oracle,
            "vectorized": vectorized,
        }
        for record_trace in (False, True):
            label = "traced" if record_trace else "trace_free"
            looped = _drive(
                _session(dataset, mechanism, oracle, record_trace),
                horizon,
                1,
            )
            row[f"{label}_looped_steps_per_sec"] = horizon / looped
            for chunk in _CHUNKS:
                chunked = _drive(
                    _session(dataset, mechanism, oracle, record_trace),
                    horizon,
                    chunk,
                )
                row[f"{label}_chunk{chunk}_steps_per_sec"] = horizon / chunked
                row[f"{label}_chunk{chunk}_speedup"] = looped / chunked
        rows.append(row)
    floor_rows = [row for row in rows if row["vectorized"]]
    speedup = min(
        max(row[f"trace_free_chunk{chunk}_speedup"] for chunk in _CHUNKS)
        for row in floor_rows
    )
    peer_best = {
        (row["mechanism"], row["oracle"]): max(
            row[f"trace_free_chunk{chunk}_steps_per_sec"] for chunk in _CHUNKS
        )
        for row in rows
    }
    adaptive_rows = []
    stable_dataset = None
    for mechanism, oracle, peer, regime in _ADAPTIVE_CONFIGS:
        stable = regime == "stable"
        if stable and stable_dataset is None:
            stable_dataset = _dataset(size, stable=True)
        data = stable_dataset if stable else dataset
        window = _STABLE_WINDOW if stable else _WINDOW
        _assert_identical(data, mechanism, oracle, check_span, window=window)
        row = {"mechanism": mechanism, "oracle": oracle, "regime": regime}
        looped = _drive(
            _session(data, mechanism, oracle, False, window=window),
            horizon,
            1,
        )
        row["trace_free_looped_steps_per_sec"] = horizon / looped
        fallback = _drive(
            _session(
                data,
                mechanism,
                oracle,
                False,
                force_fallback=True,
                window=window,
            ),
            horizon,
            max(_CHUNKS),
        )
        row["trace_free_fallback_steps_per_sec"] = horizon / fallback
        best = 0.0
        for chunk in _CHUNKS:
            chunked = _drive(
                _session(data, mechanism, oracle, False, window=window),
                horizon,
                chunk,
            )
            row[f"trace_free_chunk{chunk}_steps_per_sec"] = horizon / chunked
            row[f"trace_free_chunk{chunk}_speedup"] = looped / chunked
            best = max(best, horizon / chunked)
        row["kernel_speedup"] = best / (horizon / fallback)
        if peer is not None:
            row["uniform_peer"] = f"{peer[0]}/{peer[1]}"
            row["gap_ratio"] = best / peer_best[peer]
        adaptive_rows.append(row)
    adaptive_speedup = min(
        row["kernel_speedup"]
        for row in adaptive_rows
        if row["regime"] == "drift"
    )
    adaptive_stable_speedup = min(
        row["kernel_speedup"]
        for row in adaptive_rows
        if row["regime"] == "stable"
    )
    return {
        "bench": "ingest_throughput",
        "size": size,
        "kernels_backend": backend(),
        "horizon": horizon,
        "n_users": n_users,
        "domain_size": domain,
        "chunks": list(_CHUNKS),
        "rows": rows,
        # Headline floor: every vectorized (chunk kernel + batched run
        # sampler) row's best trace-free speedup at chunk >= 64; the
        # minimum across rows is what the CI rail guards.
        "speedup": speedup,
        "adaptive_rows": adaptive_rows,
        # Worst kernel-vs-per-step-fallback ratio per regime (trace-free,
        # best chunk); each carries its own CI rail.  The drift rail keeps
        # the kernels from regressing to fallback speed on noisy streams;
        # the stable rail guards the >=2x speculative-batching win.
        "adaptive_speedup": adaptive_speedup,
        "adaptive_stable_speedup": adaptive_stable_speedup,
        # Worst drift-row throughput as a fraction of its uniform peer's —
        # the tracked "cost of adaptivity" under chunked ingestion.
        "adaptive_gap_ratio": min(
            row["gap_ratio"] for row in adaptive_rows if "gap_ratio" in row
        ),
    }


def _report(record: dict) -> str:
    lines = [
        f"bulk-ingestion throughput — size={record['size']} "
        f"(T={record['horizon']}, N={record['n_users']}, "
        f"d={record['domain_size']}), steps/sec",
        f"{'config':>10} {'mode':>11} {'looped':>9} "
        + "".join(f"{f'chunk {c}':>10}{'':>8}" for c in record["chunks"]),
    ]
    for row in record["rows"]:
        config = f"{row['mechanism']}/{row['oracle']}"
        for label, title in (("trace_free", "trace-free"), ("traced", "traced")):
            cells = "".join(
                f"{row[f'{label}_chunk{c}_steps_per_sec']:>10.0f}"
                f"{row[f'{label}_chunk{c}_speedup']:>7.2f}x"
                for c in record["chunks"]
            )
            lines.append(
                f"{config:>10} {title:>11} "
                f"{row[f'{label}_looped_steps_per_sec']:>9.0f}{cells}"
            )
    lines.append(
        f"floor speedup (vectorized rows, trace-free, chunk >= 64): "
        f"{record['speedup']:.2f}x (results bit-identical)"
    )
    lines.append("adaptive kernels (trace-free, steps/sec):")
    for row in record["adaptive_rows"]:
        config = f"{row['mechanism']}/{row['oracle']}"
        cells = "".join(
            f"{row[f'trace_free_chunk{c}_steps_per_sec']:>10.0f}"
            f"{row[f'trace_free_chunk{c}_speedup']:>7.2f}x"
            for c in record["chunks"]
        )
        gap = (
            f", {row['gap_ratio']:.0%} of {row['uniform_peer']}"
            if "gap_ratio" in row
            else ""
        )
        lines.append(
            f"{config:>10} {row['regime']:>11} "
            f"{row['trace_free_looped_steps_per_sec']:>9.0f}{cells}"
            f"  | fallback {row['trace_free_fallback_steps_per_sec']:>7.0f}"
            f" -> {row['kernel_speedup']:.2f}x{gap}"
        )
    lines.append(
        f"adaptive floors: drift kernel {record['adaptive_speedup']:.2f}x, "
        f"stable (speculative) kernel "
        f"{record['adaptive_stable_speedup']:.2f}x over per-step fallback; "
        f"worst uniform-gap ratio {record['adaptive_gap_ratio']:.0%}"
    )
    return "\n".join(lines)


def test_chunked_ingest_speedup(size):
    """Pytest entry: chunked ingestion must beat the per-step loop."""
    record = measure(size)
    print()
    print(_report(record))
    # The acceptance bar is 2x on an idle machine; assert a conservative
    # floor so a time-shared CI runner cannot flake the suite.
    assert record["speedup"] > 1.6, (
        f"expected chunked ingestion to amortise per-step overhead, "
        f"measured {record['speedup']:.2f}x"
    )
    assert record["adaptive_speedup"] > ADAPTIVE_FLOOR, (
        f"expected the adaptive chunk kernels to beat the per-step "
        f"fallback on the drift workload, measured "
        f"{record['adaptive_speedup']:.2f}x"
    )
    assert record["adaptive_stable_speedup"] > ADAPTIVE_STABLE_FLOOR, (
        f"expected speculative batching to win big on the stable "
        f"workload, measured {record['adaptive_stable_speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="smoke", choices=sorted(_SIZES))
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON record here"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the floor speedup falls below this",
    )
    parser.add_argument(
        "--min-adaptive-speedup",
        type=float,
        default=None,
        help="exit non-zero if the drift-regime adaptive "
        "kernel-vs-fallback floor falls below this",
    )
    parser.add_argument(
        "--min-adaptive-stable-speedup",
        type=float,
        default=None,
        help="exit non-zero if the stable-regime (speculative) "
        "kernel-vs-fallback floor falls below this",
    )
    args = parser.parse_args(argv)
    record = measure(args.size)
    print(_report(record))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    failed = False
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x < {args.min_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if (
        args.min_adaptive_speedup is not None
        and record["adaptive_speedup"] < args.min_adaptive_speedup
    ):
        print(
            f"FAIL: adaptive speedup {record['adaptive_speedup']:.2f}x "
            f"< {args.min_adaptive_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if (
        args.min_adaptive_stable_speedup is not None
        and record["adaptive_stable_speedup"]
        < args.min_adaptive_stable_speedup
    ):
        print(
            f"FAIL: adaptive stable speedup "
            f"{record['adaptive_stable_speedup']:.2f}x "
            f"< {args.min_adaptive_stable_speedup}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
