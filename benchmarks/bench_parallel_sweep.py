"""Parallel sweep scaling — wall-clock at 1/2/4 workers, identical results.

Runs one mechanism × epsilon × window grid through the parallel engine at
three worker counts, prints the scaling table, and asserts

* every worker count returns bit-identical ``CellResult``s (the engine's
  determinism contract), and
* ≥1.5× speedup at 4 workers over serial — checked only on machines with
  at least 4 usable CPUs, since a container pinned to one core
  time-shares the pool and cannot exhibit parallel speedup.

Sizes follow BENCH_SIZE (smoke/default/paper) like every other bench.
"""

from __future__ import annotations

import math
import os
import time

import pytest

from repro.experiments import DatasetSpec, sweep

#: Grid per size tier: (dataset n_users, horizon, mechanisms, epsilons, windows)
_GRIDS = {
    "smoke": (2_000, 40, ("LBU", "LPU", "LPA"), (0.5, 1.0), (5, 10)),
    "default": (
        20_000,
        200,
        ("LBU", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0),
        (10, 20),
    ),
    "paper": (
        200_000,
        800,
        ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0, 2.5),
        (10, 20, 30, 40, 50),
    ),
}

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 1.5


def _grid_kwargs(size):
    n_users, horizon, mechanisms, epsilons, windows = _GRIDS[size]
    dataset = DatasetSpec.of("LNS", n_users=n_users, horizon=horizon, seed=17)
    return mechanisms, dataset, {"epsilons": epsilons, "windows": windows, "seed": 17}


def _run(size, jobs):
    mechanisms, dataset, kwargs = _grid_kwargs(size)
    return sweep(mechanisms, dataset, jobs=jobs, **kwargs)


def _assert_identical(a, b):
    for mechanism in a:
        for key in a[mechanism]:
            for field in ("mre", "mae", "mse", "cfpu", "publication_rate", "auc"):
                x = getattr(a[mechanism][key], field)
                y = getattr(b[mechanism][key], field)
                assert (x == y) or (math.isnan(x) and math.isnan(y)), (
                    f"{mechanism}{key}.{field}: {x} != {y}"
                )


@pytest.mark.benchmark(group="parallel")
def test_parallel_sweep_scaling(benchmark, size):
    mechanisms, _, kwargs = _grid_kwargs(size)
    n_cells = len(mechanisms) * len(kwargs["epsilons"]) * len(kwargs["windows"])

    elapsed = {}
    results = {}
    for jobs in WORKER_COUNTS:
        if jobs == max(WORKER_COUNTS):
            results[jobs] = benchmark.pedantic(
                _run, args=(size, jobs), iterations=1, rounds=1
            )
            elapsed[jobs] = benchmark.stats.stats.mean
        else:
            started = time.perf_counter()
            results[jobs] = _run(size, jobs)
            elapsed[jobs] = time.perf_counter() - started

    print()
    print(f"parallel sweep scaling — {n_cells} cells, size={size}")
    print(f"{'jobs':>6}{'seconds':>10}{'speedup':>9}")
    for jobs in WORKER_COUNTS:
        speedup = elapsed[WORKER_COUNTS[0]] / elapsed[jobs]
        print(f"{jobs:>6}{elapsed[jobs]:>10.2f}{speedup:>8.2f}x")

    # Determinism: every worker count produced bit-identical grids.
    for jobs in WORKER_COUNTS[1:]:
        _assert_identical(results[WORKER_COUNTS[0]], results[jobs])

    cpus = os.cpu_count() or 1
    speedup_at_4 = elapsed[1] / elapsed[4]
    if cpus >= 4:
        assert speedup_at_4 > SPEEDUP_TARGET, (
            f"expected >{SPEEDUP_TARGET}x speedup at 4 workers on {cpus} "
            f"CPUs, measured {speedup_at_4:.2f}x"
        )
    else:
        print(
            f"(speedup assertion skipped: only {cpus} usable CPU(s); "
            f"measured {speedup_at_4:.2f}x)"
        )
