"""Sharded serving ingest throughput — 1 shard vs K worker processes.

The point of ``repro serve --shards K`` is that LDP collection is CPU
bound in the shard workers, so partitioning the population across K
processes should ingest close to K times faster once the per-chunk pipe
overhead is amortised.  The measured workload is the regime sharding
exists for: ``--no-fast`` (the literal per-user perturbation protocol —
every user draws its own OLH report, cost linear in the shard's
population) under LBU, which runs a collection round at *every*
timestamp.  The exact count-level samplers (``fast=True``, the
default) are deliberately not the bench workload: they compress a
round to O(domain) draws regardless of population size, leaving nothing
for worker processes to parallelise — a 1-shard tier is fastest there
and that is expected, not a regression.

This bench measures end-to-end acked ingest throughput through the real
socket server — pipelined b64-packed snapshots, the production wire
format — at each shard count, prints the table, and writes the JSON
record CI uploads.  ``speedup`` is the largest-shard-count throughput
over the 1-shard baseline and carries the CI floor (``--min-speedup``).

The feed is pipelined (all lines written up front, acks drained
concurrently) so the front's dynamic batcher actually forms
``--chunk``-sized ``observe_many`` blocks; a lockstep client would
measure round-trip latency instead.

Run as a script::

    python benchmarks/bench_serve_sharded.py --size smoke \
        --out bench_serve_sharded.json --min-speedup 1.5

or under pytest (sizes via BENCH_SIZE, like every other bench)::

    pytest benchmarks/bench_serve_sharded.py -s
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"

#: size -> (steps, n_users, domain_size)
_SIZES = {
    "smoke": (120, 8000, 96),
    "default": (300, 12000, 128),
    "paper": (800, 24000, 256),
}

CHUNK = 8
SHARDS = [1, 2, 4]


def _feed_lines(steps: int, n_users: int, domain: int, seed: int = 3):
    rng = np.random.default_rng(seed)
    block = rng.integers(0, domain, size=(steps, n_users), dtype=np.uint8)
    return [
        json.dumps(
            {
                "op": "ingest",
                "b64": base64.b64encode(block[t].tobytes()).decode("ascii"),
                "dtype": "u1",
            }
        )
        for t in range(steps)
    ]


def _serve_cmd(shards: int, n_users: int, domain: int) -> list:
    return [
        sys.executable, "-m", "repro", "serve",
        "--shards", str(shards), "--n-users", str(n_users),
        "--method", "LBU", "--oracle", "olh", "--no-fast",
        "--domain-size", str(domain), "--epsilon", "1",
        "--window", "20", "--seed", "7",
        "--chunk", str(CHUNK), "--capacity", "64",
    ]


def _measure(shards: int, lines: list, n_users: int, domain: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    proc = subprocess.Popen(
        _serve_cmd(shards, n_users, domain),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        hello = json.loads(proc.stdout.readline() or "{}")
        if hello.get("event") != "listening":
            raise RuntimeError(
                f"server failed to start: {proc.stderr.read()}"
            )
        sock = socket.create_connection(
            ("127.0.0.1", int(hello["port"])), timeout=600
        )
        rfile = sock.makefile("r", encoding="utf-8")
        wfile = sock.makefile("w", encoding="utf-8")

        payload = "".join(line + "\n" for line in lines)

        def write_feed():
            wfile.write(payload)
            wfile.flush()

        start = time.perf_counter()
        writer = threading.Thread(target=write_feed)
        writer.start()
        last_t = -1
        for _ in range(len(lines)):
            ack = json.loads(rfile.readline())
            if "error" in ack:
                raise RuntimeError(f"ingest failed: {ack}")
            last_t = ack["t"]
        elapsed = time.perf_counter() - start
        writer.join()
        assert last_t == len(lines) - 1, last_t
        wfile.write(json.dumps({"op": "shutdown"}) + "\n")
        wfile.flush()
        rfile.readline()
        sock.close()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
    return {
        "shards": shards,
        "steps": len(lines),
        "elapsed_s": elapsed,
        "steps_per_sec": len(lines) / elapsed,
    }


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run_bench(size: str) -> dict:
    steps, n_users, domain = _SIZES[size]
    lines = _feed_lines(steps, n_users, domain)
    rows = []
    print(
        f"sharded serve ingest: {steps} steps x {n_users} users, "
        f"d={domain}, chunk={CHUNK}, cpus={_cpus()}"
    )
    for shards in SHARDS:
        row = _measure(shards, lines, n_users, domain)
        rows.append(row)
        print(
            f"  shards={shards:<2} {row['steps_per_sec']:8.1f} steps/s "
            f"({row['elapsed_s']:.2f}s)"
        )
    base = rows[0]["steps_per_sec"]
    speedup = rows[-1]["steps_per_sec"] / base
    print(f"  speedup ({SHARDS[-1]} shards vs 1): {speedup:.2f}x")
    return {
        "bench": "serve_sharded",
        "size": size,
        "n_users": n_users,
        "domain_size": domain,
        "chunk": CHUNK,
        "cpus": _cpus(),
        "rows": rows,
        "speedup": speedup,
    }


def test_sharded_serve_throughput(size):
    """Perf rail under pytest: many shards must not be slower than one.

    The hard 1.5x floor lives in CI (idle multi-core runner, script
    invocation); a pytest run only asserts no pathological slowdown
    from the process fan-out, and only where parallelism is physically
    possible — on a single-core box K workers time-share one CPU and
    the tier can only lose.
    """
    import pytest

    if _cpus() < 2:
        pytest.skip("sharded workers cannot run in parallel on one CPU")
    record = run_bench(size)
    assert record["speedup"] > 0.8, record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="smoke", choices=sorted(_SIZES))
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless max-shard throughput beats 1 shard by this "
        "factor",
    )
    args = parser.parse_args(argv)
    record = run_bench(args.size)
    record["min_speedup"] = args.min_speedup
    ok = (
        args.min_speedup is None or record["speedup"] >= args.min_speedup
    )
    record["ok"] = ok
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"record written to {args.out}")
    if not ok:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x is below the "
            f"{args.min_speedup}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
