"""Shared-pass engine throughput — cells/sec vs per-cell execution.

A sweep grid over one simulator-backed dataset pays for a full stream
pass per cell when executed naively; the shared-pass engine
(:func:`repro.experiments.parallel.run_shared_pass`) generates the
stream once and fans each timestamp out to every (cell, repeat) session.
This bench measures both modes on the same grid, verifies they return
bit-identical results, prints the cells/sec table, and (as a script)
writes a JSON record CI uploads so the perf trajectory is tracked per PR.

Run as a script::

    python benchmarks/bench_shared_pass.py --size smoke --out shared_pass.json

or under pytest (sizes via BENCH_SIZE, like every other bench)::

    pytest benchmarks/bench_shared_pass.py -s
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if REPO_SRC not in sys.path:  # script mode without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.experiments import DatasetSpec, execute_cells, grid_specs  # noqa: E402

#: Grid per size tier: (n_users, horizon, mechanisms, epsilons, windows).
#: Taxi is generative (per-user Markov chains), so stream generation is
#: O(n_users) per timestamp while most per-session mechanism work is
#: small fixed overhead — at these populations generation dominates,
#: which is exactly the workload the shared pass amortises.
_GRIDS = {
    "smoke": (
        20_000,
        40,
        ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0),
        (10,),
    ),
    "default": (
        50_000,
        200,
        ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0),
        (10, 20),
    ),
    "paper": (
        100_000,
        886,
        ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0, 2.5),
        (10, 20, 30, 40, 50),
    ),
}

_SEED = 17


def _grid(size: str):
    n_users, horizon, mechanisms, epsilons, windows = _GRIDS[size]
    dataset = DatasetSpec.of("Taxi", n_users=n_users, horizon=horizon, seed=_SEED)
    return grid_specs(
        mechanisms,
        dataset,
        epsilons=epsilons,
        windows=windows,
        tag="bench-shared-pass",
    )


def _assert_identical(a, b):
    fields = ("mre", "mae", "mse", "cfpu", "publication_rate", "auc", "repeats")
    for left, right in zip(a, b):
        for field in fields:
            x, y = getattr(left, field), getattr(right, field)
            identical = (x == y) or (
                isinstance(x, float) and math.isnan(x) and math.isnan(y)
            )
            assert identical, f"shared pass diverged on {field}: {x} != {y}"


def measure(size: str, jobs: int = 1) -> dict:
    """Run the grid per-cell and shared-pass; return the throughput record."""
    specs = _grid(size)
    # Warm the per-process dataset cache so both modes measure execution,
    # not the first materialisation.
    execute_cells(specs[:1], base_seed=_SEED, jobs=1, coalesce=False)

    started = time.perf_counter()
    per_cell = execute_cells(specs, base_seed=_SEED, jobs=jobs, coalesce=False)
    per_cell_seconds = time.perf_counter() - started

    started = time.perf_counter()
    shared = execute_cells(specs, base_seed=_SEED, jobs=jobs, coalesce=True)
    shared_seconds = time.perf_counter() - started

    _assert_identical(per_cell, shared)
    cells = len(specs)
    return {
        "bench": "shared_pass",
        "size": size,
        "jobs": jobs,
        "cells": cells,
        "per_cell_seconds": per_cell_seconds,
        "shared_seconds": shared_seconds,
        "per_cell_cells_per_sec": cells / per_cell_seconds,
        "shared_cells_per_sec": cells / shared_seconds,
        "speedup": per_cell_seconds / shared_seconds,
    }


def _report(record: dict) -> str:
    return (
        f"shared-pass throughput — {record['cells']} cells, "
        f"size={record['size']}, jobs={record['jobs']}\n"
        f"{'mode':>12}{'seconds':>10}{'cells/s':>10}\n"
        f"{'per-cell':>12}{record['per_cell_seconds']:>10.2f}"
        f"{record['per_cell_cells_per_sec']:>10.1f}\n"
        f"{'shared':>12}{record['shared_seconds']:>10.2f}"
        f"{record['shared_cells_per_sec']:>10.1f}\n"
        f"speedup: {record['speedup']:.2f}x (results bit-identical)"
    )


def test_shared_pass_speedup(size):
    """Pytest entry: shared pass must beat per-cell on generative data."""
    record = measure(size)
    print()
    print(_report(record))
    # The acceptance bar is 2x on an idle machine; assert a conservative
    # floor so a time-shared CI runner cannot flake the suite.
    assert record["speedup"] > 1.5, (
        f"expected the shared pass to amortise stream generation, "
        f"measured {record['speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="smoke", choices=sorted(_GRIDS))
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON record here"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the measured speedup falls below this",
    )
    args = parser.parse_args(argv)
    record = measure(args.size, jobs=args.jobs)
    print(_report(record))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x < {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
