"""Shared-pass engine throughput — cells/sec vs per-cell execution.

A sweep grid over one simulator-backed dataset pays for a full stream
pass per cell when executed naively; the shared-pass engine
(:func:`repro.experiments.parallel.run_shared_pass`) generates the
stream once and fans each timestamp out to every (cell, repeat) session.
This bench measures three modes on the same grid:

``per-cell``   one solo pass per cell (no sharing)
``legacy``     the shared pass with SoA disabled (``REPRO_SOA=0``) —
               the pre-SoA per-session fan-out baseline
``soa``        the shared pass under the structure-of-arrays scheduler
               (:mod:`repro.engine.soa`, the default)

verifies all three return bit-identical results, prints the cells/sec
table, and (as a script) writes a JSON record CI uploads so the perf
trajectory is tracked per PR.

Run as a script::

    python benchmarks/bench_shared_pass.py --size smoke --out shared_pass.json

or under pytest (sizes via BENCH_SIZE, like every other bench)::

    pytest benchmarks/bench_shared_pass.py -s
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if REPO_SRC not in sys.path:  # script mode without an installed package
    sys.path.insert(0, REPO_SRC)

from repro.experiments import DatasetSpec, execute_cells, grid_specs  # noqa: E402

#: Grid per size tier: (n_users, horizon, mechanisms, epsilons, windows).
#: Taxi is generative (per-user Markov chains), so stream generation is
#: O(n_users) per timestamp while most per-session mechanism work is
#: small fixed overhead — at these populations generation dominates,
#: which is exactly the workload the shared pass amortises.
_GRIDS = {
    "smoke": (
        20_000,
        40,
        ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0),
        (10,),
    ),
    "default": (
        50_000,
        200,
        ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0),
        (10, 20),
    ),
    "paper": (
        100_000,
        886,
        ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"),
        (0.5, 1.0, 1.5, 2.0, 2.5),
        (10, 20, 30, 40, 50),
    ),
}

_SEED = 17


def _grid(size: str):
    n_users, horizon, mechanisms, epsilons, windows = _GRIDS[size]
    dataset = DatasetSpec.of("Taxi", n_users=n_users, horizon=horizon, seed=_SEED)
    return grid_specs(
        mechanisms,
        dataset,
        epsilons=epsilons,
        windows=windows,
        tag="bench-shared-pass",
    )


def _assert_identical(a, b):
    fields = ("mre", "mae", "mse", "cfpu", "publication_rate", "auc", "repeats")
    for left, right in zip(a, b):
        for field in fields:
            x, y = getattr(left, field), getattr(right, field)
            identical = (x == y) or (
                isinstance(x, float) and math.isnan(x) and math.isnan(y)
            )
            assert identical, f"shared pass diverged on {field}: {x} != {y}"


def _timed(specs, jobs: int, coalesce: bool):
    started = time.perf_counter()
    results = execute_cells(
        specs, base_seed=_SEED, jobs=jobs, coalesce=coalesce
    )
    return results, time.perf_counter() - started


def measure(size: str, jobs: int = 1) -> dict:
    """Run the grid per-cell, legacy-shared and SoA-shared; return the
    throughput record (all three modes verified bit-identical)."""
    from repro.engine.kernels_fast import backend

    specs = _grid(size)
    # Warm the per-process dataset cache so every mode measures
    # execution, not the first materialisation.
    execute_cells(specs[:1], base_seed=_SEED, jobs=1, coalesce=False)

    per_cell, per_cell_seconds = _timed(specs, jobs, coalesce=False)

    prior = os.environ.get("REPRO_SOA")
    os.environ["REPRO_SOA"] = "0"
    try:
        legacy, legacy_seconds = _timed(specs, jobs, coalesce=True)
    finally:
        if prior is None:
            del os.environ["REPRO_SOA"]
        else:
            os.environ["REPRO_SOA"] = prior

    soa, soa_seconds = _timed(specs, jobs, coalesce=True)

    _assert_identical(per_cell, legacy)
    _assert_identical(per_cell, soa)
    cells = len(specs)
    return {
        "bench": "shared_pass",
        "size": size,
        "jobs": jobs,
        "cells": cells,
        "kernels_backend": backend(),
        "per_cell_seconds": per_cell_seconds,
        "legacy_seconds": legacy_seconds,
        # "shared" keeps its historical meaning — the shared pass a user
        # gets by default — which is now the SoA scheduler.
        "shared_seconds": soa_seconds,
        "per_cell_cells_per_sec": cells / per_cell_seconds,
        "legacy_cells_per_sec": cells / legacy_seconds,
        "shared_cells_per_sec": cells / soa_seconds,
        "speedup": per_cell_seconds / soa_seconds,
        "legacy_speedup": per_cell_seconds / legacy_seconds,
        "soa_speedup": legacy_seconds / soa_seconds,
    }


def _report(record: dict) -> str:
    return (
        f"shared-pass throughput — {record['cells']} cells, "
        f"size={record['size']}, jobs={record['jobs']}, "
        f"kernels={record['kernels_backend']}\n"
        f"{'mode':>12}{'seconds':>10}{'cells/s':>10}\n"
        f"{'per-cell':>12}{record['per_cell_seconds']:>10.2f}"
        f"{record['per_cell_cells_per_sec']:>10.1f}\n"
        f"{'legacy':>12}{record['legacy_seconds']:>10.2f}"
        f"{record['legacy_cells_per_sec']:>10.1f}\n"
        f"{'soa':>12}{record['shared_seconds']:>10.2f}"
        f"{record['shared_cells_per_sec']:>10.1f}\n"
        f"speedup: {record['speedup']:.2f}x vs per-cell, "
        f"{record['soa_speedup']:.2f}x vs legacy shared pass "
        f"(results bit-identical)"
    )


def test_shared_pass_speedup(size):
    """Pytest entry: shared pass must beat per-cell on generative data."""
    record = measure(size)
    print()
    print(_report(record))
    # The acceptance bar is 2x on an idle machine; assert a conservative
    # floor so a time-shared CI runner cannot flake the suite.
    assert record["speedup"] > 1.5, (
        f"expected the shared pass to amortise stream generation, "
        f"measured {record['speedup']:.2f}x"
    )
    # The SoA scheduler must beat the legacy per-session fan-out it
    # replaced (the pre-SoA shared-pass baseline).  Measured 1.4-1.5x on
    # an idle machine at smoke size (Amdahl-bound by the adaptive
    # population mechanisms' sequential rounds); the floor is
    # conservative so a time-shared runner cannot flake the suite.
    assert record["soa_speedup"] > 1.15, (
        f"expected SoA to beat the legacy shared pass, "
        f"measured {record['soa_speedup']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="smoke", choices=sorted(_GRIDS))
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON record here"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if the SoA-vs-per-cell speedup falls below this",
    )
    parser.add_argument(
        "--min-soa-speedup",
        type=float,
        default=None,
        help="exit non-zero if the SoA-vs-legacy-shared speedup falls "
        "below this",
    )
    args = parser.parse_args(argv)
    record = measure(args.size, jobs=args.jobs)
    print(_report(record))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    failed = False
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x < {args.min_speedup}x",
            file=sys.stderr,
        )
        failed = True
    if (
        args.min_soa_speedup is not None
        and record["soa_speedup"] < args.min_soa_speedup
    ):
        print(
            f"FAIL: SoA speedup {record['soa_speedup']:.2f}x < "
            f"{args.min_soa_speedup}x vs legacy shared pass",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
