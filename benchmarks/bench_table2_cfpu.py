"""Table 2 — CFPU of all methods on five datasets, three (eps, w) settings.

This is the reproduction's closest numerical match to the paper: CFPU is a
counting metric, so measured values land within a few percent of the
published table even at reduced dataset sizes.  The bench prints
measured/paper side by side and asserts per-method agreement bands.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    PAPER_TABLE2,
    TABLE2_SETTINGS,
    format_table2,
    table2_cfpu,
)

import math

from repro.experiments import dataset_size

#: Adaptive rows (LBD/LBA/LPD/LPA) depend on the data and our simulators;
#: they get a relative agreement band against the paper's numbers.
ADAPTIVE_BAND = 0.15


def _run(size):
    datasets = ("Sin", "Log", "Taxi") if size == "smoke" else None
    kwargs = {"size": size, "seed": 31}
    if datasets:
        kwargs["datasets"] = datasets
    return table2_cfpu(settings=TABLE2_SETTINGS, **kwargs)


def _deterministic_expected(method, dataset, window, size):
    """Horizon-exact CFPU of the non-adaptive methods.

    The paper's 1/w for LSP assumes T divisible by w; at finite horizons
    LSP publishes ceil(T/w) times, so we compare against the exact value.
    """
    _, horizon = dataset_size(dataset, size)
    if method == "LBU":
        return 1.0
    if method == "LSP":
        return math.ceil(horizon / window) / horizon
    if method == "LPU":
        return 1.0 / window
    raise KeyError(method)


@pytest.mark.benchmark(group="table2")
def test_table2_cfpu(benchmark, size):
    table = benchmark.pedantic(_run, args=(size,), iterations=1, rounds=1)
    print()
    print("Table 2 — CFPU, measured/paper")
    print(format_table2(table, PAPER_TABLE2))

    for setting, methods in table.items():
        _, window = setting
        paper_block = PAPER_TABLE2[setting]
        for method, per_dataset in methods.items():
            for dataset, measured in per_dataset.items():
                reference = paper_block[method][dataset]
                if method in ("LBU", "LSP", "LPU"):
                    expected = _deterministic_expected(
                        method, dataset, window, size
                    )
                    assert measured == pytest.approx(expected, abs=2e-3), (
                        f"{method}/{dataset}{setting}: {measured} vs {expected}"
                    )
                elif size == "smoke":
                    # Short horizons inflate adaptive CFPU (the initial
                    # publication doesn't amortise); assert the structural
                    # bands of Sections 5.4.3 / 6.3.3 instead.
                    if method in ("LBD", "LBA"):
                        assert 1.0 < measured <= 2.0, (
                            f"{method}/{dataset}{setting}: {measured}"
                        )
                    else:  # LPD / LPA
                        assert 1.0 / (2 * window) - 2e-3 <= measured <= (
                            1.0 / window + 5e-3
                        ), f"{method}/{dataset}{setting}: {measured}"
                else:
                    assert measured == pytest.approx(
                        reference, rel=ADAPTIVE_BAND
                    ), f"{method}/{dataset}{setting}: {measured} vs {reference}"
