"""Benchmark configuration.

Every bench regenerates one of the paper's evaluation artifacts at reduced
(``smoke``/``default``-tier) sizes so the whole suite finishes in minutes,
prints the regenerated series next to the paper's values where available,
and asserts the qualitative *shape* (who wins, by roughly what factor).

Run with::

    pytest benchmarks/ --benchmark-only

Sizes are controlled by the BENCH_SIZE environment variable
(``smoke`` | ``default`` | ``paper``; default ``smoke`` so CI stays fast).
"""

from __future__ import annotations

import os

import pytest


def bench_size() -> str:
    """Dataset size tier for benchmark runs (env BENCH_SIZE)."""
    return os.environ.get("BENCH_SIZE", "smoke")


@pytest.fixture(scope="session")
def size():
    return bench_size()
