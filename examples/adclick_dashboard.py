"""Ad-click category dashboard — the paper's Taobao scenario + extensions.

A million-user ad platform wants a live top-categories dashboard from
click streams without collecting raw clicks.  This script runs LPA on the
Taobao simulator, applies the post-processing extensions (simplex
consistency + smoothing — free by the post-processing theorem), and prints
a top-5 dashboard with estimated vs true shares, plus the communication
budget the population division saves.

Run:  python examples/adclick_dashboard.py
"""

import numpy as np

from repro import TaobaoSimulator, run_stream
from repro.analysis import mean_absolute_error
from repro.extensions import exponential_smoothing
from repro.freq_oracles.postprocess import norm_sub

EPSILON = 1.0
WINDOW = 20
HORIZON = 288  # two simulated days at 10-minute slots

stream = TaobaoSimulator(horizon=HORIZON, seed=8)  # default scale: ~32k users
print(
    f"{stream.n_users} users, {stream.domain_size} ad categories, "
    f"{HORIZON} slots; {EPSILON}-LDP per {WINDOW}-slot window\n"
)

result = run_stream("LPA", stream, epsilon=EPSILON, window=WINDOW, seed=5)

# Post-processing (privacy-free): simplex consistency, then light EWMA.
consistent = np.stack([norm_sub(row) for row in result.releases])
dashboard = exponential_smoothing(consistent, alpha=0.4)

raw_mae = mean_absolute_error(result.releases, result.true_frequencies)
final_mae = mean_absolute_error(dashboard, result.true_frequencies)
print(f"MAE raw={raw_mae:.5f} -> post-processed={final_mae:.5f}")
print(f"CFPU={result.cfpu:.4f} (vs 1.0+ for budget division: ~{1/result.cfpu:.0f}x fewer reports)\n")

t = HORIZON - 1
top = np.argsort(dashboard[t])[::-1][:5]
print(f"Top-5 categories at t={t} (estimated share vs true share):")
for rank, k in enumerate(top, 1):
    print(
        f"  {rank}. category {k:>3}: est {dashboard[t, k]*100:5.2f}%   "
        f"true {result.true_frequencies[t, k]*100:5.2f}%"
    )

true_top = set(np.argsort(result.true_frequencies[t])[::-1][:5].tolist())
overlap = len(true_top & set(top.tolist()))
print(f"\nTop-5 overlap with ground truth: {overlap}/5")
