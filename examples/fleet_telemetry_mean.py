"""Fleet telemetry mean monitoring — the mean query over an LDP stream.

Footnote 2 of the paper notes the query type is orthogonal to the
streaming setting.  This example monitors the *mean* of a bounded sensor
reading (e.g. normalised battery drain across a vehicle fleet) under
w-event LDP, comparing the uniform population split (MPU) with the
adaptive absorption method (MPA) and the three numeric mechanisms.

Run:  python examples/fleet_telemetry_mean.py
"""

from repro.query import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    make_sine_numeric_stream,
)

EPSILON = 1.0
WINDOW = 12
N_VEHICLES = 12_000
HORIZON = 144  # one day at 10-minute slots

stream = make_sine_numeric_stream(
    n_users=N_VEHICLES,
    horizon=HORIZON,
    amplitude=0.4,
    period=HORIZON,
    noise_std=0.15,
    seed=17,
)
print(
    f"{N_VEHICLES} vehicles, {HORIZON} slots, values in [-1, 1]; "
    f"{EPSILON}-LDP per {WINDOW}-slot window\n"
)

print(f"{'method':<22}{'MSE':>12}{'reports/user/slot':>20}")
for numeric in ("duchi", "piecewise", "hybrid"):
    mpu = MeanPopulationUniform(numeric_mechanism=numeric).run(
        stream, EPSILON, WINDOW, seed=4
    )
    mpa = MeanPopulationAbsorption(numeric_mechanism=numeric).run(
        stream, EPSILON, WINDOW, seed=4
    )
    print(f"{'MPU + ' + numeric:<22}{mpu.mse:>12.3e}{mpu.cfpu:>20.4f}")
    print(f"{'MPA + ' + numeric:<22}{mpa.mse:>12.3e}{mpa.cfpu:>20.4f}")

mpa = MeanPopulationAbsorption().run(stream, EPSILON, WINDOW, seed=4)
print("\nLast 6 slots (MPA + hybrid):")
for record in mpa.records[-6:]:
    true = mpa.true_means[record.t]
    print(
        f"  t={record.t}: released={record.release:+.3f} "
        f"true={true:+.3f} [{record.strategy}]"
    )
