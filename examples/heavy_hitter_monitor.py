"""Live heavy-hitter monitor — standing queries over an online stream.

An operations team watches which ad categories are hot *right now* and
how much traffic a category band carried over the last hour, without the
server ever seeing a raw click.  This script wires the full online
serving stack:

    OnlineStream  →  StreamSession (LPA, trace-free)  →  ReleaseStore
                                                       (ring buffer)
                                                             ↓
                                                        QueryEngine

The session keeps **no trace** and the store retains only the last
``CAPACITY`` releases, so the memory footprint is constant no matter how
long the stream runs — the same shape `repro serve` exposes over a pipe.
Every answer carries a variance-propagated 95% confidence interval from
the oracle's closed-form error model.

Run:  python examples/heavy_hitter_monitor.py
"""

import numpy as np

from repro import QueryEngine, StreamSession
from repro.streams import OnlineStream

N_USERS = 20_000
DOMAIN = 12          # ad categories
EPSILON = 1.0
WINDOW = 20
CAPACITY = 64        # releases retained; memory stays O(CAPACITY * DOMAIN)
HORIZON = 240        # "four hours" of one-minute snapshots
REPORT_EVERY = 60

rng = np.random.default_rng(11)

# A drifting Zipf-ish popularity process with a mid-stream burst: the
# heavy hitters change, which is exactly what the monitor must track.
base = 1.0 / (1.0 + np.arange(DOMAIN)) ** 1.1


def popularity(t: int) -> np.ndarray:
    weights = base.copy()
    weights = np.roll(weights, t // 80)          # slow drift
    if 150 <= t < 190:
        weights[7] *= 6.0                         # flash burst on category 7
    return weights / weights.sum()


stream = OnlineStream(n_users=N_USERS, domain_size=DOMAIN)
session = StreamSession(
    "LPA", stream, epsilon=EPSILON, window=WINDOW, seed=3,
    record_trace=False,                           # constant memory
)
store = session.attach_store(capacity=CAPACITY)
session.start()
engine = QueryEngine(store)

print(
    f"{N_USERS} users, {DOMAIN} categories, {EPSILON}-LDP per "
    f"{WINDOW}-step window; ring retains {CAPACITY} releases\n"
)

truth_at = {}
for t in range(HORIZON):
    values = rng.choice(DOMAIN, size=N_USERS, p=popularity(t))
    stream.push(values)
    session.observe(t)
    truth_at[t] = np.bincount(values, minlength=DOMAIN) / N_USERS

    if (t + 1) % REPORT_EVERY == 0:
        print(f"--- t={t} "
              f"(retained [{store.oldest_t}, {store.latest_t}], "
              f"evicted {store.evicted}) ---")
        true_top = np.argsort(-truth_at[t], kind="stable")[:3]
        print(f"  true top-3 now: {true_top.tolist()}")
        for entry in engine.topk(3):
            iv = entry.interval
            print(
                f"  #{entry.rank} category {entry.item:>2}: "
                f"{iv.estimate*100:5.2f}%  "
                f"[{iv.ci_low*100:5.2f}, {iv.ci_high*100:5.2f}]"
            )
        span0 = max(store.oldest_t, t - 59)
        band = engine.range_count(0, 4)
        hour = engine.sliding(span0, t, "mean", item=true_top[0])
        print(
            f"  categories 0-3 share now: {band.estimate*100:5.2f}% "
            f"± {1.96*band.stderr*100:.2f}"
        )
        print(
            f"  category {true_top[0]} mean over [{span0}, {t}]: "
            f"{hour.estimate*100:5.2f}% "
            f"[{hour.ci_low*100:5.2f}, {hour.ci_high*100:5.2f}]\n"
        )

summary = session.summary()
print(
    f"done: {summary['steps']} steps, "
    f"{summary['publications']} publications "
    f"(rate {summary['publication_rate']:.3f}), CFPU {summary['cfpu']:.4f}, "
    f"max window spend {summary['max_window_spend']:.3f} <= {EPSILON}"
)
print(
    f"store held at most {CAPACITY} of {summary['steps']} releases "
    f"({store.evicted} evicted) — memory stayed bounded."
)
