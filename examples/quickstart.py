"""Quickstart: release a private stream with w-event LDP in ~20 lines.

Collects an LNS-style binary stream from 20,000 simulated users and
releases its frequency histogram at every timestamp under 1.0-LDP per
sliding window of 20 timestamps, comparing the naive budget split (LBU)
with the paper's best method (LPA).

Run:  python examples/quickstart.py
"""

from repro import make_lns, run_stream
from repro.analysis import mean_relative_error

EPSILON = 1.0  # total LDP budget in any window of W consecutive timestamps
WINDOW = 20

stream = make_lns(n_users=20_000, horizon=200, seed=7)

for method in ("LBU", "LPA"):
    result = run_stream(method, stream, epsilon=EPSILON, window=WINDOW, seed=7)
    mre = mean_relative_error(result.releases, result.true_frequencies)
    print(
        f"{method}: MRE={mre:.3f}  CFPU={result.cfpu:.4f}  "
        f"publications={result.publication_count}/{result.horizon}  "
        f"max window spend={result.max_window_spend:.3f} (<= {EPSILON})"
    )

print(
    "\nLPA (population division) should show several-times-lower error AND "
    "~20x less communication than LBU — the paper's headline result."
)
