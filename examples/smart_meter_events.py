"""Smart-meter event detection — the intro's IoT motivation + Section 7.4.

Thousands of smart meters report a binary "high consumption" flag every
interval.  The utility wants to detect *extreme events* — timestamps where
the above-threshold fraction spikes — without a trusted aggregator.

This script builds a bursty consumption stream, releases it with the
adaptive LDP methods, and prints event-detection quality (AUC plus the
operating point at the paper's threshold delta = 0.75(max-min)+min).

Run:  python examples/smart_meter_events.py
"""

import numpy as np

from repro import BinaryStream, run_stream
from repro.analysis import (
    detection_rates,
    event_labels,
    event_threshold,
    monitored_statistic,
    monitoring_roc,
)

EPSILON = 1.0
WINDOW = 50
HORIZON = 400
N_METERS = 50_000

# Consumption baseline with random evening peaks (the "events").
rng = np.random.default_rng(3)
base = 0.08 + 0.01 * np.sin(2 * np.pi * np.arange(HORIZON) / 96)
spikes = np.zeros(HORIZON)
for start in rng.choice(HORIZON - 20, size=6, replace=False):
    spikes[start : start + 12] += rng.uniform(0.1, 0.2)
probabilities = np.clip(base + spikes, 0.0, 1.0)
stream = BinaryStream(probabilities, n_users=N_METERS, seed=3, name="meters")

true_series = monitored_statistic(stream.frequency_matrix())
delta = event_threshold(true_series)
labels = event_labels(true_series, delta)
print(
    f"{N_METERS} meters, {HORIZON} slots, {int(labels.sum())} event slots "
    f"above delta={delta:.3f}; {EPSILON}-LDP per {WINDOW}-slot window\n"
)

print(f"{'method':<8}{'AUC':>8}{'TPR@delta':>11}{'FPR@delta':>11}{'CFPU':>9}")
for method in ("LBA", "LSP", "LPU", "LPD", "LPA"):
    result = run_stream(method, stream, epsilon=EPSILON, window=WINDOW, seed=9)
    roc = monitoring_roc(result.releases, result.true_frequencies)
    released_series = monitored_statistic(result.releases)
    tpr, fpr = detection_rates(labels, released_series, delta)
    print(f"{method:<8}{roc.auc:>8.3f}{tpr:>11.2f}{fpr:>11.2f}{result.cfpu:>9.4f}")

print(
    "\nExpected shape (paper Fig. 7): the population-division methods "
    "detect events far better than LSP, whose stale fixed-interval "
    "snapshots miss the bursts entirely."
)
