"""Taxi density monitoring — the paper's T-Drive scenario (Section 7.1.2).

A fleet of ~10,000 taxis reports its grid region every 10 minutes; the
operator wants a live density map per region without learning any single
taxi's trajectory.  Each taxi gets w-event LDP: at most eps = 1 of budget
over any 5-hour window (w = 30 ten-minute slots).

The script compares all seven mechanisms on release accuracy, then shows a
small text "density map" from the best one.

Run:  python examples/taxi_density_monitoring.py
"""

import numpy as np

from repro import ALL_METHODS, TaxiSimulator, run_stream
from repro.analysis import mean_absolute_error, mean_relative_error

EPSILON = 1.0
WINDOW = 30
HORIZON = 288  # two simulated days

stream = TaxiSimulator(horizon=HORIZON, seed=42)
print(
    f"Fleet: {stream.n_users} taxis, {stream.domain_size} regions, "
    f"{HORIZON} ten-minute slots; {EPSILON}-LDP per {WINDOW}-slot window\n"
)

results = {}
print(f"{'method':<8}{'MRE':>8}{'MAE':>9}{'CFPU':>9}{'pubs':>6}")
for method in ALL_METHODS:
    # Generative streams replay from t=0 for every mechanism.
    stream.reset()
    result = run_stream(method, stream, epsilon=EPSILON, window=WINDOW, seed=1)
    results[method] = result
    print(
        f"{method:<8}"
        f"{mean_relative_error(result.releases, result.true_frequencies):>8.3f}"
        f"{mean_absolute_error(result.releases, result.true_frequencies):>9.4f}"
        f"{result.cfpu:>9.4f}"
        f"{result.publication_count:>6}"
    )

best = results["LPA"]
print("\nLPA density map (private estimate vs truth), last 6 slots:")
for t in range(HORIZON - 6, HORIZON):
    est = ", ".join(f"{v:5.2f}" for v in np.clip(best.releases[t], 0, 1))
    true = ", ".join(f"{v:5.2f}" for v in best.true_frequencies[t])
    print(f"  t={t}:  est [{est}]   true [{true}]")
