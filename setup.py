"""Package metadata for the LDP-IDS reproduction.

Kept as a plain ``setup.py`` (no ``[project]`` table in pyproject.toml)
so legacy editable installs (``pip install -e .``) keep working in
offline environments where the ``wheel`` package is unavailable.  The
dependency lower bounds are what the code actually relies on:

* ``numpy >= 1.22`` — ``Generator.multinomial`` with a 2-D ``pvals``
  matrix (GRR's batched liar spread) and broadcast ``Generator.binomial``
  over stacked trial/probability arrays (the order-preserving run
  samplers behind bulk ingestion).
* ``pytest >= 7.0`` (test extra) — the tier-1 suite's fixtures use
  modern ``pytest.raises``/parametrize semantics.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ldp-ids",
    version="0.4.0",
    description=(
        "Reproduction of LDP-IDS (SIGMOD 2022): w-event local "
        "differential privacy for infinite data streams"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy>=1.22"],
    extras_require={"test": ["pytest>=7.0"]},
)
