"""repro — a full reproduction of *LDP-IDS: Local Differential Privacy for
Infinite Data Streams* (Ren et al., SIGMOD 2022).

The library provides, end to end:

* LDP **frequency oracles** (GRR, OUE, OLH, SUE) with exact count-level
  samplers and closed-form variances (:mod:`repro.freq_oracles`);
* **stream datasets** — the paper's synthetic LNS/Sin/Log processes and
  generative simulators for its three real-world workloads
  (:mod:`repro.streams`);
* a **collection engine** with a runtime ``w``-event LDP accountant and
  communication metering (:mod:`repro.engine`);
* the seven **mechanisms** LBU, LSP, LBD, LBA, LPU, LPD, LPA
  (:mod:`repro.mechanisms`);
* the **centralized-DP substrate** the paper builds on — Laplace, BD, BA,
  FAST, PeGaSus (:mod:`repro.cdp`);
* **analysis** utilities — MRE/MAE/MSE, event-monitoring ROC, CFPU, and
  the paper's closed-form utility theory (:mod:`repro.analysis`);
* an **experiment harness** regenerating every figure and table of
  Section 7 (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import make_lns, run_stream
>>> from repro.analysis import mean_relative_error
>>> stream = make_lns(n_users=20_000, horizon=100, seed=7)
>>> result = run_stream("LPA", stream, epsilon=1.0, window=20, seed=7)
>>> mre = mean_relative_error(result.releases, result.true_frequencies)
"""

from .engine import (
    SessionGroup,
    SessionResult,
    StepRecord,
    StreamSession,
    UserPool,
    WEventAccountant,
    run_stream,
)
from .query import IntervalEstimate, QueryEngine, ReleaseStore, TopKEntry
from .extensions import LPF
from .related import THRESH
from .exceptions import (
    InvalidParameterError,
    PopulationExhaustedError,
    PrivacyViolationError,
    ReproError,
    StreamAccessError,
)
from .freq_oracles import GRR, OLH, OUE, SUE, FrequencyOracle, get_oracle
from .mechanisms import (
    ALL_METHODS,
    BUDGET_METHODS,
    LBA,
    LBD,
    LBU,
    LPA,
    LPD,
    LPU,
    LSP,
    POPULATION_METHODS,
    StreamMechanism,
    available_mechanisms,
    get_mechanism,
)
from .streams import (
    BinaryStream,
    FoursquareSimulator,
    GenerativeStream,
    MaterializedStream,
    StreamDataset,
    TaobaoSimulator,
    TaxiSimulator,
    make_constant,
    make_lns,
    make_log,
    make_sin,
    make_step,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "run_stream",
    "StreamSession",
    "SessionGroup",
    "SessionResult",
    "StepRecord",
    "WEventAccountant",
    "UserPool",
    # query layer
    "ReleaseStore",
    "QueryEngine",
    "IntervalEstimate",
    "TopKEntry",
    # errors
    "ReproError",
    "InvalidParameterError",
    "PrivacyViolationError",
    "PopulationExhaustedError",
    "StreamAccessError",
    # oracles
    "FrequencyOracle",
    "get_oracle",
    "GRR",
    "OUE",
    "OLH",
    "SUE",
    # mechanisms
    "StreamMechanism",
    "get_mechanism",
    "available_mechanisms",
    "LBU",
    "LSP",
    "LBD",
    "LBA",
    "LPU",
    "LPD",
    "LPA",
    "ALL_METHODS",
    "BUDGET_METHODS",
    "POPULATION_METHODS",
    # streams
    "StreamDataset",
    "MaterializedStream",
    "GenerativeStream",
    "BinaryStream",
    "make_lns",
    "make_sin",
    "make_log",
    "make_step",
    "make_constant",
    "TaxiSimulator",
    "FoursquareSimulator",
    "TaobaoSimulator",
]
