"""Analysis utilities: utility metrics, event monitoring, communication
cost, and the paper's closed-form utility theory (Section 7.1.4 metrics).
"""

from .changepoint import (
    ChangePointReport,
    CusumDetector,
    cusum_detect,
    score_change_points,
)
from .communication import (
    cfpu_budget_adaptive,
    cfpu_budget_uniform,
    cfpu_lpa,
    cfpu_lpd,
    cfpu_sampling,
    predicted_cfpu,
)
from .metrics import (
    kl_divergence,
    mean_absolute_error,
    mean_relative_error,
    mean_relative_error_on_tracked_cell,
    mean_squared_error,
    per_timestamp_mse,
)
from .monitoring import (
    ROCCurve,
    detection_rates,
    event_labels,
    event_threshold,
    monitored_statistic,
    monitoring_roc,
    roc_curve,
)
from .topk import (
    rank_displacement,
    topk_precision,
    topk_recall_curve,
    topk_sets,
)
from .theory import (
    lsp_drift_term,
    mse_lbu,
    mse_lpu,
    mse_lsp,
    publication_variance_lba,
    publication_variance_lbd,
    publication_variance_lpa,
    publication_variance_lpd,
    theorem_6_1_gap,
)

__all__ = [
    "mean_relative_error",
    "mean_absolute_error",
    "mean_squared_error",
    "per_timestamp_mse",
    "mean_relative_error_on_tracked_cell",
    "kl_divergence",
    "ROCCurve",
    "roc_curve",
    "monitoring_roc",
    "monitored_statistic",
    "event_threshold",
    "event_labels",
    "detection_rates",
    "cfpu_budget_uniform",
    "cfpu_sampling",
    "cfpu_budget_adaptive",
    "cfpu_lpd",
    "cfpu_lpa",
    "predicted_cfpu",
    "mse_lbu",
    "mse_lpu",
    "mse_lsp",
    "lsp_drift_term",
    "publication_variance_lbd",
    "publication_variance_lba",
    "publication_variance_lpd",
    "publication_variance_lpa",
    "theorem_6_1_gap",
    "ChangePointReport",
    "CusumDetector",
    "cusum_detect",
    "score_change_points",
    "topk_sets",
    "topk_precision",
    "topk_recall_curve",
    "rank_displacement",
]
