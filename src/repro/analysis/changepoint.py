"""Change-point detection on released streams (CUSUM).

Event monitoring in Section 7.4 asks "is the statistic above a threshold?";
the natural companion question for stream analytics is "when did the level
*change*?".  This module provides a standard one-sided/two-sided CUSUM
detector plus scoring against known true change points (detection delay,
false alarms), used by the monitoring example and the ablation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import InvalidParameterError


@dataclass(frozen=True)
class ChangePointReport:
    """Scoring of detected change points against ground truth."""

    detected: List[int]
    true_points: List[int]
    matched: int
    mean_delay: float
    false_alarms: int

    @property
    def recall(self) -> float:
        return self.matched / len(self.true_points) if self.true_points else 0.0


class CusumDetector:
    """Incremental two-sided CUSUM detector: one value per ``push``.

    The stateful core of :func:`cusum_detect`, exposed so standing
    queries (:mod:`repro.query.standing`) can feed a live release
    stream one timestamp at a time without re-scanning history.  The
    first pushed value becomes the reference; each later push updates
    the one-sided statistics and returns ``True`` iff it raises an
    alarm.  Feeding a series value by value produces exactly the
    alarms :func:`cusum_detect` reports on the whole array — same
    float operations in the same order.
    """

    def __init__(
        self,
        drift: float,
        threshold: float,
        reset_after_alarm: bool = True,
    ):
        if drift < 0 or threshold <= 0:
            raise InvalidParameterError(
                "drift must be >= 0, threshold > 0"
            )
        self.drift = drift
        self.threshold = threshold
        self.reset_after_alarm = reset_after_alarm
        self._reference = None
        self._high = 0.0
        self._low = 0.0
        self.pushed = 0

    def push(self, value) -> bool:
        """Consume the next series value; ``True`` iff it alarms."""
        value = np.float64(value)
        self.pushed += 1
        if self._reference is None:
            self._reference = value
            return False
        deviation = value - self._reference
        self._high = max(0.0, self._high + deviation - self.drift)
        self._low = max(0.0, self._low - deviation - self.drift)
        if self._high > self.threshold or self._low > self.threshold:
            if self.reset_after_alarm:
                self._reference = value
                self._high = self._low = 0.0
            return True
        return False


def cusum_detect(
    series: np.ndarray,
    drift: float,
    threshold: float,
    reset_after_alarm: bool = True,
) -> List[int]:
    """Two-sided CUSUM change detector.

    Accumulates deviations of the series from its running post-change-free
    mean; raises an alarm when either one-sided statistic exceeds
    ``threshold``.  ``drift`` is the slack subtracted per step (choose about
    half the smallest shift you care to detect); ``threshold`` controls the
    false-alarm rate.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1 or series.size == 0:
        raise InvalidParameterError("series must be a non-empty 1-D array")
    detector = CusumDetector(
        drift, threshold, reset_after_alarm=reset_after_alarm
    )
    alarms: List[int] = []
    for t in range(series.size):
        if detector.push(series[t]):
            alarms.append(t)
    return alarms


def score_change_points(
    detected: Sequence[int],
    true_points: Sequence[int],
    tolerance: int,
) -> ChangePointReport:
    """Match detections to true change points within ``tolerance`` steps.

    Each true point matches the earliest unmatched detection in
    ``[point, point + tolerance]`` (detections cannot precede the change);
    remaining detections count as false alarms.
    """
    if tolerance < 0:
        raise InvalidParameterError("tolerance must be >= 0")
    detected = sorted(int(t) for t in detected)
    true_points = sorted(int(t) for t in true_points)
    used = [False] * len(detected)
    delays = []
    for point in true_points:
        for i, alarm in enumerate(detected):
            if not used[i] and point <= alarm <= point + tolerance:
                used[i] = True
                delays.append(alarm - point)
                break
    matched = len(delays)
    return ChangePointReport(
        detected=list(detected),
        true_points=list(true_points),
        matched=matched,
        mean_delay=float(np.mean(delays)) if delays else float("nan"),
        false_alarms=int(len(detected) - matched),
    )
