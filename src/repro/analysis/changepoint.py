"""Change-point detection on released streams (CUSUM).

Event monitoring in Section 7.4 asks "is the statistic above a threshold?";
the natural companion question for stream analytics is "when did the level
*change*?".  This module provides a standard one-sided/two-sided CUSUM
detector plus scoring against known true change points (detection delay,
false alarms), used by the monitoring example and the ablation tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import InvalidParameterError


@dataclass(frozen=True)
class ChangePointReport:
    """Scoring of detected change points against ground truth."""

    detected: List[int]
    true_points: List[int]
    matched: int
    mean_delay: float
    false_alarms: int

    @property
    def recall(self) -> float:
        return self.matched / len(self.true_points) if self.true_points else 0.0


def cusum_detect(
    series: np.ndarray,
    drift: float,
    threshold: float,
    reset_after_alarm: bool = True,
) -> List[int]:
    """Two-sided CUSUM change detector.

    Accumulates deviations of the series from its running post-change-free
    mean; raises an alarm when either one-sided statistic exceeds
    ``threshold``.  ``drift`` is the slack subtracted per step (choose about
    half the smallest shift you care to detect); ``threshold`` controls the
    false-alarm rate.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1 or series.size == 0:
        raise InvalidParameterError("series must be a non-empty 1-D array")
    if drift < 0 or threshold <= 0:
        raise InvalidParameterError("drift must be >= 0, threshold > 0")
    alarms: List[int] = []
    reference = series[0]
    high = low = 0.0
    for t in range(1, series.size):
        deviation = series[t] - reference
        high = max(0.0, high + deviation - drift)
        low = max(0.0, low - deviation - drift)
        if high > threshold or low > threshold:
            alarms.append(t)
            if reset_after_alarm:
                reference = series[t]
                high = low = 0.0
    return alarms


def score_change_points(
    detected: Sequence[int],
    true_points: Sequence[int],
    tolerance: int,
) -> ChangePointReport:
    """Match detections to true change points within ``tolerance`` steps.

    Each true point matches the earliest unmatched detection in
    ``[point, point + tolerance]`` (detections cannot precede the change);
    remaining detections count as false alarms.
    """
    if tolerance < 0:
        raise InvalidParameterError("tolerance must be >= 0")
    detected = sorted(int(t) for t in detected)
    true_points = sorted(int(t) for t in true_points)
    used = [False] * len(detected)
    delays = []
    for point in true_points:
        for i, alarm in enumerate(detected):
            if not used[i] and point <= alarm <= point + tolerance:
                used[i] = True
                delays.append(alarm - point)
                break
    matched = len(delays)
    return ChangePointReport(
        detected=list(detected),
        true_points=list(true_points),
        matched=matched,
        mean_delay=float(np.mean(delays)) if delays else float("nan"),
        false_alarms=int(len(detected) - matched),
    )
