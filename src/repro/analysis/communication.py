"""Communication-cost analysis (Sections 5.4.3 and 6.3.3).

The paper measures communication as **CFPU** — communication frequency per
user: the average number of reports each user sends per timestamp.  The
engine meters actual reports (``SessionResult.cfpu``); this module adds the
paper's closed-form predictions so benches can print predicted-vs-measured:

* budget division (LBD/LBA):  ``1 + m/w``          (Section 5.4.3)
* LPD:                        ``1/w - 1/(w·2^{m+1})``  (Section 6.3.3)
* LPA:                        ``1/(2w) + (w+m)/(4w²)`` (Section 6.3.3)
* LBU: 1;  LSP / LPU: ``1/w``
"""

from __future__ import annotations

from ..exceptions import InvalidParameterError
from ..engine.records import SessionResult


def _check(window: int, publications: float) -> None:
    if window <= 0:
        raise InvalidParameterError(f"window must be positive, got {window}")
    if publications < 0:
        raise InvalidParameterError(
            f"publications must be non-negative, got {publications}"
        )


def cfpu_budget_uniform() -> float:
    """LBU: every user reports once per timestamp."""
    return 1.0


def cfpu_sampling(window: int) -> float:
    """LSP / LPU: each user reports once per window."""
    _check(window, 0)
    return 1.0 / window


def cfpu_budget_adaptive(window: int, publications_per_window: float) -> float:
    """LBD/LBA closed form ``1 + m/w``."""
    _check(window, publications_per_window)
    return 1.0 + publications_per_window / window


def cfpu_lpd(window: int, publications_per_window: float) -> float:
    """LPD closed form ``1/w - 1/(w·2^{m+1})``."""
    _check(window, publications_per_window)
    return 1.0 / window - 1.0 / (window * 2.0 ** (publications_per_window + 1))


def cfpu_lpa(window: int, publications_per_window: float) -> float:
    """LPA closed form ``1/(2w) + (w+m)/(4w²)``."""
    _check(window, publications_per_window)
    return 1.0 / (2.0 * window) + (window + publications_per_window) / (
        4.0 * window * window
    )


def predicted_cfpu(result: SessionResult) -> float:
    """Closed-form CFPU prediction for a finished session.

    Uses the session's *observed* average publications per window
    ``m = publication_rate * w`` in the matching formula.
    """
    m = result.publication_rate * result.window
    mechanism = result.mechanism.upper()
    if mechanism == "LBU":
        return cfpu_budget_uniform()
    if mechanism in ("LSP", "LPU"):
        return cfpu_sampling(result.window)
    if mechanism in ("LBD", "LBA"):
        return cfpu_budget_adaptive(result.window, m)
    if mechanism == "LPD":
        return cfpu_lpd(result.window, m)
    if mechanism == "LPA":
        return cfpu_lpa(result.window, m)
    raise InvalidParameterError(
        f"no closed-form CFPU for mechanism {result.mechanism!r}"
    )
