"""Utility metrics for released streams (Section 7.1.4).

The paper's headline utility metric is the **mean relative error (MRE)**
between the released and true statistics.  Relative error needs a floor for
near-zero true cells; we follow the convention of the stream-DP literature
(Kellaris et al., FAST) and clamp the denominator, with the floor exposed
as a parameter.  Absolute metrics (MAE, MSE) are also provided, as the MSE
is what the paper's closed-form utility analysis predicts.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

#: Default denominator floor for relative errors, as a fraction.  The
#: stream-DP literature (FAST, Kellaris et al.) uses a "sanity bound" of
#: about 1% of the population for exactly this purpose: without it a
#: near-zero true cell makes the relative error of *any* mechanism diverge.
DEFAULT_RELATIVE_FLOOR = 0.01


def _validate_pair(released: np.ndarray, truth: np.ndarray):
    released = np.asarray(released, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if released.shape != truth.shape:
        raise InvalidParameterError(
            f"shape mismatch: released {released.shape} vs truth {truth.shape}"
        )
    return released, truth


def mean_relative_error(
    released: np.ndarray,
    truth: np.ndarray,
    floor: float = DEFAULT_RELATIVE_FLOOR,
) -> float:
    """MRE: mean over all timestamps and cells of ``|r - c| / max(c, floor)``."""
    released, truth = _validate_pair(released, truth)
    if floor <= 0:
        raise InvalidParameterError(f"floor must be positive, got {floor}")
    denominator = np.maximum(truth, floor)
    return float(np.mean(np.abs(released - truth) / denominator))


def mean_absolute_error(released: np.ndarray, truth: np.ndarray) -> float:
    """MAE: mean absolute per-cell error."""
    released, truth = _validate_pair(released, truth)
    return float(np.mean(np.abs(released - truth)))


def mean_squared_error(released: np.ndarray, truth: np.ndarray) -> float:
    """MSE: mean squared per-cell error (the quantity of Eqs. 7-11)."""
    released, truth = _validate_pair(released, truth)
    diff = released - truth
    return float(np.mean(diff * diff))


def per_timestamp_mse(released: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """MSE at each timestamp (mean over domain cells), shape (T,)."""
    released, truth = _validate_pair(released, truth)
    diff = released - truth
    return np.mean(diff * diff, axis=-1)


def mean_relative_error_on_tracked_cell(
    released: np.ndarray,
    truth: np.ndarray,
    cell: int = 1,
    floor: float = DEFAULT_RELATIVE_FLOOR,
) -> float:
    """MRE restricted to one histogram cell.

    For the paper's binary synthetic streams the interesting statistic is
    the frequency of value 1 (the process ``p_t`` itself); this variant
    reports MRE on that single tracked cell.
    """
    released, truth = _validate_pair(released, truth)
    return mean_relative_error(released[..., cell], truth[..., cell], floor=floor)


def kl_divergence(
    released: np.ndarray, truth: np.ndarray, epsilon_mass: float = 1e-9
) -> float:
    """Mean KL(truth || released) per timestamp after clipping/normalising.

    Supplementary metric (not in the paper) useful when comparing whole
    histograms; both arguments are projected to valid distributions first.
    """
    released, truth = _validate_pair(released, truth)
    r = np.clip(released, epsilon_mass, None)
    c = np.clip(truth, epsilon_mass, None)
    r = r / r.sum(axis=-1, keepdims=True)
    c = c / c.sum(axis=-1, keepdims=True)
    return float(np.mean(np.sum(c * np.log(c / r), axis=-1)))
