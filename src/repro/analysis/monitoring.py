"""Event monitoring: above-threshold detection and ROC analysis (Section 7.4).

The paper evaluates how well each mechanism supports real-time monitoring:
an *event* fires at timestamp ``t`` when the monitored statistic exceeds a
threshold ``delta = 0.75 * (max - min) + min`` computed on the true series.
For binary synthetic streams the monitored statistic is the frequency of
value 1; for the non-binary real-world datasets the paper monitors the mean
value of the histogram.

A released series induces a score per timestamp; sweeping a decision
threshold over the scores yields the ROC curve (TPR vs FPR) against the
ground-truth event labels, and the AUC summarises it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import InvalidParameterError

#: The paper's threshold position between min and max of the true series.
DEFAULT_THRESHOLD_QUANTILE = 0.75


def monitored_statistic(frequencies: np.ndarray, binary: Optional[bool] = None):
    """Reduce a (T, d) frequency matrix to the monitored scalar series.

    Binary streams (d == 2) monitor the frequency of value 1 (the process
    ``p_t`` itself).  For non-binary streams the paper monitors "the mean
    value of the histogram"; on *count* histograms that tracks overall
    magnitude, but our released histograms are normalised frequencies whose
    mean is identically ``1/d``.  The equivalent extreme-event signal on
    normalised histograms is the **peak cell** — a burst on any category
    raises it — so that is what non-binary streams monitor here (the
    deviation is recorded in EXPERIMENTS.md).
    """
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if frequencies.ndim != 2:
        raise InvalidParameterError("expected a (T, d) frequency matrix")
    is_binary = frequencies.shape[1] == 2 if binary is None else binary
    if is_binary:
        return frequencies[:, 1]
    return frequencies.max(axis=1)


def event_threshold(
    true_series: np.ndarray, quantile: float = DEFAULT_THRESHOLD_QUANTILE
) -> float:
    """The paper's threshold ``delta = q * (max - min) + min``."""
    series = np.asarray(true_series, dtype=np.float64)
    if series.ndim != 1 or series.size == 0:
        raise InvalidParameterError("true_series must be a non-empty 1-D array")
    low, high = float(series.min()), float(series.max())
    return quantile * (high - low) + low


def event_labels(
    true_series: np.ndarray, threshold: Optional[float] = None
) -> np.ndarray:
    """Boolean above-threshold labels on the true series."""
    series = np.asarray(true_series, dtype=np.float64)
    delta = event_threshold(series) if threshold is None else float(threshold)
    return series > delta


@dataclass(frozen=True)
class ROCCurve:
    """An ROC curve: matched FPR/TPR arrays plus the swept thresholds."""

    false_positive_rate: np.ndarray
    true_positive_rate: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve via trapezoidal integration."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.true_positive_rate, self.false_positive_rate))


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> ROCCurve:
    """ROC curve of ``scores`` against boolean ``labels``.

    Standard construction: sort by score descending, sweep the decision
    threshold through every distinct score.  Degenerate label sets (all
    positive / all negative) raise, as the ROC is undefined.
    """
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise InvalidParameterError("labels and scores must be matching 1-D arrays")
    n_pos = int(labels.sum())
    n_neg = int(labels.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise InvalidParameterError(
            "ROC undefined: need both positive and negative labels"
        )
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(~sorted_labels)
    # Collapse ties: keep the last index of each distinct score.
    distinct = np.nonzero(np.diff(sorted_scores, append=-np.inf))[0]
    tpr = np.concatenate([[0.0], tp[distinct] / n_pos])
    fpr = np.concatenate([[0.0], fp[distinct] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[distinct]])
    return ROCCurve(
        false_positive_rate=fpr, true_positive_rate=tpr, thresholds=thresholds
    )


def detection_rates(
    labels: np.ndarray, scores: np.ndarray, threshold: float
) -> tuple[float, float]:
    """(TPR, FPR) of the fixed-threshold detector ``score > threshold``."""
    labels = np.asarray(labels, dtype=bool)
    predictions = np.asarray(scores, dtype=np.float64) > threshold
    n_pos = int(labels.sum())
    n_neg = int(labels.size - n_pos)
    tpr = float((predictions & labels).sum() / n_pos) if n_pos else 0.0
    fpr = float((predictions & ~labels).sum() / n_neg) if n_neg else 0.0
    return tpr, fpr


def monitoring_roc(
    releases: np.ndarray,
    truth: np.ndarray,
    quantile: float = DEFAULT_THRESHOLD_QUANTILE,
) -> ROCCurve:
    """End-to-end ROC for one session: releases scored against true events."""
    true_series = monitored_statistic(truth)
    released_series = monitored_statistic(releases)
    labels = event_labels(true_series, event_threshold(true_series, quantile))
    return roc_curve(labels, released_series)
