"""Closed-form utility theory (Sections 5.4.2, 6.3.2 and Theorem 6.1).

These functions reproduce the paper's analytical MSE expressions so the
test suite and the ablation bench can check simulation against theory:

* LBU:  ``MSE = V(eps/w, N)``
* LPU:  ``MSE = V(eps, N/w)``  — Theorem 6.1 proves LPU < LBU for GRR/OUE
* LSP:  ``V(eps, N)`` plus the data-dependent drift term
* LBD:  publication-budget sequence ``eps/4, eps/8, ...`` → Eq. (8)
* LBA:  ``m · V((w+m)/(4wm) · eps, N)`` → Eq. (9)
* LPD:  population sequence ``N/4, N/8, ...`` → Eq. (10)
* LPA:  ``m · V(eps, (w+m)/(4wm) · N)`` → Eq. (11)

``variance_fn`` defaults to the GRR mean variance; any oracle's
``V(eps, n)`` with the same signature can be substituted.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import InvalidParameterError
from ..freq_oracles.variance import grr_mean_variance

VarianceFn = Callable[[float, int, int], float]


def _publications_valid(m: int, window: int) -> None:
    if m < 1 or m > window:
        raise InvalidParameterError(
            f"publication count m must be in [1, w]; got m={m}, w={window}"
        )


def mse_lbu(
    epsilon: float,
    n_users: int,
    window: int,
    domain_size: int,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """LBU window MSE ``V(eps/w, N)`` (Section 5.2.1)."""
    return variance_fn(epsilon / window, n_users, domain_size)


def mse_lpu(
    epsilon: float,
    n_users: int,
    window: int,
    domain_size: int,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """LPU window MSE ``V(eps, N/w)`` (Section 6.1)."""
    group = max(1, n_users // window)
    return variance_fn(epsilon, group, domain_size)


def mse_lsp(
    epsilon: float,
    n_users: int,
    window: int,
    domain_size: int,
    drift_term: float = 0.0,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """LSP window MSE ``V(eps, N) + (1/w) Σ (c_t - c_l)^2`` (Section 5.2.2).

    ``drift_term`` carries the data-dependent sum, computable from a true
    frequency matrix via :func:`lsp_drift_term`.
    """
    return variance_fn(epsilon, n_users, domain_size) + drift_term


def lsp_drift_term(true_frequencies: np.ndarray, window: int) -> float:
    """Average squared drift from window-start snapshots, the LSP penalty."""
    freqs = np.asarray(true_frequencies, dtype=np.float64)
    if freqs.ndim != 2:
        raise InvalidParameterError("true_frequencies must be (T, d)")
    total, count = 0.0, 0
    for start in range(0, freqs.shape[0], window):
        anchor = freqs[start]
        block = freqs[start : start + window]
        total += float(np.mean((block - anchor) ** 2, axis=1).sum())
        count += block.shape[0]
    return total / max(1, count)


def publication_variance_lbd(
    epsilon: float,
    n_users: int,
    m: int,
    domain_size: int,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """Σ Var over LBD's m publications: budgets ``eps/4, ..., eps/2^{m+1}``."""
    _publications_valid(m, m)
    return sum(
        variance_fn(epsilon / 2.0 ** (i + 1), n_users, domain_size)
        for i in range(1, m + 1)
    )


def publication_variance_lba(
    epsilon: float,
    n_users: int,
    m: int,
    window: int,
    domain_size: int,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """Eq. (9): ``m · V((w+m)/(4wm)·eps, N)``."""
    _publications_valid(m, window)
    per_publication = (window + m) * epsilon / (4.0 * window * m)
    return m * variance_fn(per_publication, n_users, domain_size)


def publication_variance_lpd(
    epsilon: float,
    n_users: int,
    m: int,
    domain_size: int,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """Eq. (10): populations ``N/4, ..., N/2^{m+1}`` at full budget."""
    _publications_valid(m, m)
    return sum(
        variance_fn(epsilon, max(1, n_users // 2 ** (i + 1)), domain_size)
        for i in range(1, m + 1)
    )


def publication_variance_lpa(
    epsilon: float,
    n_users: int,
    m: int,
    window: int,
    domain_size: int,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """Eq. (11): ``m · V(eps, (w+m)/(4wm)·N)``."""
    _publications_valid(m, window)
    per_publication = max(1, int((window + m) * n_users / (4.0 * window * m)))
    return m * variance_fn(epsilon, per_publication, domain_size)


def theorem_6_1_gap(
    epsilon: float,
    n_users: int,
    window: int,
    domain_size: int,
    variance_fn: VarianceFn = grr_mean_variance,
) -> float:
    """``MSE(LBU) - MSE(LPU)`` — strictly positive by Theorem 6.1."""
    return mse_lbu(
        epsilon, n_users, window, domain_size, variance_fn
    ) - mse_lpu(epsilon, n_users, window, domain_size, variance_fn)
