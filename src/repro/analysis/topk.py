"""Top-k tracking quality on released histogram streams.

A common downstream use of the released stream (e.g. the Taobao ad
dashboard) is maintaining the top-k categories over time.  These helpers
score how well a private release preserves the true top-k:

* :func:`topk_sets` — the per-timestamp top-k index sets of a trace;
* :func:`topk_precision` — mean |released-top-k ∩ true-top-k| / k;
* :func:`topk_recall_curve` — precision as a function of k;
* :func:`rank_displacement` — mean absolute rank error of the true top-k
  items in the released ranking.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import InvalidParameterError


def _validate(trace: np.ndarray, k: int) -> np.ndarray:
    trace = np.asarray(trace, dtype=np.float64)
    if trace.ndim != 2:
        raise InvalidParameterError("trace must be (T, d)")
    if not 1 <= k <= trace.shape[1]:
        raise InvalidParameterError(
            f"k must be in [1, {trace.shape[1]}], got {k}"
        )
    return trace


def topk_sets(trace: np.ndarray, k: int) -> List[set]:
    """Per-timestamp sets of the k largest cells."""
    trace = _validate(trace, k)
    order = np.argsort(-trace, axis=1, kind="stable")
    return [set(row[:k].tolist()) for row in order]


def topk_precision(released: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Mean over timestamps of |top-k(released) ∩ top-k(truth)| / k."""
    released = _validate(released, k)
    truth = _validate(truth, k)
    if released.shape != truth.shape:
        raise InvalidParameterError("released/truth shape mismatch")
    hits = [
        len(a & b) / k
        for a, b in zip(topk_sets(released, k), topk_sets(truth, k))
    ]
    return float(np.mean(hits))


def topk_recall_curve(
    released: np.ndarray, truth: np.ndarray, max_k: int
) -> dict[int, float]:
    """``{k: precision}`` for k = 1..max_k."""
    return {
        k: topk_precision(released, truth, k) for k in range(1, max_k + 1)
    }


def rank_displacement(released: np.ndarray, truth: np.ndarray, k: int) -> float:
    """Mean |rank_released(item) - rank_true(item)| over the true top-k."""
    released = _validate(released, k)
    truth = _validate(truth, k)
    if released.shape != truth.shape:
        raise InvalidParameterError("released/truth shape mismatch")
    displacement = []
    for t in range(truth.shape[0]):
        true_order = np.argsort(-truth[t], kind="stable")
        released_rank = np.empty(truth.shape[1], dtype=np.int64)
        released_rank[np.argsort(-released[t], kind="stable")] = np.arange(
            truth.shape[1]
        )
        for rank, item in enumerate(true_order[:k]):
            displacement.append(abs(released_rank[item] - rank))
    return float(np.mean(displacement))
