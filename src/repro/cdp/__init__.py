"""Centralized-DP substrate (Section 3.2 and Remark 3).

* :class:`CDPUniform` / :class:`CDPSample` — the naive baselines;
* :class:`BD` / :class:`BA` — Kellaris et al.'s ``w``-event methods that
  LBD/LBA (and LPD/LPA) are derived from;
* :class:`FAST` — adaptive sampling + Kalman filtering (Fan & Xiong);
* :class:`PeGaSus` — perturb-group-smooth (Chen et al.).
"""

from .ba import BA
from .base import (
    CDPResult,
    CDPStreamMechanism,
    FREQUENCY_SENSITIVITY,
    frequency_noise_scale,
)
from .baselines import CDPSample, CDPUniform
from .bd import BD
from .fast import FAST, PIDController, ScalarKalmanFilter
from .pegasus import PeGaSus
from .rescuedp import RescueDP, group_dimensions

__all__ = [
    "CDPResult",
    "CDPStreamMechanism",
    "FREQUENCY_SENSITIVITY",
    "frequency_noise_scale",
    "CDPUniform",
    "CDPSample",
    "BD",
    "BA",
    "FAST",
    "PIDController",
    "ScalarKalmanFilter",
    "PeGaSus",
    "RescueDP",
    "group_dimensions",
]
