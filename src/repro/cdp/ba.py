"""BA — Budget Absorption with ``w``-event CDP (Kellaris et al. 2014).

The centralized ancestor of LBA: publication budget is pre-allocated
uniformly (``eps/(2w)`` per timestamp); a publication absorbs the unused
budget of preceding skipped timestamps (capped at ``w``) and nullifies an
equal number of following timestamps.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng
from .base import (
    CDPResult,
    CDPStreamMechanism,
    frequency_noise_scale,
    laplace_noise,
)


class BA(CDPStreamMechanism):
    """Kellaris et al.'s Budget Absorption (centralized ``w``-event DP)."""

    name = "BA"

    def release(self, true_frequencies, n_users, epsilon, window, seed=None):
        freqs = self._validate(true_frequencies, n_users, epsilon, window)
        rng = ensure_rng(seed)
        horizon, d = freqs.shape
        unit = epsilon / (2.0 * window)
        dissim_scale = 2.0 / (unit * n_users * d)
        releases = np.empty_like(freqs)
        strategies = []
        last = np.zeros(d)
        last_pub_t = -1
        last_pub_epsilon = 0.0
        for t in range(horizon):
            dis = float(np.mean(np.abs(freqs[t] - last))) + float(
                rng.laplace(0.0, dissim_scale)
            )
            to_nullify = last_pub_epsilon / unit - 1.0
            if t - last_pub_t <= to_nullify:
                strategies.append("nullified")
                releases[t] = last
                continue
            absorbable = t - (last_pub_t + to_nullify)
            pub_epsilon = unit * min(absorbable, float(window))
            err = (
                frequency_noise_scale(pub_epsilon, n_users)
                if pub_epsilon > 0
                else np.inf
            )
            if dis > err:
                last = freqs[t] + laplace_noise(
                    rng, frequency_noise_scale(pub_epsilon, n_users), d
                )
                last_pub_t = t
                last_pub_epsilon = pub_epsilon
                strategies.append("publish")
            else:
                strategies.append("approximate")
            releases[t] = last
        return CDPResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_frequencies=freqs,
            strategies=strategies,
        )
