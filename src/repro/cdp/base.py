"""Centralized-DP (CDP) stream mechanisms — the paper's ancestry.

The budget-division methods of Section 5 are LDP ports of Kellaris et al.'s
BD/BA (Section 3.2), which assume a *trusted* aggregator that sees the true
histogram ``c_t`` and perturbs it with Laplace noise before release.  This
subpackage implements that substrate so the repository contains the full
lineage: naive uniform/sampling baselines, BD, BA, and the Remark-3
mechanisms FAST and PeGaSus.

CDP mechanisms consume the *true frequency matrix* directly (the trusted
aggregator sees raw data) plus the population size ``n`` that fixes the
noise scale: a frequency histogram over ``n`` users has L1 sensitivity
``2/n`` when one user changes value (one cell down, one up).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike

#: L1 sensitivity of a frequency histogram to one user's value change.
FREQUENCY_SENSITIVITY = 2.0


def laplace_noise(
    rng: np.random.Generator, scale: float, size: int
) -> np.ndarray:
    """Draw d-dimensional Laplace noise with the given scale."""
    return rng.laplace(0.0, scale, size=size)


def frequency_noise_scale(epsilon: float, n_users: int) -> float:
    """Laplace scale for an ``epsilon``-DP frequency-histogram release."""
    if epsilon <= 0:
        raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
    if n_users <= 0:
        raise InvalidParameterError(f"n_users must be positive, got {n_users}")
    return FREQUENCY_SENSITIVITY / (epsilon * n_users)


@dataclass
class CDPResult:
    """Output of a CDP stream mechanism."""

    mechanism: str
    epsilon: float
    window: int
    releases: np.ndarray
    true_frequencies: np.ndarray
    strategies: List[str] = field(default_factory=list)

    @property
    def publication_count(self) -> int:
        return sum(1 for s in self.strategies if s == "publish")


class CDPStreamMechanism(abc.ABC):
    """Base class: release a private stream from a true frequency matrix."""

    name: str = ""

    @abc.abstractmethod
    def release(
        self,
        true_frequencies: np.ndarray,
        n_users: int,
        epsilon: float,
        window: int,
        seed: SeedLike = None,
    ) -> CDPResult:
        """Run the mechanism over the full (T, d) true frequency matrix."""

    @staticmethod
    def _validate(
        true_frequencies: np.ndarray, n_users: int, epsilon: float, window: int
    ) -> np.ndarray:
        freqs = np.asarray(true_frequencies, dtype=np.float64)
        if freqs.ndim != 2 or freqs.shape[0] == 0:
            raise InvalidParameterError("true_frequencies must be (T, d), T >= 1")
        if n_users <= 0:
            raise InvalidParameterError(f"n_users must be positive, got {n_users}")
        if epsilon <= 0:
            raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        return freqs
