"""Naive CDP baselines of Section 3.2: uniform budget and fixed sampling.

* :class:`CDPUniform` — the "naive method": an ``eps/w``-DP Laplace release
  at every timestamp.
* :class:`CDPSample` — the "another simple method": one fresh ``eps``-DP
  release per window, approximated at the remaining timestamps.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng
from .base import (
    CDPResult,
    CDPStreamMechanism,
    frequency_noise_scale,
    laplace_noise,
)


class CDPUniform(CDPStreamMechanism):
    """Even budget split: Laplace(``2/(n·eps/w)``) on every timestamp."""

    name = "CDP-Uniform"

    def release(self, true_frequencies, n_users, epsilon, window, seed=None):
        freqs = self._validate(true_frequencies, n_users, epsilon, window)
        rng = ensure_rng(seed)
        scale = frequency_noise_scale(epsilon / window, n_users)
        noise = rng.laplace(0.0, scale, size=freqs.shape)
        return CDPResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=freqs + noise,
            true_frequencies=freqs,
            strategies=["publish"] * freqs.shape[0],
        )


class CDPSample(CDPStreamMechanism):
    """Fixed sampling: full-budget release once per window, then reuse."""

    name = "CDP-Sample"

    def release(self, true_frequencies, n_users, epsilon, window, seed=None):
        freqs = self._validate(true_frequencies, n_users, epsilon, window)
        rng = ensure_rng(seed)
        scale = frequency_noise_scale(epsilon, n_users)
        releases = np.empty_like(freqs)
        strategies = []
        current = np.zeros(freqs.shape[1])
        for t in range(freqs.shape[0]):
            if t % window == 0:
                current = freqs[t] + laplace_noise(rng, scale, freqs.shape[1])
                strategies.append("publish")
            else:
                strategies.append("approximate")
            releases[t] = current
        return CDPResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_frequencies=freqs,
            strategies=strategies,
        )
