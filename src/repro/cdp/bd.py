"""BD — Budget Distribution with ``w``-event CDP (Kellaris et al. 2014).

The centralized ancestor of LBD (Section 3.2): at each timestamp,

1. *private dissimilarity calculation* — the mean absolute distance between
   the current true histogram and the last release is perturbed with the
   fixed dissimilarity budget ``eps/(2w)``;
2. *private strategy determination* — half the remaining publication
   budget in the window is pre-assigned; its expected Laplace error is
   compared with the dissimilarity;
3. *budget allocation* — publication spends the pre-assigned budget
   (exponentially decaying across publications); approximation spends
   nothing and re-releases the last histogram.
"""

from __future__ import annotations

import numpy as np

from ..rng import ensure_rng
from ..streams.windows import SlidingWindowSum
from .base import (
    CDPResult,
    CDPStreamMechanism,
    frequency_noise_scale,
    laplace_noise,
)

#: Budgets below this are unusable: expected error treated as infinite.
_MIN_USABLE_EPSILON = 1e-6


class BD(CDPStreamMechanism):
    """Kellaris et al.'s Budget Distribution (centralized ``w``-event DP)."""

    name = "BD"

    def release(self, true_frequencies, n_users, epsilon, window, seed=None):
        freqs = self._validate(true_frequencies, n_users, epsilon, window)
        rng = ensure_rng(seed)
        horizon, d = freqs.shape
        dissim_epsilon = epsilon / (2.0 * window)
        # Dissimilarity has sensitivity 2/(n·d): one user's change moves two
        # cells of c_t by 1/n each, changing the mean |.| by at most 2/(n d).
        dissim_scale = 2.0 / (dissim_epsilon * n_users * d)
        spent = SlidingWindowSum(window)
        releases = np.empty_like(freqs)
        strategies = []
        last = np.zeros(d)
        for t in range(horizon):
            dis = float(np.mean(np.abs(freqs[t] - last))) + float(
                rng.laplace(0.0, dissim_scale)
            )
            remaining = max(0.0, epsilon / 2.0 - spent.window_sum(t))
            pub_epsilon = remaining / 2.0
            if pub_epsilon >= _MIN_USABLE_EPSILON:
                err = frequency_noise_scale(pub_epsilon, n_users)
            else:
                err = np.inf
            if dis > err:
                last = freqs[t] + laplace_noise(
                    rng, frequency_noise_scale(pub_epsilon, n_users), d
                )
                spent.record(t, pub_epsilon)
                strategies.append("publish")
            else:
                spent.record(t, 0.0)
                strategies.append("approximate")
            releases[t] = last
        return CDPResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_frequencies=freqs,
            strategies=strategies,
        )
