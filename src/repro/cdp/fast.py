"""FAST — adaptive sampling + filtering for DP streams (Fan & Xiong 2014).

Remark 3 of the paper names FAST as a centralized method the population-
division framework can host.  FAST releases a private stream by

1. **sampling** a subset of timestamps and spending Laplace budget only
   there;
2. **filtering** — a scalar Kalman filter per histogram cell predicts the
   statistic between samples and corrects at samples (prediction/correction
   smoothing of the Laplace noise);
3. **adaptive sampling** — a PID controller on the filter's innovation
   error grows or shrinks the sampling interval to follow stream dynamics.

This implementation follows the published structure with a fixed per-sample
budget ``eps / max_samples`` over a user-level-DP horizon (the original
targets finite streams; the paper's LDP extension in
:mod:`repro.extensions.ldp_fast` adapts it to ``w``-event population
division).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import ensure_rng
from .base import CDPResult, CDPStreamMechanism, frequency_noise_scale


@dataclass
class PIDController:
    """Discrete PID controller on the normalised sampling error signal."""

    kp: float = 0.9
    ki: float = 0.1
    kd: float = 0.0
    setpoint: float = 0.1

    def __post_init__(self) -> None:
        self._integral = 0.0
        self._last_error = 0.0

    def update(self, error: float) -> float:
        """Return the control signal for the latest feedback ``error``."""
        delta = error - self.setpoint
        self._integral += delta
        derivative = delta - self._last_error + self.setpoint
        self._last_error = error
        return self.kp * delta + self.ki * self._integral + self.kd * derivative


class ScalarKalmanFilter:
    """Random-walk Kalman filter for one histogram cell.

    Model: state ``x_t = x_{t-1} + w`` with process variance ``q``;
    observation ``z_t = x_t + v`` with measurement variance ``r`` (the
    Laplace noise variance ``2 b^2``).
    """

    def __init__(self, process_variance: float, measurement_variance: float):
        if process_variance <= 0 or measurement_variance <= 0:
            raise InvalidParameterError("variances must be positive")
        self.q = float(process_variance)
        self.r = float(measurement_variance)
        self.x = 0.0
        self.p = 1.0

    def predict(self) -> float:
        """Time update: propagate the state and inflate uncertainty."""
        self.p += self.q
        return self.x

    def correct(self, observation: float) -> float:
        """Measurement update; returns the posterior estimate."""
        gain = self.p / (self.p + self.r)
        self.x += gain * (observation - self.x)
        self.p *= 1.0 - gain
        return self.x

    @property
    def innovation_gain(self) -> float:
        """Current Kalman gain (used as the PID feedback signal)."""
        return self.p / (self.p + self.r)


class FAST(CDPStreamMechanism):
    """Fan & Xiong's FAST with PID-adaptive sampling and Kalman filtering.

    Parameters
    ----------
    max_samples:
        Budget is split as ``eps / max_samples`` per sampled timestamp
        (user-level DP over the finite horizon).
    pid:
        Controller for the adaptive sampling interval.
    process_variance:
        Kalman process noise ``q``; larger values trust fresh samples more.
    """

    name = "FAST"

    def __init__(
        self,
        max_samples: int = 40,
        pid: PIDController | None = None,
        process_variance: float = 1e-5,
    ):
        if max_samples < 1:
            raise InvalidParameterError("max_samples must be >= 1")
        self.max_samples = int(max_samples)
        self.pid = pid if pid is not None else PIDController()
        self.process_variance = float(process_variance)

    def release(self, true_frequencies, n_users, epsilon, window, seed=None):
        freqs = self._validate(true_frequencies, n_users, epsilon, window)
        rng = ensure_rng(seed)
        horizon, d = freqs.shape
        per_sample = epsilon / self.max_samples
        scale = frequency_noise_scale(per_sample, n_users)
        measurement_variance = 2.0 * scale * scale
        filters = [
            ScalarKalmanFilter(self.process_variance, measurement_variance)
            for _ in range(d)
        ]
        releases = np.empty_like(freqs)
        strategies = []
        interval = 1.0
        next_sample = 0.0
        samples_used = 0
        for t in range(horizon):
            prediction = np.array([f.predict() for f in filters])
            if t >= next_sample and samples_used < self.max_samples:
                observation = freqs[t] + rng.laplace(0.0, scale, size=d)
                estimate = np.array(
                    [f.correct(z) for f, z in zip(filters, observation)]
                )
                samples_used += 1
                strategies.append("publish")
                # PID feedback: mean Kalman gain measures how much the
                # filter had to trust the new sample.
                feedback = float(np.mean([f.innovation_gain for f in filters]))
                control = self.pid.update(feedback)
                interval = float(np.clip(interval + control * interval, 1.0, 64.0))
                next_sample = t + interval
            else:
                estimate = prediction
                strategies.append("approximate")
            releases[t] = estimate
        return CDPResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_frequencies=freqs,
            strategies=strategies,
        )
