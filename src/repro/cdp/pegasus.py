"""PeGaSus — Perturb / Group / Smooth for DP streams (Chen et al. 2017).

The second Remark-3 mechanism: an event-level DP stream release that splits
the budget between a **Perturber** (Laplace noise on every timestamp, budget
``eps_p``) and a **Grouper** (a deviation-based private partition of the
timeline, budget ``eps_g``); a **Smoother** then averages the perturbed
values inside each group, shrinking noise on stable segments without extra
budget (post-processing).

This implementation uses the paper's sparse-vector-style grouper: a group
is closed when its private deviation estimate exceeds a threshold, so long
flat stretches form large groups (strong smoothing) while change points cut
groups short.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import ensure_rng
from .base import CDPResult, CDPStreamMechanism, frequency_noise_scale


class PeGaSus(CDPStreamMechanism):
    """Perturb-Group-Smooth event-level DP stream release.

    Parameters
    ----------
    perturber_fraction:
        Share of the budget given to the Perturber (rest goes to the
        Grouper's deviation test).
    deviation_threshold:
        Group-closing threshold on the (private) in-group deviation of the
        true series, expressed in frequency units.
    """

    name = "PeGaSus"

    def __init__(
        self,
        perturber_fraction: float = 0.8,
        deviation_threshold: float = 0.005,
    ):
        if not 0.0 < perturber_fraction < 1.0:
            raise InvalidParameterError("perturber_fraction must be in (0, 1)")
        if deviation_threshold <= 0:
            raise InvalidParameterError("deviation_threshold must be positive")
        self.perturber_fraction = float(perturber_fraction)
        self.deviation_threshold = float(deviation_threshold)

    def release(self, true_frequencies, n_users, epsilon, window, seed=None):
        freqs = self._validate(true_frequencies, n_users, epsilon, window)
        rng = ensure_rng(seed)
        horizon, d = freqs.shape
        eps_perturb = epsilon * self.perturber_fraction
        eps_group = epsilon - eps_perturb
        perturb_scale = frequency_noise_scale(eps_perturb, n_users)
        group_scale = frequency_noise_scale(eps_group, n_users)

        perturbed = freqs + rng.laplace(0.0, perturb_scale, size=freqs.shape)
        releases = np.empty_like(freqs)
        strategies = ["publish"] * horizon

        # Grouper + Smoother per cell: grow a group while the private
        # deviation of the true series inside it stays under threshold,
        # then smooth by averaging the perturbed values in the group.
        for k in range(d):
            start = 0
            for t in range(horizon):
                group = freqs[start : t + 1, k]
                deviation = float(group.max() - group.min()) + float(
                    rng.laplace(0.0, group_scale)
                )
                close_group = deviation > self.deviation_threshold or t == horizon - 1
                if close_group:
                    releases[start : t + 1, k] = perturbed[start : t + 1, k].mean()
                    start = t + 1
            if start < horizon:
                releases[start:, k] = perturbed[start:, k].mean()
        return CDPResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_frequencies=freqs,
            strategies=strategies,
        )
