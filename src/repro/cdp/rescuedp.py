"""RescueDP — real-time spatio-temporal crowd-sourced data publishing with
``w``-event CDP (Wang et al., INFOCOM 2016).

The third Remark-3 substrate.  RescueDP extends FAST's sampling+filtering
to multi-dimensional streams under ``w``-event privacy with four
components, all present here in simplified but faithful form:

* **adaptive sampling** — a PID-controlled sampling interval (shared
  controller; the original runs one per dimension group);
* **dynamic grouping** — dimensions with similar current estimates are
  grouped; each group is perturbed on its *aggregate* and the noise is
  shared across members, so many small cells cost one cell's noise;
* **adaptive budget allocation** — each sampling point receives a
  decaying fraction of the remaining window budget (as in BD), tracked by
  a sliding-window ledger so any ``w`` consecutive timestamps spend at
  most ``epsilon``;
* **filtering** — a scalar Kalman filter per dimension smooths the
  released trajectory between and at sampling points.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import ensure_rng
from ..streams.windows import SlidingWindowSum
from .base import CDPResult, CDPStreamMechanism, frequency_noise_scale
from .fast import PIDController, ScalarKalmanFilter

#: Budgets below this are unusable; the sampler skips the timestamp.
_MIN_USABLE_EPSILON = 1e-6


def group_dimensions(estimates: np.ndarray, tolerance: float) -> List[np.ndarray]:
    """Greedy grouping of dimensions whose estimates differ < ``tolerance``.

    Sort cells by value and cut whenever the gap to the group's first
    member exceeds the tolerance — O(d log d) and deterministic.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    order = np.argsort(estimates, kind="stable")
    groups: List[List[int]] = []
    current: List[int] = []
    anchor = 0.0
    for idx in order:
        value = estimates[idx]
        if not current or value - anchor <= tolerance:
            if not current:
                anchor = value
            current.append(int(idx))
        else:
            groups.append(current)
            current = [int(idx)]
            anchor = value
    if current:
        groups.append(current)
    return [np.asarray(g, dtype=np.int64) for g in groups]


class RescueDP(CDPStreamMechanism):
    """Simplified RescueDP (grouping + PID sampling + Kalman + budget)."""

    name = "RescueDP"

    def __init__(
        self,
        grouping_tolerance: float = 0.02,
        budget_fraction: float = 0.5,
        process_variance: float = 1e-5,
        pid: PIDController | None = None,
    ):
        if not 0 < budget_fraction < 1:
            raise InvalidParameterError("budget_fraction must be in (0, 1)")
        if grouping_tolerance < 0:
            raise InvalidParameterError("grouping_tolerance must be >= 0")
        self.grouping_tolerance = float(grouping_tolerance)
        self.budget_fraction = float(budget_fraction)
        self.process_variance = float(process_variance)
        self.pid = pid if pid is not None else PIDController()

    def release(self, true_frequencies, n_users, epsilon, window, seed=None):
        freqs = self._validate(true_frequencies, n_users, epsilon, window)
        rng = ensure_rng(seed)
        horizon, d = freqs.shape
        spent = SlidingWindowSum(window)
        filters: List[ScalarKalmanFilter] | None = None
        releases = np.empty_like(freqs)
        strategies = []
        estimate = np.zeros(d)
        interval = 1.0
        next_sample = 0.0

        for t in range(horizon):
            remaining = max(0.0, epsilon - spent.window_sum(t))
            sample_epsilon = remaining * self.budget_fraction
            if t >= next_sample and sample_epsilon >= _MIN_USABLE_EPSILON:
                scale = frequency_noise_scale(sample_epsilon, n_users)
                # Dynamic grouping on the previous estimate: small/similar
                # cells share one aggregate observation.  The very first
                # sample has no estimate to group on — observe every cell
                # individually to bootstrap.
                if filters is None:
                    groups = [np.array([k]) for k in range(d)]
                else:
                    groups = group_dimensions(estimate, self.grouping_tolerance)
                observation = np.empty(d)
                for group in groups:
                    aggregate = freqs[t, group].sum() + rng.laplace(0.0, scale)
                    share = (
                        estimate[group] / estimate[group].sum()
                        if estimate[group].sum() > 1e-9
                        else np.full(group.size, 1.0 / group.size)
                    )
                    observation[group] = aggregate * share
                if filters is None:
                    filters = [
                        ScalarKalmanFilter(
                            self.process_variance, 2.0 * scale * scale
                        )
                        for _ in range(d)
                    ]
                else:
                    for f in filters:
                        f.r = 2.0 * scale * scale
                for f in filters:
                    f.predict()
                estimate = np.array(
                    [f.correct(z) for f, z in zip(filters, observation)]
                )
                spent.record(t, sample_epsilon)
                strategies.append("publish")
                feedback = float(np.mean([f.innovation_gain for f in filters]))
                control = self.pid.update(feedback)
                interval = float(np.clip(interval + control * interval, 1.0, 32.0))
                next_sample = t + interval
            else:
                if filters is not None:
                    for f in filters:
                        f.predict()
                    estimate = np.array([f.x for f in filters])
                spent.record(t, 0.0)
                strategies.append("approximate")
            releases[t] = estimate

        return CDPResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_frequencies=freqs,
            strategies=strategies,
        )
