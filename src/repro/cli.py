"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       one streaming session; prints metrics, optionally saves JSON/CSV
``stream``    drive an online session from piped per-timestamp input
``serve``     keep a session hot; answer JSON queries over a piped stream
``query``     one-shot top-k/point/range/sliding queries on a finalized run
``figure``    regenerate a paper figure's series and print it as a table
``table2``    regenerate Table 2 (CFPU) with the paper's values side by side
``campaign``  regenerate every figure and table; write artifacts
``datasets``  list the registered datasets and their size tiers
``methods``   list the registered mechanisms

``run``, ``figure``, ``table2`` and ``campaign`` accept ``--jobs N`` to
fan their experiment grids out over N worker processes (``--jobs 0`` uses
all CPUs).  Results are bit-identical at any worker count: each grid
cell's randomness is derived from the seed and the cell's coordinates
(see :mod:`repro.experiments.parallel`).

``stream`` ingests one line per timestamp (whitespace/comma-separated
user values) and releases the private histogram as each line arrives —
a true unbounded online session over a
:class:`~repro.streams.online.OnlineStream`; memory stays constant
unless ``--trace`` asks for the full trace summary.

``serve`` speaks line-delimited JSON on stdin/stdout: ``ingest``
requests push timestamps into a hot session, query requests (``point``
/ ``topk`` / ``range`` / ``sliding`` / ``summary``) are answered from a
capacity-bounded :class:`~repro.query.ReleaseStore` — an unbounded
standing query server in O(capacity · d) memory.  ``query`` answers the
same queries one-shot against a run saved with ``run --save-json``.

``stream`` and ``serve`` become **durable** with ``--state-dir DIR``:
each flushed chunk commits its releases to an fsync'd write-ahead log
and every ``--checkpoint-every N`` chunks a full session checkpoint is
written atomically, so a crashed process restarted with the replayed
feed resumes mid-stream with exactly-once ingestion (re-sent timestamps
are acknowledged as skipped) and bit-identical output — see
``docs/PERSISTENCE.md``.

Examples
--------
::

    python -m repro run --method LPA --dataset LNS --epsilon 1 --window 20
    python -m repro run --method LPA --repeats 8 --jobs 4
    generator | python -m repro stream --method LBD --domain-size 5 --epsilon 1 --window 20
    mixed_feed | python -m repro serve --method LBD --domain-size 5 --epsilon 1 --window 20
    mixed_feed | python -m repro serve --method LBD --domain-size 5 --epsilon 1 \
        --window 20 --chunk 64 --state-dir state/ --checkpoint-every 4
    python -m repro query session.json topk --k 3 --t 40
    python -m repro figure fig4 --size smoke --jobs 4
    python -m repro table2 --size smoke
    python -m repro campaign --size smoke --jobs 0 --out artifacts/
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    monitoring_roc,
)
from .engine import run_stream
from .exceptions import InvalidParameterError, ReproError
from .mechanisms import available_mechanisms


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LDP-IDS reproduction: w-event LDP for infinite streams",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one streaming session")
    run.add_argument("--method", required=True, help="LBU/LSP/LBD/LBA/LPU/LPD/LPA/LPF")
    run.add_argument("--dataset", default="LNS", help="dataset name (see `datasets`)")
    run.add_argument("--size", default="default", choices=["smoke", "default", "paper"])
    run.add_argument("--epsilon", type=float, default=1.0)
    run.add_argument("--window", type=int, default=20)
    run.add_argument("--oracle", default="grr")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="average metrics over this many independently seeded sessions",
    )
    _add_jobs_flag(run)
    run.add_argument("--save-json", metavar="PATH", default=None)
    run.add_argument("--save-csv", metavar="PATH", default=None)

    stream = sub.add_parser(
        "stream", help="drive an online session from piped input"
    )
    stream.add_argument("--method", required=True, help="LBU/LSP/LBD/LBA/LPU/LPD/LPA/LPF")
    stream.add_argument(
        "--domain-size",
        type=int,
        required=True,
        help="categorical domain size d of the incoming values",
    )
    stream.add_argument("--epsilon", type=float, default=1.0)
    stream.add_argument("--window", type=int, default=20)
    stream.add_argument("--oracle", default="grr")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--postprocess", default="none")
    stream.add_argument(
        "--input",
        metavar="PATH",
        default="-",
        help="file with one timestamp per line ('-' = stdin)",
    )
    stream.add_argument(
        "--max-steps",
        type=int,
        default=None,
        help="stop after this many timestamps even if input continues",
    )
    stream.add_argument(
        "--emit",
        choices=["releases", "none"],
        default="releases",
        help="print each released histogram as CSV (default) or stay quiet",
    )
    stream.add_argument(
        "--trace",
        action="store_true",
        help="keep the full trace in memory and print error metrics at EOF "
        "(omit for constant-memory unbounded ingestion)",
    )
    _add_chunk_flag(stream)
    _add_state_dir_flags(stream)

    serve = sub.add_parser(
        "serve", help="standing query server over a piped online stream"
    )
    serve.add_argument("--method", required=True, help="LBU/LSP/LBD/LBA/LPU/LPD/LPA/LPF")
    serve.add_argument(
        "--domain-size",
        type=int,
        required=True,
        help="categorical domain size d of the incoming values",
    )
    serve.add_argument("--epsilon", type=float, default=1.0)
    serve.add_argument("--window", type=int, default=20)
    serve.add_argument("--oracle", default="grr")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--postprocess", default="none")
    serve.add_argument(
        "--capacity",
        type=int,
        default=256,
        help="release ring-buffer size (0 = retain full history)",
    )
    serve.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        help="confidence mass of every reported interval",
    )
    serve.add_argument(
        "--input",
        metavar="PATH",
        default="-",
        help="file with one JSON request per line ('-' = stdin)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="run the sharded asyncio socket server instead of the stdin "
        "loop: partition the population across K worker processes and "
        "answer queries from the merged release store (requires "
        "--n-users; see docs/SERVING.md)",
    )
    serve.add_argument(
        "--n-users",
        type=int,
        default=None,
        metavar="N",
        help="population size (required with --shards; the stdin loop "
        "infers it from the first ingest instead)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="with --shards: TCP port to listen on (default 0 = ephemeral; "
        "the chosen port is printed in the JSON hello line)",
    )
    serve.add_argument(
        "--no-fast",
        dest="fast",
        action="store_false",
        help="run the literal per-user perturbation protocol instead of "
        "the exact count-level samplers (CPU-bound; this is the regime "
        "where --shards parallelism pays off)",
    )
    _add_chunk_flag(serve)
    _add_state_dir_flags(serve)

    query = sub.add_parser(
        "query", help="one-shot queries against a saved session JSON"
    )
    query.add_argument(
        "run", metavar="RUN_JSON", help="session saved by `run --save-json`"
    )
    query.add_argument(
        "op",
        nargs="?",
        default=None,
        choices=["point", "topk", "range", "sliding", "info"],
        help="classic verb (or use --expr for the full DSL)",
    )
    query.add_argument(
        "--expr",
        default=None,
        metavar="EXPR",
        help="DSL text query, e.g. "
        '"topk(5) where item in {0..9} @ t=200" — see docs/QUERIES.md',
    )
    query.add_argument("--t", type=int, default=None, help="timestamp (default: last)")
    query.add_argument("--item", type=int, default=None)
    query.add_argument("--k", type=int, default=5)
    query.add_argument("--lo", type=int, default=None)
    query.add_argument("--hi", type=int, default=None)
    query.add_argument("--t0", type=int, default=None)
    query.add_argument("--t1", type=int, default=None)
    query.add_argument(
        "--agg",
        choices=["sum", "mean", "max"],
        default="sum",
        help="sliding aggregate (default sum, same as the engine and "
        "the serve protocol)",
    )
    query.add_argument("--confidence", type=float, default=0.95)

    figure = sub.add_parser("figure", help="regenerate a paper figure series")
    figure.add_argument(
        "name", choices=["fig4", "fig5", "fig6", "fig7", "fig8"]
    )
    figure.add_argument("--size", default="smoke", choices=["smoke", "default", "paper"])
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--repeats", type=int, default=1)
    _add_jobs_flag(figure)

    table2 = sub.add_parser("table2", help="regenerate Table 2 (CFPU)")
    table2.add_argument("--size", default="smoke", choices=["smoke", "default", "paper"])
    table2.add_argument("--seed", type=int, default=0)
    _add_jobs_flag(table2)

    campaign = sub.add_parser(
        "campaign", help="regenerate every figure & table; write artifacts"
    )
    campaign.add_argument("--out", metavar="DIR", default=None)
    campaign.add_argument(
        "--size", default="smoke", choices=["smoke", "default", "paper"]
    )
    campaign.add_argument("--repeats", type=int, default=1)
    campaign.add_argument("--seed", type=int, default=0)
    _add_jobs_flag(campaign)

    sub.add_parser("datasets", help="list datasets")
    sub.add_parser("methods", help="list mechanisms")
    return parser


def _add_chunk_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chunk",
        type=int,
        default=1,
        metavar="N",
        help="buffer N timestamps and ingest them per engine call (bulk "
        "ingestion: identical output, higher throughput, N-step output "
        "latency; default 1 = release after every timestamp)",
    )


def _add_state_dir_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="durable session state: write-ahead release log + periodic "
        "checkpoints in DIR; on startup, resume from the latest "
        "checkpoint and skip already-ingested timestamps of a replayed "
        "feed (exactly-once ingestion across crashes)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="CHUNKS",
        help="with --state-dir: write a full checkpoint every N flushed "
        "chunks (default 1; the WAL commits every chunk regardless)",
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment grid (0 = all CPUs); "
        "results are identical at any worker count",
    )


def _cmd_run(args) -> int:
    from .experiments import make_dataset

    if args.repeats < 1:
        raise InvalidParameterError(
            f"repeats must be >= 1, got {args.repeats}"
        )
    if args.repeats > 1:
        if args.save_json or args.save_csv:
            raise InvalidParameterError(
                "--save-json/--save-csv save one session's trace and need "
                "--repeats 1; repeated runs only report averaged metrics"
            )
        return _cmd_run_repeats(args)
    if args.jobs not in (0, 1):
        print("(--jobs has no effect on a single session; add --repeats N)")
    dataset = make_dataset(args.dataset, size=args.size, seed=args.seed)
    result = run_stream(
        args.method,
        dataset,
        epsilon=args.epsilon,
        window=args.window,
        oracle=args.oracle,
        seed=args.seed,
    )
    print(
        f"{result.mechanism} on {args.dataset} "
        f"(N={result.n_users}, T={result.horizon}, d={result.domain_size}, "
        f"eps={result.epsilon:g}, w={result.window}, oracle={result.oracle})"
    )
    print(f"  MRE  = {mean_relative_error(result.releases, result.true_frequencies):.4f}")
    print(f"  MAE  = {mean_absolute_error(result.releases, result.true_frequencies):.5f}")
    print(f"  MSE  = {mean_squared_error(result.releases, result.true_frequencies):.3e}")
    print(f"  CFPU = {result.cfpu:.4f}")
    print(f"  publications = {result.publication_count}/{result.horizon}")
    print(f"  max window spend = {result.max_window_spend:.4f} (<= {result.epsilon:g})")
    try:
        auc = monitoring_roc(result.releases, result.true_frequencies).auc
        print(f"  event-monitoring AUC = {auc:.4f}")
    except InvalidParameterError:
        pass
    if args.save_json:
        from .io import save_session

        save_session(result, args.save_json)
        print(f"  saved JSON -> {args.save_json}")
    if args.save_csv:
        from .io import session_to_csv

        session_to_csv(result, args.save_csv)
        print(f"  saved CSV  -> {args.save_csv}")
    return 0


def _cmd_run_repeats(args) -> int:
    """Averaged multi-repeat run, fanned over ``--jobs`` workers."""
    from .experiments.parallel import DatasetSpec, evaluate_parallel

    dataset = DatasetSpec.of(args.dataset, size=args.size, seed=args.seed)
    cell = evaluate_parallel(
        args.method,
        dataset,
        args.epsilon,
        args.window,
        oracle=args.oracle,
        seed=args.seed,
        repeats=args.repeats,
        with_roc=True,
        jobs=args.jobs,
    )
    print(
        f"{cell.mechanism} on {args.dataset} (size={args.size}, "
        f"eps={cell.epsilon:g}, w={cell.window}, oracle={args.oracle}, "
        f"repeats={cell.repeats}, jobs={args.jobs})"
    )
    print(f"  MRE  = {cell.mre:.4f}")
    print(f"  MAE  = {cell.mae:.5f}")
    print(f"  MSE  = {cell.mse:.3e}")
    print(f"  CFPU = {cell.cfpu:.4f}")
    print(f"  publication rate = {cell.publication_rate:.4f}")
    if cell.auc == cell.auc:  # not NaN
        print(f"  event-monitoring AUC = {cell.auc:.4f}")
    return 0


def _parse_snapshot_line(line: str):
    """One input line -> int value list (comma- or whitespace-separated)."""
    parts = line.replace(",", " ").split()
    try:
        return [int(part) for part in parts]
    except ValueError:
        raise InvalidParameterError(
            f"stream input lines must hold integer values, got {line.strip()!r}"
        ) from None


def _prepare_state_dir(args):
    """Open ``--state-dir`` and make it resume-consistent.

    Returns ``(state_dir, checkpoint, watermark)`` — all ``None``/0 when
    persistence is off.  The WAL is truncated to the checkpoint's
    watermark here (see :meth:`repro.persist.StateDir.prepare_resume`),
    so everything that happens afterwards regenerates the cut span
    bit-identically.
    """
    if args.state_dir is None:
        return None, None, 0
    from .persist import StateDir

    if args.checkpoint_every < 1:
        raise InvalidParameterError(
            f"checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    state = StateDir(args.state_dir)
    checkpoint, watermark = state.prepare_resume()
    return state, checkpoint, watermark


def _resume_session(checkpoint, *, expect: dict, chunk: int):
    """Rebuild a session from a state-dir checkpoint, validating config.

    A checkpoint only resumes under the configuration it was taken with
    — silently continuing an LBD stream as LPA (or at a different
    epsilon) would corrupt both the privacy ledger and the released
    trace, so every mismatch between the checkpoint's recorded config
    and the current command line is fatal.
    """
    from .exceptions import CheckpointError
    from .streams import OnlineStream

    config = checkpoint.payload.get("config")
    if not isinstance(config, dict):
        raise CheckpointError("checkpoint payload has no 'config' section")
    mismatches = [
        f"{key} is {config.get(key)!r} in the checkpoint but {value!r} "
        f"on the command line"
        for key, value in expect.items()
        if config.get(key) != value
    ]
    if mismatches:
        raise CheckpointError(
            "--state-dir checkpoint disagrees with the flags: "
            + "; ".join(mismatches)
        )
    stream = OnlineStream(
        n_users=int(config["n_users"]),
        domain_size=int(config["domain_size"]),
        retain=max(4, chunk),
    )
    return checkpoint.restore(stream), stream


def _cmd_stream(args) -> int:
    """Online ingestion: one StreamSession advanced line by line.

    With ``--chunk N`` input lines are buffered and ingested ``N``
    timestamps at a time through
    :meth:`~repro.engine.session.StreamSession.observe_many` — the
    emitted releases are identical (bulk ingestion is bit-identical to
    the per-step loop), they just appear once per chunk instead of once
    per line.

    With ``--state-dir`` every flushed chunk appends its releases to a
    fsync'd write-ahead log and (every ``--checkpoint-every`` chunks)
    writes a full checkpoint; on startup the session resumes from the
    latest checkpoint and the first ``watermark`` input lines of the
    replayed feed are skipped, so ingestion is exactly-once across
    crashes.
    """
    import contextlib

    from .engine import StreamSession
    from .freq_oracles import get_oracle
    from .mechanisms import get_mechanism
    from .streams import OnlineStream

    if args.max_steps is not None and args.max_steps < 1:
        raise InvalidParameterError(
            f"max-steps must be >= 1, got {args.max_steps}"
        )
    if args.chunk < 1:
        raise InvalidParameterError(f"chunk must be >= 1, got {args.chunk}")
    state, checkpoint, watermark = _prepare_state_dir(args)
    with contextlib.ExitStack() as stack:
        if args.input == "-":
            source = sys.stdin
        else:
            source = stack.enter_context(
                open(args.input, "r", encoding="utf-8")
            )
        session: Optional[StreamSession] = None
        stream: Optional[OnlineStream] = None
        if checkpoint is not None:
            session, stream = _resume_session(
                checkpoint,
                expect={
                    "mechanism": get_mechanism(args.method).name,
                    "oracle": get_oracle(args.oracle).name,
                    "postprocess": args.postprocess,
                    "epsilon": float(args.epsilon),
                    "window": int(args.window),
                    "domain_size": int(args.domain_size),
                    "record_trace": bool(args.trace),
                },
                chunk=args.chunk,
            )
        wal = None
        if state is not None:
            from .persist import Checkpoint

            wal = stack.enter_context(state.open_wal())
        buffer: list = []
        skip_remaining = watermark
        flushed_chunks = 0

        def flush() -> None:
            nonlocal flushed_chunks
            if not buffer:
                return
            timestamps = [stream.push(values) for values in buffer]
            records = session.observe_many(timestamps[0], len(timestamps))
            if args.emit == "releases":
                for t, record in zip(timestamps, records):
                    release = ",".join(
                        f"{v:.6g}"
                        for v in session.postprocessor(record.release)
                    )
                    print(f"{t},{record.strategy},{release}")
            if wal is not None:
                # Durability order: WAL commit first, checkpoint second,
                # so the checkpoint watermark never runs ahead of the
                # log (the StateDir resume invariant).
                for t, record in zip(timestamps, records):
                    wal.append(
                        t, session.postprocessor(record.release),
                        record.strategy,
                    )
                wal.commit(session.steps_observed)
                flushed_chunks += 1
                if flushed_chunks % args.checkpoint_every == 0:
                    state.save_checkpoint(Checkpoint.capture(session))
            buffer.clear()

        done = False
        for line in source:
            if not line.strip():
                continue
            values = _parse_snapshot_line(line)
            if skip_remaining > 0:
                # Already ingested before the crash; the replayed feed
                # re-sends it, exactly-once means we drop it here.
                skip_remaining -= 1
                continue
            if session is None:
                # The population size is whatever the first timestamp
                # carries; the session is created lazily around it.  The
                # retention ring must hold a whole chunk, since chunked
                # snapshots are pushed before they are observed.
                stream = OnlineStream(
                    n_users=len(values),
                    domain_size=args.domain_size,
                    retain=max(4, args.chunk),
                )
                session = StreamSession(
                    args.method,
                    stream,
                    epsilon=args.epsilon,
                    window=args.window,
                    oracle=args.oracle,
                    seed=args.seed,
                    postprocess=args.postprocess,
                    record_trace=args.trace,
                ).start()
            buffer.append(values)
            ingested = stream.pushed + len(buffer)
            if args.max_steps is not None and ingested >= args.max_steps:
                done = True
            if len(buffer) >= args.chunk or done:
                flush()
            if done:
                break
        if session is None:
            print("error: no input timestamps received", file=sys.stderr)
            return 2
        flush()
        if state is not None:
            from .persist import Checkpoint

            state.save_checkpoint(Checkpoint.capture(session))
        summary = session.summary()
        print(
            f"{summary['mechanism']} online session: {summary['steps']} steps, "
            f"{summary['publications']} publications "
            f"(rate {summary['publication_rate']:.4f}), "
            f"CFPU {summary['cfpu']:.4f}, "
            f"max window spend {summary['max_window_spend']:.4f} "
            f"(<= {args.epsilon:g})",
            file=sys.stderr,
        )
        if args.trace:
            result = session.finalize()
            print(
                f"  MRE  = {mean_relative_error(result.releases, result.true_frequencies):.4f}\n"
                f"  MAE  = {mean_absolute_error(result.releases, result.true_frequencies):.5f}\n"
                f"  MSE  = {mean_squared_error(result.releases, result.true_frequencies):.3e}",
                file=sys.stderr,
            )
    return 0


def _serve_answer(planner, session, request: dict) -> dict:
    """Answer one parsed ``serve`` request against the live engine.

    Every query op lowers through the :class:`~repro.query.QueryPlanner`
    — the four classic verbs keep their legacy reply shapes, and the
    DSL composites (``filter``/``groupby``/``changepoint``/
    ``threshold``, plus ``{"op": "query"}`` envelopes carrying text
    ``expr``) answer over the same store.
    """
    from .query.dsl import QUERY_OPS, query_from_request

    op = request.get("op")
    if op == "summary":
        store = planner.engine_for(None).store
        return {
            "op": op,
            **session.summary(),
            "retained": len(store),
            "oldest_t": store.oldest_t,
            "latest_t": store.latest_t,
            "evicted": store.evicted,
        }
    if op != "query" and op not in QUERY_OPS:
        raise InvalidParameterError(
            f"unknown op {op!r}; expected ingest/"
            + "/".join(QUERY_OPS)
            + "/query/standing/summary"
        )
    return planner.answer(query_from_request(request))


def _serve_standing(registry, request: dict) -> dict:
    """Register / unregister / list standing queries (stdin loop).

    Alert events print as their own stdout lines after the ingest acks
    of each flushed chunk (the solo loop's single client is stdout).
    """
    from .query.dsl import parse_expr, query_from_request

    action = request.get("action")
    if action == "register":
        if "expr" in request:
            expr = request["expr"]
            if not isinstance(expr, str):
                raise InvalidParameterError(
                    f"'expr' must be a string, got {expr!r}"
                )
            query = parse_expr(expr)
        elif "q" in request:
            query = query_from_request(request["q"])
        else:
            raise InvalidParameterError(
                "a standing register needs 'expr' (text syntax) or 'q' "
                "(wire form)"
            )
        standing = registry.register(request.get("id"), query)
        return {"op": "standing", "action": action, **standing.describe()}
    if action == "unregister":
        sid = request.get("id")
        if not isinstance(sid, str):
            raise InvalidParameterError(
                f"a standing unregister needs a string 'id', got {sid!r}"
            )
        return {
            "op": "standing",
            "action": action,
            "id": sid,
            "removed": registry.unregister(sid),
        }
    if action == "list":
        return {
            "op": "standing",
            "action": action,
            "standing": registry.describe(),
        }
    raise InvalidParameterError(
        f"unknown standing action {action!r}; expected "
        f"register/unregister/list"
    )


def _cmd_serve_sharded(args) -> int:
    """``serve --shards K``: the asyncio socket server over K workers.

    Prints a JSON hello line (``{"event": "listening", "port": ...}``)
    once the tier is up, then serves line-delimited JSON over TCP until
    a ``shutdown`` request.  The merged answers conform to the serial
    :class:`~repro.serving.ShardedSession` bit-for-bit; the contract is
    documented in ``docs/SERVING.md``.
    """
    from .serving import ServeConfig, run_server

    if args.n_users is None:
        raise InvalidParameterError(
            "--shards needs --n-users: the population partitions across "
            "shards before the first ingest arrives"
        )
    if args.capacity < 0:
        raise InvalidParameterError(
            f"capacity must be >= 0, got {args.capacity}"
        )
    config = ServeConfig(
        mechanism=args.method,
        n_users=args.n_users,
        domain_size=args.domain_size,
        epsilon=args.epsilon,
        window=args.window,
        num_shards=args.shards,
        oracle=args.oracle,
        seed=args.seed,
        postprocess=args.postprocess,
        capacity=None if args.capacity == 0 else args.capacity,
        chunk=args.chunk,
        confidence=args.confidence,
        state_dir=args.state_dir,
        checkpoint_every=args.checkpoint_every,
        port=args.port,
        fast=args.fast,
    )
    return run_server(config)


def _cmd_serve(args) -> int:
    """Standing query server: JSONL requests in, JSONL answers out.

    With ``--state-dir`` the server is durable: every flushed ingest
    chunk commits its releases to a fsync'd write-ahead log before
    answering, full checkpoints land every ``--checkpoint-every``
    chunks, and a restarted server resumes from the latest checkpoint —
    already-ingested timestamps of a replayed feed are acknowledged with
    ``{"op": "ingest", "t": ..., "skipped": true}`` instead of being
    re-applied (exactly-once ingestion).
    """
    import contextlib
    import json

    from .engine import StreamSession
    from .query import (
        QueryEngine,
        QueryPlanner,
        ReleaseStore,
        StandingRegistry,
    )
    from .streams import OnlineStream

    from .freq_oracles import get_oracle
    from .freq_oracles.postprocess import get_postprocessor
    from .mechanisms import get_mechanism

    if args.shards is not None:
        return _cmd_serve_sharded(args)
    if args.capacity < 0:
        raise InvalidParameterError(
            f"capacity must be >= 0, got {args.capacity}"
        )
    if args.domain_size < 2:
        raise InvalidParameterError(
            f"domain-size must be >= 2, got {args.domain_size}"
        )
    if args.epsilon <= 0:
        raise InvalidParameterError(
            f"epsilon must be positive, got {args.epsilon}"
        )
    if args.window < 1:
        raise InvalidParameterError(
            f"window must be >= 1, got {args.window}"
        )
    if not 0.0 < args.confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {args.confidence}"
        )
    if args.chunk < 1:
        raise InvalidParameterError(f"chunk must be >= 1, got {args.chunk}")
    # Fail fast on every configuration error (typo'd method/oracle/
    # postprocess, out-of-range numerics) instead of emitting an error
    # line per request and exiting 0.
    mech_name = get_mechanism(args.method).name
    oracle_name = get_oracle(args.oracle).name
    get_postprocessor(args.postprocess)
    capacity = None if args.capacity == 0 else args.capacity
    state, checkpoint, watermark = _prepare_state_dir(args)
    with contextlib.ExitStack() as stack:
        if args.input == "-":
            source = sys.stdin
        else:
            source = stack.enter_context(
                open(args.input, "r", encoding="utf-8")
            )
        session: Optional[StreamSession] = None
        stream: Optional[OnlineStream] = None
        engine: Optional[QueryEngine] = None
        planner: Optional[QueryPlanner] = None
        registry: Optional[StandingRegistry] = None
        if checkpoint is not None:
            session, stream = _resume_session(
                checkpoint,
                expect={
                    "mechanism": mech_name,
                    "oracle": oracle_name,
                    "postprocess": args.postprocess,
                    "epsilon": float(args.epsilon),
                    "window": int(args.window),
                    "domain_size": int(args.domain_size),
                    "record_trace": False,
                },
                chunk=args.chunk,
            )
            if session.store is None or session.store.capacity != capacity:
                from .exceptions import CheckpointError

                found = (
                    "no store"
                    if session.store is None
                    else f"capacity {session.store.capacity}"
                )
                raise CheckpointError(
                    f"--state-dir checkpoint disagrees with the flags: "
                    f"release store has {found} in the checkpoint but "
                    f"capacity {capacity!r} on the command line"
                )
            engine = QueryEngine(session.store, confidence=args.confidence)
            planner = QueryPlanner(engine)
            registry = StandingRegistry(planner)
        wal = None
        if state is not None:
            from .persist import Checkpoint

            wal = stack.enter_context(state.open_wal())
        pending: list = []
        skip_remaining = watermark
        flushed_chunks = 0
        handled = 0

        class _FatalIngestError(Exception):
            """Session/stream pair desynchronized; the server must exit."""

        def flush() -> None:
            """Ingest the buffered snapshots; one answer line each.

            A snapshot the stream rejects (e.g. wrong population size)
            ends its sub-batch with an error answer — the stream did not
            advance for it, so the server stays consistent — and the
            rest of the buffer continues.  A session failure *after* the
            stream advanced is fatal, exactly as in the per-request
            path.

            With ``--state-dir``, each successfully ingested sub-batch
            commits to the WAL after its acks (WAL first, checkpoint
            second — the StateDir resume invariant).
            """
            nonlocal flushed_chunks
            start = 0
            while start < len(pending):
                timestamps = []
                failure = None
                for values in pending[start:]:
                    try:
                        timestamps.append(stream.push(values))
                    except ReproError as error:
                        failure = error
                        break
                if timestamps:
                    try:
                        records = session.observe_many(
                            timestamps[0], len(timestamps)
                        )
                    except ReproError as error:
                        # The stream advanced but the session did not
                        # (and may have been left mid-step): the pair is
                        # permanently desynchronized, so unlike bad
                        # requests this is fatal.
                        print(
                            json.dumps(
                                {
                                    "error": f"{type(error).__name__}: "
                                    f"{error}",
                                    "fatal": True,
                                }
                            ),
                            flush=True,
                        )
                        print(
                            f"error: ingestion failed at "
                            f"t={timestamps[0]}; session state is no "
                            f"longer consistent with the stream: {error}",
                            file=sys.stderr,
                        )
                        raise _FatalIngestError() from error
                    for t, record in zip(timestamps, records):
                        print(
                            json.dumps(
                                {
                                    "op": "ingest",
                                    "t": t,
                                    "strategy": record.strategy,
                                }
                            ),
                            flush=True,
                        )
                    if wal is not None:
                        for t, record in zip(timestamps, records):
                            wal.append(
                                t,
                                session.postprocessor(record.release),
                                record.strategy,
                                session.store.variance_at(t)
                                if session.store.oldest_t is not None
                                and t >= session.store.oldest_t
                                else None,
                            )
                        wal.commit(session.steps_observed)
                        flushed_chunks += 1
                        if flushed_chunks % args.checkpoint_every == 0:
                            state.save_checkpoint(
                                Checkpoint.capture(session)
                            )
                start += len(timestamps)
                if failure is not None:
                    print(
                        json.dumps(
                            {
                                "error": f"{type(failure).__name__}: "
                                f"{failure}"
                            }
                        ),
                        flush=True,
                    )
                    start += 1
            pending.clear()
            # Standing queries advance over exactly the timestamps this
            # flush ingested; alerts are their own stdout lines.
            if registry is not None:
                for _, event in registry.poll():
                    print(json.dumps(event), flush=True)

        try:
            for line in source:
                if not line.strip():
                    continue
                handled += 1
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise InvalidParameterError(
                            "each request must be a JSON object"
                        )
                    if request.get("op") == "ingest":
                        values = [int(v) for v in request["values"]]
                        if skip_remaining > 0:
                            # Ingested before the crash; the replayed
                            # feed re-sends it and exactly-once means we
                            # acknowledge without re-applying.
                            t_skip = watermark - skip_remaining
                            skip_remaining -= 1
                            print(
                                json.dumps(
                                    {
                                        "op": "ingest",
                                        "t": t_skip,
                                        "skipped": True,
                                    }
                                ),
                                flush=True,
                            )
                            continue
                        if session is None:
                            # Population size = whatever the first
                            # timestamp carries, exactly like `repro
                            # stream`.  The ring must retain a whole
                            # chunk of pushed-but-unobserved snapshots.
                            stream = OnlineStream(
                                n_users=len(values),
                                domain_size=args.domain_size,
                                retain=max(4, args.chunk),
                            )
                            store = ReleaseStore(
                                args.domain_size, capacity=capacity
                            )
                            session = StreamSession(
                                args.method,
                                stream,
                                epsilon=args.epsilon,
                                window=args.window,
                                oracle=args.oracle,
                                seed=args.seed,
                                postprocess=args.postprocess,
                                record_trace=False,
                                store=store,
                                fast=args.fast,
                            ).start()
                            engine = QueryEngine(
                                store, confidence=args.confidence
                            )
                            planner = QueryPlanner(engine)
                            registry = StandingRegistry(planner)
                        pending.append(values)
                        if len(pending) >= args.chunk:
                            flush()
                        continue
                    if session is None:
                        raise InvalidParameterError(
                            "no timestamps ingested yet; send an ingest "
                            "request first"
                        )
                    # Queries answer against everything ingested so far,
                    # so buffered snapshots go in first.  (Standing
                    # registrations too: the watermark they anchor at is
                    # the one the client saw acked.)
                    flush()
                    if request.get("op") == "standing":
                        answer = _serve_standing(registry, request)
                    else:
                        answer = _serve_answer(planner, session, request)
                except (
                    ReproError,
                    KeyError,
                    ValueError,
                    TypeError,
                    OverflowError,
                ) as error:
                    # OverflowError included: Python's json accepts
                    # Infinity, and int(float("inf")) overflows — a
                    # malformed ingest record must produce an error line,
                    # not kill a server holding buffered timestamps.
                    # Buffered ingests answer first so output lines keep
                    # request order even around a bad request.
                    flush()
                    answer = {"error": f"{type(error).__name__}: {error}"}
                print(json.dumps(answer), flush=True)
            if session is not None:
                flush()
                if state is not None:
                    # EOF checkpoint: a clean restart resumes exactly
                    # here with nothing to recompute.
                    state.save_checkpoint(Checkpoint.capture(session))
        except _FatalIngestError:
            return 2
        if not handled:
            print("error: no requests received", file=sys.stderr)
            return 2
    return 0


def _cmd_query(args) -> int:
    """One-shot queries over a finalized run saved with --save-json."""
    import json

    from .io import load_session
    from .query import QueryEngine, QueryPlanner, parse_expr

    if (args.op is None) == (args.expr is None):
        raise InvalidParameterError(
            "query takes exactly one of a classic verb "
            "(point/topk/range/sliding/info) or --expr EXPR"
        )
    result = load_session(args.run)
    engine = QueryEngine.from_result(result, confidence=args.confidence)
    if args.expr is not None:
        planner = QueryPlanner(engine)
        answer = planner.answer(parse_expr(args.expr))
    elif args.op == "info":
        answer = {
            "op": "info",
            "mechanism": result.mechanism,
            "oracle": result.oracle,
            "epsilon": result.epsilon,
            "window": result.window,
            "n_users": result.n_users,
            "domain_size": result.domain_size,
            "horizon": result.horizon,
        }
    elif args.op == "point":
        if args.item is None:
            raise InvalidParameterError("point queries need --item")
        answer = {
            "op": "point",
            "item": args.item,
            **engine.point(args.item, t=args.t).as_dict(),
        }
    elif args.op == "topk":
        answer = {
            "op": "topk",
            "items": [e.as_dict() for e in engine.topk(args.k, t=args.t)],
        }
    elif args.op == "range":
        if args.lo is None or args.hi is None:
            raise InvalidParameterError("range queries need --lo and --hi")
        answer = {
            "op": "range",
            "lo": args.lo,
            "hi": args.hi,
            **engine.range_count(args.lo, args.hi, t=args.t).as_dict(),
        }
    else:  # sliding
        if args.item is None:
            raise InvalidParameterError("sliding queries need --item")
        t0 = 0 if args.t0 is None else args.t0
        t1 = result.horizon - 1 if args.t1 is None else args.t1
        answer = {
            "op": "sliding",
            "item": args.item,
            "t0": t0,
            "t1": t1,
            "agg": args.agg,
            **engine.sliding(t0, t1, args.agg, item=args.item).as_dict(),
        }
    print(json.dumps(answer))
    return 0


def _cmd_figure(args) -> int:
    from .experiments import (
        fig4_utility_vs_epsilon,
        fig5_utility_vs_window,
        fig6_fluctuation,
        fig6_population,
        fig7_event_monitoring,
        fig8_communication,
        format_figure,
        format_roc_summary,
    )

    if args.name == "fig4":
        series = fig4_utility_vs_epsilon(
            size=args.size, seed=args.seed, repeats=args.repeats, jobs=args.jobs
        )
        print(format_figure(series, x_label="epsilon"))
    elif args.name == "fig5":
        series = fig5_utility_vs_window(
            size=args.size, seed=args.seed, repeats=args.repeats, jobs=args.jobs
        )
        print(format_figure(series, x_label="w"))
    elif args.name == "fig6":
        print(
            format_figure(
                fig6_population(
                    seed=args.seed, repeats=args.repeats, jobs=args.jobs
                ),
                x_label="N",
            )
        )
        print()
        print(
            format_figure(
                fig6_fluctuation(
                    seed=args.seed, repeats=args.repeats, jobs=args.jobs
                ),
                x_label="fluctuation",
            )
        )
    elif args.name == "fig7":
        print(
            format_roc_summary(
                fig7_event_monitoring(
                    size=args.size, seed=args.seed, jobs=args.jobs
                )
            )
        )
    elif args.name == "fig8":
        print(
            format_figure(
                fig8_communication(seed=args.seed, jobs=args.jobs), x_label="x"
            )
        )
    return 0


def _cmd_table2(args) -> int:
    from .experiments import PAPER_TABLE2, format_table2, table2_cfpu

    table = table2_cfpu(size=args.size, seed=args.seed, jobs=args.jobs)
    print(format_table2(table, PAPER_TABLE2))
    print("\n(values shown as measured/paper)")
    return 0


def _cmd_campaign(args) -> int:
    from .experiments import run_campaign

    run_campaign(
        output_dir=args.out,
        size=args.size,
        repeats=args.repeats,
        seed=args.seed,
        verbose=True,
        jobs=args.jobs,
    )
    if args.out:
        print(f"artifacts written to {args.out}")
    return 0


def _cmd_datasets(_args) -> int:
    from .experiments import ALL_DATASETS, dataset_size

    print(f"{'name':<12}{'tier':<10}{'n_users':>10}{'horizon':>9}")
    for name in ALL_DATASETS:
        for tier in ("smoke", "default", "paper"):
            n, t = dataset_size(name, tier)
            print(f"{name:<12}{tier:<10}{n:>10}{t:>9}")
    return 0


def _cmd_methods(_args) -> int:
    for name in available_mechanisms():
        print(name.upper())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "figure": _cmd_figure,
        "table2": _cmd_table2,
        "campaign": _cmd_campaign,
        "datasets": _cmd_datasets,
        "methods": _cmd_methods,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a consumer (e.g. `head`) that closed early.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
