"""Collection engine: the simulated client/server system.

* :class:`Collector` / :class:`TimestepContext` / :class:`ChunkContext`
  — execute FO rounds (per timestamp or per chunk), meter communication.
* :class:`WEventAccountant` — runtime ``w``-event LDP budget ledger.
* :class:`UserPool` — disjoint-group sampling with recycling.
* :class:`StreamSession` — incremental standing query
  (``start``/``observe``/``finalize``) enabling unbounded online runs.
* :class:`SessionGroup` — many sessions over one shared stream pass.
* :class:`SoAScheduler` — structure-of-arrays group execution (shared
  value blocks, stacked oracle calls; see :mod:`repro.engine.soa`).
* :func:`run_stream` — one-call session driver returning
  :class:`SessionResult`.
"""

from .accountant import WEventAccountant
from .collector import ChunkContext, Collector, TimestepContext
from .group import SessionGroup
from .population import UserPool
from .soa import SoAScheduler, soa_supported
from .records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_NULLIFIED,
    STRATEGY_PUBLISH,
    SessionResult,
    StepRecord,
)
from .session import DEFAULT_CHUNK, StreamSession, run_stream

__all__ = [
    "WEventAccountant",
    "Collector",
    "TimestepContext",
    "ChunkContext",
    "DEFAULT_CHUNK",
    "UserPool",
    "SessionResult",
    "StepRecord",
    "STRATEGY_PUBLISH",
    "STRATEGY_APPROXIMATE",
    "STRATEGY_NULLIFIED",
    "StreamSession",
    "SessionGroup",
    "SoAScheduler",
    "soa_supported",
    "run_stream",
]
