"""Runtime ``w``-event LDP accountant.

The accountant is the library's privacy safety net.  Every collection round
the engine executes is charged here, per user, and the invariant of
Definition 4.2 / Theorem 5.1 — *no user's privacy spend over any window of
``w`` consecutive timestamps exceeds epsilon* — is re-checked **at
runtime**.  A mechanism bug that would overspend raises
:class:`~repro.exceptions.PrivacyViolationError` immediately instead of
silently producing a non-private trace, and the test suite leans on this:
integration tests simply run every mechanism with the accountant armed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from ..exceptions import InvalidParameterError, PrivacyViolationError

#: Numerical slack for floating-point budget sums.
_TOLERANCE = 1e-9


class WEventAccountant:
    """Per-user sliding-window privacy ledger.

    Parameters
    ----------
    n_users:
        Population size.
    epsilon:
        Total ``w``-event budget each user may spend in any window.
    window:
        Window size ``w``.
    enforce:
        If True (default) raise on violation; if False only record the
        maximal observed window spend (useful to *demonstrate* that a
        deliberately broken mechanism overspends).
    """

    def __init__(
        self, n_users: int, epsilon: float, window: int, enforce: bool = True
    ):
        if n_users <= 0:
            raise InvalidParameterError(f"n_users must be positive, got {n_users}")
        if epsilon <= 0:
            raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.n_users = int(n_users)
        self.epsilon = float(epsilon)
        self.window = int(window)
        self.enforce = bool(enforce)
        # Current spend per user over the active window.
        self._window_spend = np.zeros(self.n_users, dtype=np.float64)
        # (t, user_ids_or_None, eps) for every charge inside the window.
        self._charges: Deque[Tuple[int, Optional[np.ndarray], float]] = deque()
        self._current_t = -1
        self.max_window_spend = 0.0
        self.total_charges = 0

    # ------------------------------------------------------------------
    def charge(self, t: int, user_ids: Optional[np.ndarray], epsilon: float) -> None:
        """Charge ``epsilon`` to ``user_ids`` (or everyone) at timestamp ``t``.

        Raises :class:`PrivacyViolationError` if any charged user's spend
        over ``[t - w + 1, t]`` would exceed the total budget.
        """
        if epsilon < 0:
            raise InvalidParameterError(f"cannot charge negative budget {epsilon}")
        if t < self._current_t:
            raise InvalidParameterError(
                f"accountant charges must be time-ordered; got t={t} after "
                f"t={self._current_t}"
            )
        self._advance(t)
        if epsilon == 0:
            return
        if user_ids is None:
            self._window_spend += epsilon
            touched_max = float(self._window_spend.max())
        else:
            user_ids = np.asarray(user_ids, dtype=np.int64)
            if user_ids.size == 0:
                return
            if user_ids.min() < 0 or user_ids.max() >= self.n_users:
                raise InvalidParameterError("user ids outside population")
            self._window_spend[user_ids] += epsilon
            touched_max = float(self._window_spend[user_ids].max())
        self._charges.append((t, user_ids, float(epsilon)))
        self.total_charges += 1
        self.max_window_spend = max(self.max_window_spend, touched_max)
        if self.enforce and touched_max > self.epsilon + _TOLERANCE:
            raise PrivacyViolationError(
                f"w-event LDP violated at t={t}: a user's window spend reached "
                f"{touched_max:.6f} > epsilon={self.epsilon:.6f} (w={self.window})"
            )

    def window_spend(self, user_id: int) -> float:
        """Current window spend of a single user."""
        return float(self._window_spend[user_id])

    def spend_snapshot(self) -> np.ndarray:
        """Copy of every user's current window spend."""
        return self._window_spend.copy()

    # ------------------------------------------------------------------
    def _advance(self, t: int) -> None:
        """Evict charges that fell out of the window ending at ``t``."""
        self._current_t = max(self._current_t, t)
        cutoff = t - self.window + 1
        while self._charges and self._charges[0][0] < cutoff:
            _, ids, eps = self._charges.popleft()
            if ids is None:
                self._window_spend -= eps
            else:
                self._window_spend[ids] -= eps
        # Guard against floating point drift.
        np.clip(self._window_spend, 0.0, None, out=self._window_spend)
