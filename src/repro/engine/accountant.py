"""Runtime ``w``-event LDP accountant.

The accountant is the library's privacy safety net.  Every collection round
the engine executes is charged here, per user, and the invariant of
Definition 4.2 / Theorem 5.1 — *no user's privacy spend over any window of
``w`` consecutive timestamps exceeds epsilon* — is re-checked **at
runtime**.  A mechanism bug that would overspend raises
:class:`~repro.exceptions.PrivacyViolationError` immediately instead of
silently producing a non-private trace, and the test suite leans on this:
integration tests simply run every mechanism with the accountant armed.

Budget-division mechanisms (LBU/LSP/LBD/LBA) only ever charge *all* users
at once, so their ledger stays uniform across the population.  The
accountant tracks that regime with a single scalar — O(1) per charge
instead of O(N) array updates — and materialises the per-user array
lazily the first time a group charge (population division) or a snapshot
read needs it.  The scalar and array paths perform the same additions,
subtractions and clips in the same order, so switching regimes never
changes an observed spend by even one ULP.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidParameterError, PrivacyViolationError

#: Numerical slack for floating-point budget sums.
_TOLERANCE = 1e-9


class WEventAccountant:
    """Per-user sliding-window privacy ledger.

    Parameters
    ----------
    n_users:
        Population size.
    epsilon:
        Total ``w``-event budget each user may spend in any window.
    window:
        Window size ``w``.
    enforce:
        If True (default) raise on violation; if False only record the
        maximal observed window spend (useful to *demonstrate* that a
        deliberately broken mechanism overspends).
    """

    def __init__(
        self, n_users: int, epsilon: float, window: int, enforce: bool = True
    ):
        if n_users <= 0:
            raise InvalidParameterError(f"n_users must be positive, got {n_users}")
        if epsilon <= 0:
            raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.n_users = int(n_users)
        self.epsilon = float(epsilon)
        self.window = int(window)
        self.enforce = bool(enforce)
        # While every charge so far hit the whole population, the spend is
        # uniform and a single scalar carries the ledger (fast path).  The
        # first group charge materialises the per-user array.
        self._uniform = True
        self._uniform_spend = 0.0
        self._window_spend: Optional[np.ndarray] = None
        # (t, user_ids_or_None, eps) for every charge inside the window.
        self._charges: Deque[Tuple[int, Optional[np.ndarray], float]] = deque()
        self._current_t = -1
        self.max_window_spend = 0.0
        self.total_charges = 0

    # ------------------------------------------------------------------
    def charge(self, t: int, user_ids: Optional[np.ndarray], epsilon: float) -> None:
        """Charge ``epsilon`` to ``user_ids`` (or everyone) at timestamp ``t``.

        Raises :class:`PrivacyViolationError` if any charged user's spend
        over ``[t - w + 1, t]`` would exceed the total budget.
        """
        if epsilon < 0:
            raise InvalidParameterError(f"cannot charge negative budget {epsilon}")
        if t < self._current_t:
            raise InvalidParameterError(
                f"accountant charges must be time-ordered; got t={t} after "
                f"t={self._current_t}"
            )
        self._advance(t)
        if epsilon == 0:
            return
        if user_ids is None:
            if self._uniform:
                self._uniform_spend += epsilon
                touched_max = self._uniform_spend
            else:
                self._window_spend += epsilon
                touched_max = float(self._window_spend.max())
        else:
            user_ids = np.asarray(user_ids, dtype=np.int64)
            if user_ids.size == 0:
                return
            if user_ids.min() < 0 or user_ids.max() >= self.n_users:
                raise InvalidParameterError("user ids outside population")
            spend = self._materialize()
            spend[user_ids] += epsilon
            touched_max = float(spend[user_ids].max())
        self._charges.append((t, user_ids, float(epsilon)))
        self.total_charges += 1
        self.max_window_spend = max(self.max_window_spend, touched_max)
        if self.enforce and touched_max > self.epsilon + _TOLERANCE:
            raise PrivacyViolationError(
                f"w-event LDP violated at t={t}: a user's window spend reached "
                f"{touched_max:.6f} > epsilon={self.epsilon:.6f} (w={self.window})"
            )

    def charge_many(self, ts: "Sequence[int]", epsilon) -> None:
        """Charge *everyone* at each of several timestamps.

        ``epsilon`` is either a scalar (every timestamp charges the same
        budget — the uniform mechanisms' case) or a sequence aligned
        with ``ts`` (non-uniform spend — e.g. a speculative adaptive
        kernel committing a run of dissimilarity rounds capped by one
        publication round; a timestamp may then repeat, carrying its M1
        and M2 charges back to back, exactly as the per-step path would
        issue them).

        Equivalent to ``charge(t, None, eps_t)`` for each ``t`` of the
        non-descending ``ts`` — same ledger state, same
        ``max_window_spend``, same violation raised at the same
        timestamp — but executed as one tight scalar loop while the
        ledger is uniform.  This is the accountant's bulk-ingestion
        kernel: budget-division mechanisms charge the whole population
        once per timestamp, so a chunk's accounting collapses to
        O(chunk) scalar arithmetic with no per-charge method dispatch.
        """
        eps_seq = None
        if not isinstance(epsilon, (int, float)):
            eps_seq = [float(e) for e in epsilon]
            if len(eps_seq) != len(ts):
                raise InvalidParameterError(
                    f"epsilon sequence must align with ts: "
                    f"{len(eps_seq)} budgets for {len(ts)} timestamps"
                )
        if not self._uniform:
            if eps_seq is None:
                for t in ts:
                    self.charge(t, None, epsilon)
            else:
                for t, eps_t in zip(ts, eps_seq):
                    self.charge(t, None, eps_t)
            return
        if eps_seq is None and epsilon < 0:
            raise InvalidParameterError(f"cannot charge negative budget {epsilon}")
        spend = self._uniform_spend
        current_t = self._current_t
        max_spend = self.max_window_spend
        charges = self._charges
        limit = self.epsilon + _TOLERANCE
        count = 0
        try:
            for i, t in enumerate(ts):
                eps_t = epsilon if eps_seq is None else eps_seq[i]
                if eps_t < 0:
                    raise InvalidParameterError(
                        f"cannot charge negative budget {eps_t}"
                    )
                if t < current_t:
                    raise InvalidParameterError(
                        f"accountant charges must be time-ordered; got "
                        f"t={t} after t={current_t}"
                    )
                if t > current_t:
                    current_t = t
                cutoff = t - self.window + 1
                evicted = False
                while charges and charges[0][0] < cutoff:
                    spend -= charges.popleft()[2]
                    evicted = True
                if evicted and spend < 0.0:
                    spend = 0.0
                if eps_t == 0:
                    continue
                spend += eps_t
                charges.append((t, None, float(eps_t)))
                count += 1
                if spend > max_spend:
                    max_spend = spend
                if self.enforce and spend > limit:
                    raise PrivacyViolationError(
                        f"w-event LDP violated at t={t}: a user's window "
                        f"spend reached {spend:.6f} > epsilon="
                        f"{self.epsilon:.6f} (w={self.window})"
                    )
        finally:
            # Mirror the per-charge path even when a violation raises
            # mid-span: everything charged so far stays on the ledger.
            self._uniform_spend = spend
            self._current_t = current_t
            self.max_window_spend = max_spend
            self.total_charges += count

    def charge_span(self, t0: int, length: int, epsilon: float) -> None:
        """Charge *everyone* ``epsilon`` at ``length`` consecutive timestamps.

        The contiguous-uniform special case of :meth:`charge_many` —
        exactly ``charge_many(range(t0, t0 + length), epsilon)``: same
        ledger state, same counters, same violation raised at the same
        timestamp.  Contiguity lets the per-timestamp validation hoist
        out of the loop (time ordering is implied by the span, the budget
        is checked once), leaving only window eviction and the scalar
        adds.  This is the ledger update under the SoA scheduler's fused
        buckets (:mod:`repro.engine.soa`), where every uniform session of
        a bucket charges one whole-chunk span per advance.
        """
        length = int(length)
        if length < 0:
            raise InvalidParameterError(
                f"span length must be non-negative, got {length}"
            )
        if length == 0:
            return
        t0 = int(t0)
        if (
            not self._uniform
            or not isinstance(epsilon, (int, float))
            or epsilon == 0
        ):
            # Rare shapes (materialised ledger, budget sequences, pure
            # clock advances) take the general bulk path unchanged.
            self.charge_many(range(t0, t0 + length), epsilon)
            return
        if epsilon < 0:
            raise InvalidParameterError(
                f"cannot charge negative budget {epsilon}"
            )
        if t0 < self._current_t:
            raise InvalidParameterError(
                f"accountant charges must be time-ordered; got t={t0} "
                f"after t={self._current_t}"
            )
        eps_t = float(epsilon)
        window = self.window
        spend = self._uniform_spend
        current_t = self._current_t
        max_spend = self.max_window_spend
        charges = self._charges
        limit = self.epsilon + _TOLERANCE
        count = 0
        try:
            for t in range(t0, t0 + length):
                current_t = t
                cutoff = t - window + 1
                evicted = False
                while charges and charges[0][0] < cutoff:
                    spend -= charges.popleft()[2]
                    evicted = True
                if evicted and spend < 0.0:
                    spend = 0.0
                spend += eps_t
                charges.append((t, None, eps_t))
                count += 1
                if spend > max_spend:
                    max_spend = spend
                if self.enforce and spend > limit:
                    raise PrivacyViolationError(
                        f"w-event LDP violated at t={t}: a user's window "
                        f"spend reached {spend:.6f} > epsilon="
                        f"{self.epsilon:.6f} (w={self.window})"
                    )
        finally:
            # Mirror charge_many: everything charged before a mid-span
            # violation stays on the ledger.
            self._uniform_spend = spend
            self._current_t = current_t
            self.max_window_spend = max_spend
            self.total_charges += count

    def window_spend(self, user_id: int) -> float:
        """Current window spend of a single user."""
        if self._uniform:
            if not 0 <= int(user_id) < self.n_users:
                raise IndexError(
                    f"user id {user_id} outside population of {self.n_users}"
                )
            return float(self._uniform_spend)
        return float(self._window_spend[user_id])

    def spend_snapshot(self) -> np.ndarray:
        """Copy of every user's current window spend."""
        if self._uniform:
            return np.full(self.n_users, self._uniform_spend, dtype=np.float64)
        return self._window_spend.copy()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full ledger state for :mod:`repro.persist` checkpoints.

        Captures the regime flag, the scalar/array spend, every charge
        still inside the window, and the running counters — everything
        :meth:`load_state` needs to continue charging bit-identically
        (the uniform fast path and the materialised array path are both
        preserved exactly as they were).
        """
        return {
            "uniform": self._uniform,
            "uniform_spend": self._uniform_spend,
            "window_spend": (
                None
                if self._window_spend is None
                else self._window_spend.copy()
            ),
            "charges": [
                (t, None if ids is None else ids.copy(), eps)
                for t, ids, eps in self._charges
            ],
            "current_t": self._current_t,
            "max_window_spend": self.max_window_spend,
            "total_charges": self.total_charges,
        }

    def load_state(self, state: dict) -> None:
        """Install a ledger captured by :meth:`state_dict`."""
        self._uniform = bool(state["uniform"])
        self._uniform_spend = float(state["uniform_spend"])
        spend = state["window_spend"]
        self._window_spend = (
            None if spend is None else np.asarray(spend, dtype=np.float64).copy()
        )
        self._charges = deque(
            (
                int(t),
                None if ids is None else np.asarray(ids, dtype=np.int64),
                float(eps),
            )
            for t, ids, eps in state["charges"]
        )
        self._current_t = int(state["current_t"])
        self.max_window_spend = float(state["max_window_spend"])
        self.total_charges = int(state["total_charges"])

    # ------------------------------------------------------------------
    def _materialize(self) -> np.ndarray:
        """Leave the uniform regime: expand the scalar into the array."""
        if self._uniform:
            self._window_spend = np.full(
                self.n_users, self._uniform_spend, dtype=np.float64
            )
            self._uniform = False
        return self._window_spend

    def _advance(self, t: int) -> None:
        """Evict charges that fell out of the window ending at ``t``."""
        self._current_t = max(self._current_t, t)
        cutoff = t - self.window + 1
        evicted = False
        while self._charges and self._charges[0][0] < cutoff:
            _, ids, eps = self._charges.popleft()
            evicted = True
            if ids is None:
                if self._uniform:
                    self._uniform_spend -= eps
                else:
                    self._window_spend -= eps
            else:
                self._window_spend[ids] -= eps
        if not evicted:
            return
        # Guard against floating point drift.
        if self._uniform:
            self._uniform_spend = max(0.0, self._uniform_spend)
        else:
            np.clip(self._window_spend, 0.0, None, out=self._window_spend)
