"""The collection engine: the only place raw user values are touched.

Mechanisms are *server-side strategies*.  They decide who reports and with
which budget, but the perturbation itself — the client side of Figures 2
and 3 — happens here, so that privacy accounting and communication metering
cannot be bypassed:

* every collection round charges the :class:`WEventAccountant`;
* every report increments the communication counter that backs the CFPU
  metric of Sections 5.4.3 / 6.3.3.

``fast=True`` uses the oracles' exact count-level samplers
(:meth:`~repro.freq_oracles.base.FrequencyOracle.sample_aggregate`);
``fast=False`` runs the literal per-user protocol.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..freq_oracles import FOEstimate, FrequencyOracle, get_oracle
from ..rng import SeedLike, ensure_rng
from ..streams.base import StreamDataset
from .accountant import WEventAccountant


class Collector:
    """Executes LDP collection rounds against a stream dataset."""

    def __init__(
        self,
        dataset: StreamDataset,
        oracle: FrequencyOracle,
        accountant: Optional[WEventAccountant],
        rng: SeedLike = None,
        fast: bool = True,
    ):
        self.dataset = dataset
        self.oracle = get_oracle(oracle)
        self.accountant = accountant
        self.rng = ensure_rng(rng)
        self.fast = bool(fast)
        self.total_reports = 0

    def collect(
        self,
        t: int,
        epsilon: float,
        user_ids: Optional[np.ndarray] = None,
    ) -> FOEstimate:
        """Run one FO round at timestamp ``t``.

        ``user_ids=None`` means *all* users report (budget division);
        otherwise only the given group reports (population division), each
        with budget ``epsilon``.
        """
        values = self.dataset.values(t)
        if user_ids is not None:
            user_ids = np.asarray(user_ids, dtype=np.int64)
            if user_ids.size == 0:
                raise InvalidParameterError("cannot collect from an empty group")
            values = values[user_ids]
        n = int(values.shape[0])
        if self.accountant is not None:
            self.accountant.charge(t, user_ids, epsilon)
        self.total_reports += n
        d = self.dataset.domain_size
        if self.fast:
            counts = np.bincount(values, minlength=d)
            return self.oracle.sample_aggregate(counts, epsilon, rng=self.rng)
        reports = self.oracle.perturb(values, d, epsilon, rng=self.rng)
        return self.oracle.aggregate(reports, d, epsilon)


class TimestepContext:
    """Per-timestamp facade handed to mechanisms.

    Binds the current timestamp so a mechanism cannot accidentally collect
    against the wrong ``t``, and exposes only what a server-side strategy
    legitimately needs: collection rounds plus static session facts.
    """

    def __init__(self, collector: Collector, t: int):
        self._collector = collector
        self.t = int(t)

    @property
    def n_users(self) -> int:
        """Total population size ``N``."""
        return self._collector.dataset.n_users

    @property
    def domain_size(self) -> int:
        """Domain size ``d``."""
        return self._collector.dataset.domain_size

    @property
    def oracle(self) -> FrequencyOracle:
        """The frequency oracle in use (for closed-form error prediction)."""
        return self._collector.oracle

    def collect(
        self, epsilon: float, user_ids: Optional[np.ndarray] = None
    ) -> FOEstimate:
        """Collect LDP reports at the bound timestamp."""
        return self._collector.collect(self.t, epsilon, user_ids)
