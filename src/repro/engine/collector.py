"""The collection engine: the only place raw user values are touched.

Mechanisms are *server-side strategies*.  They decide who reports and with
which budget, but the perturbation itself — the client side of Figures 2
and 3 — happens here, so that privacy accounting and communication metering
cannot be bypassed:

* every collection round charges the :class:`WEventAccountant`;
* every report increments the communication counter that backs the CFPU
  metric of Sections 5.4.3 / 6.3.3.

``fast=True`` uses the oracles' exact count-level samplers
(:meth:`~repro.freq_oracles.base.FrequencyOracle.sample_aggregate`);
``fast=False`` runs the literal per-user protocol.

Two per-timestamp facades exist: :class:`TimestepContext` binds one
timestamp for per-step mechanisms, and :class:`ChunkContext` binds a
contiguous span for bulk ingestion
(:meth:`~repro.engine.session.StreamSession.observe_many`) — its
:meth:`ChunkContext.collect_run` executes one FO round per selected
timestamp through the oracles' order-preserving run samplers, so chunked
collection is bit-identical to the per-step loop.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from ..freq_oracles import FOEstimate, FrequencyOracle, get_oracle
from ..rng import SeedLike, ensure_rng
from ..streams.base import StreamDataset
from .accountant import WEventAccountant
from .kernels_fast import block_histograms


class Collector:
    """Executes LDP collection rounds against a stream dataset."""

    def __init__(
        self,
        dataset: StreamDataset,
        oracle: FrequencyOracle,
        accountant: Optional[WEventAccountant],
        rng: SeedLike = None,
        fast: bool = True,
    ):
        self.dataset = dataset
        self.oracle = get_oracle(oracle)
        self.accountant = accountant
        self.rng = ensure_rng(rng)
        self.fast = bool(fast)
        self.total_reports = 0
        # Prepared-sampler memos, keyed by budget.  The oracles' affine
        # debias constants and draw scaffolding used to be rebuilt every
        # chunk; a session cycles through a handful of budgets (one M1
        # budget plus the publication budgets), so memoizing here makes
        # the setup once-per-session.  Pure caches — reconstructible from
        # (oracle, budget) — so they are deliberately absent from
        # state_dict(): a restored collector just re-warms them.
        self._run_samplers: dict = {}
        self._round_samplers: dict = {}

    def run_sampler(self, epsilon: float):
        """Memoized order-preserving run sampler for a fixed budget.

        ``sample(counts, rng)`` is bit-identical to
        ``oracle.sample_aggregate_run(counts, epsilon, rng=rng)`` (see
        :meth:`~repro.freq_oracles.base.FrequencyOracle.run_sampler`).
        """
        sampler = self._run_samplers.get(epsilon)
        if sampler is None:
            sampler = self.oracle.run_sampler(
                epsilon, self.dataset.domain_size
            )
            self._run_samplers[epsilon] = sampler
        return sampler

    def round_sampler(self, epsilon: float):
        """Memoized prepared single-round sampler for a fixed budget.

        ``sample(counts, rng)`` is bit-identical to
        ``oracle.sample_aggregate(counts, epsilon, rng=rng).frequencies``
        (see :meth:`~repro.freq_oracles.base.FrequencyOracle.round_sampler`).
        """
        sampler = self._round_samplers.get(epsilon)
        if sampler is None:
            sampler = self.oracle.round_sampler(
                epsilon, self.dataset.domain_size
            )
            self._round_samplers[epsilon] = sampler
        return sampler

    def collect(
        self,
        t: int,
        epsilon: float,
        user_ids: Optional[np.ndarray] = None,
    ) -> FOEstimate:
        """Run one FO round at timestamp ``t``.

        ``user_ids=None`` means *all* users report (budget division);
        otherwise only the given group reports (population division), each
        with budget ``epsilon``.
        """
        values = self.dataset.values(t)
        if user_ids is not None:
            user_ids = np.asarray(user_ids, dtype=np.int64)
            if user_ids.size == 0:
                raise InvalidParameterError("cannot collect from an empty group")
            values = values[user_ids]
        n = int(values.shape[0])
        if self.accountant is not None:
            self.accountant.charge(t, user_ids, epsilon)
        self.total_reports += n
        d = self.dataset.domain_size
        if self.fast:
            counts = np.bincount(values, minlength=d)
            return self.oracle.sample_aggregate(counts, epsilon, rng=self.rng)
        reports = self.oracle.perturb(values, d, epsilon, rng=self.rng)
        return self.oracle.aggregate(reports, d, epsilon)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Communication-meter state for :mod:`repro.persist` checkpoints.

        The collector's randomness is the shared session generator
        (captured separately) and the accountant checkpoints itself, so
        the report counter is the only state owned here.
        """
        return {"total_reports": self.total_reports}

    def load_state(self, state: dict) -> None:
        """Install state captured by :meth:`state_dict`."""
        self.total_reports = int(state["total_reports"])

    @staticmethod
    def merge(estimates: Sequence[FOEstimate], oracle) -> FOEstimate:
        """Merge per-shard estimates of one logical collection round.

        All five oracles debias an additive integer sufficient statistic
        (the support-count vector), so when a population is partitioned
        across shards that each ran the *same* round (same oracle, same
        epsilon, disjoint users), summing the shard supports in shard
        order and re-debiasing reproduces the whole-population estimate
        exactly: ``merge([aggregate(r_s) for s]) ==
        aggregate(concat(r_s))`` bit-for-bit.  Estimates lacking
        supports (hand-built ones) fall back to the count-weighted
        frequency merge ``f = Σ n_s f_s / n`` — algebraically identical,
        exact only up to float associativity.
        """
        estimates = list(estimates)
        if not estimates:
            raise InvalidParameterError("cannot merge zero estimates")
        oracle = get_oracle(oracle)
        epsilon = estimates[0].epsilon
        d = estimates[0].domain_size
        for est in estimates[1:]:
            if est.epsilon != epsilon:
                raise InvalidParameterError(
                    f"shard estimates mix budgets {epsilon} and "
                    f"{est.epsilon}; only same-round estimates merge"
                )
            if est.domain_size != d:
                raise InvalidParameterError(
                    f"shard estimates mix domain sizes {d} and "
                    f"{est.domain_size}"
                )
        n = sum(int(est.n_reports) for est in estimates)
        if all(est.supports is not None for est in estimates):
            supports = estimates[0].supports.astype(np.float64, copy=True)
            for est in estimates[1:]:
                supports += est.supports
            return oracle.estimate_from_supports(supports, n, d, epsilon)
        frequencies = estimates[0].n_reports * estimates[0].frequencies
        for est in estimates[1:]:
            frequencies = frequencies + est.n_reports * est.frequencies
        frequencies = frequencies / n
        variance = sum(
            (est.n_reports / n) ** 2 * est.variance for est in estimates
        )
        return FOEstimate(
            frequencies=frequencies,
            n_reports=n,
            epsilon=epsilon,
            variance=float(variance),
        )

    def collect_run(
        self,
        t0: int,
        offsets: Sequence[int],
        epsilon: float,
        values_block: np.ndarray,
        user_ids: Optional[Sequence[np.ndarray]] = None,
        counts: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run one FO round at each of several timestamps of a chunk.

        ``offsets`` are ascending row indices into ``values_block`` (the
        ``(chunk, n_users)`` value matrix for timestamps ``t0, t0+1,
        ...``); round ``i`` collects at timestamp ``t0 + offsets[i]``.
        ``user_ids=None`` means all users report at every selected
        timestamp (``counts`` may pass their precomputed ``(k, d)`` true
        histograms); otherwise ``user_ids[i]`` is the reporting group of
        round ``i``.  Returns the ``(k, d)`` unbiased frequency
        estimates and the ``(k,)`` per-round report counts.

        Bit-identity with sequential :meth:`collect` calls: the true
        counts are the same integers, accounting charges run in the same
        timestamp order, and the draws go through the oracle's
        order-preserving :meth:`~repro.freq_oracles.base.FrequencyOracle.
        sample_aggregate_run` (or, under ``fast=False``, a literal
        per-round perturb/aggregate loop).  The one observable
        difference is failure timing: all of the chunk's accountant
        charges precede its draws, so a privacy violation raises before
        any of the chunk's estimates exist rather than mid-span —
        either way the session is left mid-step and unusable.
        """
        d = self.dataset.domain_size
        if user_ids is None:
            if counts is None:
                counts = np.empty((len(offsets), d), dtype=np.int64)
                for i, off in enumerate(offsets):
                    counts[i] = np.bincount(values_block[off], minlength=d)
            groups: List[Optional[np.ndarray]] = [None] * len(offsets)
        else:
            if len(user_ids) != len(offsets):
                raise InvalidParameterError(
                    "user_ids must align with offsets: "
                    f"{len(user_ids)} groups for {len(offsets)} rounds"
                )
            groups = [np.asarray(ids, dtype=np.int64) for ids in user_ids]
            if any(ids.size == 0 for ids in groups):
                raise InvalidParameterError("cannot collect from an empty group")
            counts = np.stack(
                [
                    np.bincount(values_block[off][ids], minlength=d)
                    for off, ids in zip(offsets, groups)
                ]
            )
        n_reports = counts.sum(axis=1)
        if self.accountant is not None:
            if user_ids is None:
                self.accountant.charge_many(
                    [t0 + off for off in offsets], epsilon
                )
            else:
                for off, ids in zip(offsets, groups):
                    self.accountant.charge(t0 + off, ids, epsilon)
        self.total_reports += int(n_reports.sum())
        if self.fast:
            frequencies = self.run_sampler(epsilon)(counts, self.rng)
        else:
            estimates = []
            for off, ids in zip(offsets, groups):
                values = values_block[off]
                if ids is not None:
                    values = values[ids]
                reports = self.oracle.perturb(values, d, epsilon, rng=self.rng)
                estimates.append(
                    self.oracle.aggregate(reports, d, epsilon).frequencies
                )
            frequencies = (
                np.stack(estimates)
                if estimates
                else np.empty((0, d), dtype=np.float64)
            )
        return frequencies, n_reports


class TimestepContext:
    """Per-timestamp facade handed to mechanisms.

    Binds the current timestamp so a mechanism cannot accidentally collect
    against the wrong ``t``, and exposes only what a server-side strategy
    legitimately needs: collection rounds plus static session facts.
    """

    def __init__(self, collector: Collector, t: int):
        self._collector = collector
        self.t = int(t)

    @property
    def n_users(self) -> int:
        """Total population size ``N``."""
        return self._collector.dataset.n_users

    @property
    def domain_size(self) -> int:
        """Domain size ``d``."""
        return self._collector.dataset.domain_size

    @property
    def oracle(self) -> FrequencyOracle:
        """The frequency oracle in use (for closed-form error prediction)."""
        return self._collector.oracle

    def collect(
        self, epsilon: float, user_ids: Optional[np.ndarray] = None
    ) -> FOEstimate:
        """Collect LDP reports at the bound timestamp."""
        return self._collector.collect(self.t, epsilon, user_ids)


class ChunkContext:
    """Facade over a contiguous span of timestamps for bulk ingestion.

    Handed to :meth:`~repro.mechanisms.base.StreamMechanism.step_many`;
    covers timestamps ``t0, ..., t0 + length - 1``.  Chunk-kernel
    mechanisms route every data access through :meth:`collect_run` (and
    the cached :meth:`counts`), which reads from one prefetched value
    block — this is what makes chunking legal on sequential generative
    streams, whose per-timestamp snapshots are consumed as the block is
    built.  The per-step fallback (:meth:`timesteps`) instead serves
    ordinary :class:`TimestepContext`\\ s that read the dataset directly;
    a mechanism must use one style or the other for a given chunk, never
    both.
    """

    def __init__(
        self,
        collector: Collector,
        t0: int,
        length: int,
        *,
        values_block: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
    ):
        if length < 0:
            raise InvalidParameterError(
                f"chunk length must be non-negative, got {length}"
            )
        self._collector = collector
        self.t0 = int(t0)
        self.length = int(length)
        # The SoA scheduler fetches one shared value block (and its
        # histograms) per chunk and injects them into every member
        # session's context, so the per-session caches start warm and the
        # dataset is read exactly once per span.  Injected arrays must be
        # this dataset's values for [t0, t0 + length) — the scheduler
        # guarantees it; shapes are checked here.
        if values_block is not None and values_block.shape[0] != length:
            raise InvalidParameterError(
                f"injected values_block covers {values_block.shape[0]} "
                f"timestamps, expected {length}"
            )
        if counts is not None and counts.shape != (
            length,
            collector.dataset.domain_size,
        ):
            raise InvalidParameterError(
                f"injected counts have shape {counts.shape}, expected "
                f"({length}, {collector.dataset.domain_size})"
            )
        self._values_block: Optional[np.ndarray] = values_block
        self._counts: Optional[np.ndarray] = counts

    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Total population size ``N``."""
        return self._collector.dataset.n_users

    @property
    def domain_size(self) -> int:
        """Domain size ``d``."""
        return self._collector.dataset.domain_size

    @property
    def oracle(self) -> FrequencyOracle:
        """The frequency oracle in use (for closed-form error prediction)."""
        return self._collector.oracle

    # ------------------------------------------------------------------
    def values_block(self) -> np.ndarray:
        """The chunk's ``(length, n_users)`` value block (cached fetch).

        The first call pulls
        :meth:`~repro.streams.base.StreamDataset.values_range` — on
        sequential streams this consumes the span, so per-step dataset
        reads for the same timestamps are no longer legal.
        """
        if self._values_block is None:
            self._values_block = self._collector.dataset.values_range(
                self.t0, self.t0 + self.length
            )
        return self._values_block

    def counts(self) -> np.ndarray:
        """All-user true count histograms, shape ``(length, d)`` (cached).

        Row ``i`` holds the same integers as
        ``np.bincount(values(t0 + i), minlength=d)``.  Computed by
        :func:`~repro.engine.kernels_fast.block_histograms` — one
        C-level counting pass over the whole block (flat-offset bincount
        in the numpy reference, a two-loop count under the compiled
        backend; exact integers either way).
        """
        if self._counts is None:
            self._counts = block_histograms(
                self.values_block(), self.domain_size
            )
        return self._counts

    def collect_run(
        self,
        epsilon: float,
        offsets: Optional[Sequence[int]] = None,
        user_ids: Optional[Sequence[np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Collect one FO round per selected chunk offset, in order.

        ``offsets=None`` selects every timestamp of the chunk.  See
        :meth:`Collector.collect_run` for the bit-identity contract.
        """
        if offsets is None:
            offsets = range(self.length)
        offsets = [int(off) for off in offsets]
        if any(not 0 <= off < self.length for off in offsets) or any(
            a >= b for a, b in zip(offsets, offsets[1:])
        ):
            raise InvalidParameterError(
                f"offsets must be strictly ascending within "
                f"[0, {self.length}), got {offsets}"
            )
        counts = None
        if user_ids is None and (
            self._counts is not None or len(offsets) == self.length
        ):
            # Reuse (or warm) the full-chunk histogram cache only when it
            # pays for itself; sparse selections (e.g. LSP's one publish
            # per window) bincount just their own rows downstream.
            counts = self.counts()[np.asarray(offsets, dtype=np.int64)]
        return self._collector.collect_run(
            self.t0,
            offsets,
            epsilon,
            self.values_block(),
            user_ids=user_ids,
            counts=counts,
        )

    # ------------------------------------------------------------------
    # Speculative execution (adaptive budget kernels: LBD/LBA)
    # ------------------------------------------------------------------
    def rng_checkpoint(self):
        """Raw bit-generator state of the shared session generator.

        Cheap in-memory capture for speculative draws; restore with
        :meth:`rng_restore`.  (The JSON-safe persist layer uses
        :func:`repro.rng.capture_rng_state` instead.)
        """
        return self._collector.rng.bit_generator.state

    def rng_restore(self, state) -> None:
        """Rewind the shared generator to a :meth:`rng_checkpoint`."""
        self._collector.rng.bit_generator.state = state

    def speculate_run(self, epsilon, offsets) -> np.ndarray:
        """Draw all-user FO rounds at the given ascending offsets —
        **draws only**, no accounting.

        Returns the ``(k, d)`` frequency estimates.  The draws consume
        the shared generator exactly as per-step :meth:`collect` calls
        at the same timestamps would (order-preserving run samplers;
        their element order also guarantees that the first ``j`` rounds
        of a longer speculation consume the same bitstream as a
        ``j``-round one, which is what makes discard-and-replay exact).
        A speculating kernel must pair every kept round with
        :meth:`commit_run` charges, and must
        :meth:`rng_restore`-discard every round it does not keep.
        """
        collector = self._collector
        d = self.domain_size
        offsets = list(offsets)
        counts = self.counts()[np.asarray(offsets, dtype=np.int64)]
        if collector.fast:
            return collector.run_sampler(epsilon)(counts, collector.rng)
        block = self.values_block()
        estimates = []
        for off in offsets:
            reports = collector.oracle.perturb(
                block[off], d, epsilon, rng=collector.rng
            )
            estimates.append(
                collector.oracle.aggregate(reports, d, epsilon).frequencies
            )
        return (
            np.stack(estimates)
            if estimates
            else np.empty((0, d), dtype=np.float64)
        )

    def commit_run(self, epsilon, offsets) -> None:
        """Charge and meter previously speculated all-user rounds.

        ``epsilon`` is a scalar or a per-round sequence; ``offsets`` are
        non-descending and may repeat a timestamp (an M1 round and its
        publication round charge back to back, as the per-step path
        would).  The final ledger state, report counter and any
        violation raised are identical to the per-step path's; only the
        failure *timing* differs — the committed rounds' draws already
        happened, so a violation raises after them instead of
        interleaved, the mirror image of :meth:`Collector.collect_run`'s
        charges-before-draws deviation.  Either way the session is left
        mid-step and unusable.
        """
        collector = self._collector
        offsets = list(offsets)
        if collector.accountant is not None:
            collector.accountant.charge_many(
                [self.t0 + off for off in offsets], epsilon
            )
        collector.total_reports += self.n_users * len(offsets)

    # ------------------------------------------------------------------
    # Prepared per-round collection (adaptive population kernels: LPD/LPA)
    # ------------------------------------------------------------------
    def round_collector(self, epsilon: float):
        """Build a prepared group-collection closure for a fixed budget.

        Returns ``collect(offset, user_ids) -> frequencies`` performing
        exactly what per-step :meth:`TimestepContext.collect` does for a
        non-empty group at ``t0 + offset`` — charge, meter, count, draw,
        in that order, on the same shared generator — with the per-call
        oracle setup hoisted via the collector's memoized
        :meth:`Collector.round_sampler` (built once per session budget,
        not once per chunk).
        The adaptive population mechanisms' pool draws interleave with
        their oracle draws, so their rounds cannot batch; this closure
        is their chunk kernel's hot path.
        """
        collector = self._collector
        accountant = collector.accountant
        oracle = collector.oracle
        rng = collector.rng
        d = self.domain_size
        block = self.values_block()
        t0 = self.t0

        if collector.fast:
            sampler = collector.round_sampler(epsilon)

            def collect(offset: int, user_ids: np.ndarray) -> np.ndarray:
                values = block[offset][user_ids]
                if accountant is not None:
                    accountant.charge(t0 + offset, user_ids, epsilon)
                collector.total_reports += values.shape[0]
                counts = np.bincount(values, minlength=d)
                return sampler(counts, rng)

        else:

            def collect(offset: int, user_ids: np.ndarray) -> np.ndarray:
                values = block[offset][user_ids]
                if accountant is not None:
                    accountant.charge(t0 + offset, user_ids, epsilon)
                collector.total_reports += values.shape[0]
                reports = oracle.perturb(values, d, epsilon, rng=rng)
                return oracle.aggregate(reports, d, epsilon).frequencies

        return collect

    def budget_round_runner(self):
        """Build a prepared all-user round closure ``run(offset, epsilon)``.

        Performs exactly what per-step :meth:`TimestepContext.collect`
        does for a full-population round at ``t0 + offset`` — charge,
        meter, count, draw, in that order, on the same shared generator —
        but with the oracle setup hoisted per distinct budget through the
        collector-level :meth:`Collector.round_sampler` memo (the
        adaptive budget mechanisms cycle through one M1 budget and a
        handful of publication budgets, so the memo persists across
        chunks, not just within one).  This is the
        sequential mode of the hybrid LBD/LBA kernels: when publications
        are frequent, speculation would discard most of its lookahead,
        so the kernel runs rounds one at a time with zero wasted draws.
        """
        collector = self._collector
        accountant = collector.accountant
        oracle = collector.oracle
        rng = collector.rng
        d = self.domain_size
        n_users = self.n_users
        t0 = self.t0

        if collector.fast:
            counts = self.counts()

            def run(offset: int, epsilon: float) -> np.ndarray:
                if accountant is not None:
                    accountant.charge(t0 + offset, None, epsilon)
                collector.total_reports += n_users
                return collector.round_sampler(epsilon)(counts[offset], rng)

        else:
            block = self.values_block()

            def run(offset: int, epsilon: float) -> np.ndarray:
                if accountant is not None:
                    accountant.charge(t0 + offset, None, epsilon)
                collector.total_reports += n_users
                reports = oracle.perturb(block[offset], d, epsilon, rng=rng)
                return oracle.aggregate(reports, d, epsilon).frequencies

        return run

    # ------------------------------------------------------------------
    def timestep(self, offset: int) -> TimestepContext:
        """Per-step context for chunk offset ``offset`` (fallback path)."""
        if not 0 <= offset < self.length:
            raise InvalidParameterError(
                f"offset {offset} outside chunk of length {self.length}"
            )
        return TimestepContext(self._collector, self.t0 + offset)

    def timesteps(self) -> Iterator[TimestepContext]:
        """Iterate per-step contexts in timestamp order (fallback path)."""
        for offset in range(self.length):
            yield self.timestep(offset)
