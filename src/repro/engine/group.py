"""Shared-pass multi-session engine.

A parameter sweep runs the *same dataset* under many configurations
(mechanism × epsilon × window × oracle × postprocess).  Executed naively,
every configuration re-simulates the stream and recomputes the true
frequencies from scratch — for generative simulators the data generation
dominates the mechanism work, so a 7-mechanism × 4-epsilon grid pays for
28 stream passes to do 1 pass worth of data work.

:class:`SessionGroup` runs many :class:`~repro.engine.session.StreamSession`
standing queries over a **single pass** of one dataset: each timestamp's
user values are produced once and its true-frequency histogram is computed
once, then fanned out to every session.

Determinism argument
--------------------
Each session's output is bit-identical to a solo
:func:`~repro.engine.session.run_stream` at the same seed because

* every session owns a private RNG — mechanism randomness and
  perturbation randomness never cross sessions;
* user values are a pure function of the dataset seed and the timestamp
  (generative streams replay bit-identically after ``reset()``), so one
  shared pass serves every session the exact arrays a solo pass would;
* true frequencies are a deterministic function of the values, so the
  group-computed histogram equals what each session would compute itself;
* sessions are advanced in timestamp order, which is the only order a
  solo run ever uses.

On random-access datasets the whole fan-out is chunked: each
``truth_chunk``-sized span's histograms come from one batched
:meth:`~repro.streams.base.StreamDataset.true_frequencies_range` call
and every session ingests the span through
:meth:`~repro.engine.session.StreamSession.observe_many` (bulk
ingestion), amortising the per-step engine overhead as well as the
histogram work.  Sequential (generative/online) streams keep the
per-timestamp fan-out, since their snapshots exist only while the
cursor is on them.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..query.store import ReleaseStore
from ..rng import SeedLike
from ..streams.base import GenerativeStream, StreamDataset
from .records import SessionResult
from .session import StreamSession

#: Timestamps per batched true-frequency fetch on random-access streams.
_TRUTH_CHUNK = 128


class SessionGroup:
    """Run many streaming sessions over one pass of a shared dataset.

    Parameters
    ----------
    dataset:
        The stream every session observes.
    horizon:
        Default horizon for sessions added without one; falls back to
        the dataset's horizon.
    truth_chunk:
        Bulk-ingestion span on random-access datasets: timestamps per
        batched true-frequency prefetch and per
        :meth:`~repro.engine.session.StreamSession.observe_many` call.
    """

    def __init__(
        self,
        dataset: StreamDataset,
        *,
        horizon: Optional[int] = None,
        truth_chunk: int = _TRUTH_CHUNK,
    ):
        if truth_chunk <= 0:
            raise InvalidParameterError(
                f"truth_chunk must be positive, got {truth_chunk}"
            )
        self.dataset = dataset
        self.horizon = horizon if horizon is not None else dataset.horizon
        self.truth_chunk = int(truth_chunk)
        self._sessions: List[StreamSession] = []
        self._ran = False
        self._started = False
        self._cursor = 0

    # ------------------------------------------------------------------
    def add_session(
        self,
        mechanism,
        epsilon: float,
        window: int,
        *,
        oracle="grr",
        seed: SeedLike = None,
        horizon: Optional[int] = None,
        fast: bool = True,
        postprocess: str = "none",
        enforce_privacy: bool = True,
        store: Optional[ReleaseStore] = None,
    ) -> StreamSession:
        """Register one session on the shared pass and return it.

        ``seed`` must be session-private (an int, SeedSequence, or a
        dedicated Generator) — handing several sessions the same live
        Generator would interleave their draws and break the solo
        equivalence.  ``store`` attaches a session-private
        :class:`~repro.query.ReleaseStore` the session publishes into
        during the pass (one store per session — stores track a single
        release sequence).
        """
        if self._ran:
            raise InvalidParameterError(
                "cannot add sessions after the group has run"
            )
        steps = horizon if horizon is not None else self.horizon
        if steps is None:
            raise InvalidParameterError(
                "a session horizon is required on unbounded streams"
            )
        if steps <= 0:
            raise InvalidParameterError(
                f"horizon must be positive, got {steps}"
            )
        session = StreamSession(
            mechanism,
            self.dataset,
            epsilon,
            window,
            horizon=int(steps),
            oracle=oracle,
            seed=seed,
            fast=fast,
            postprocess=postprocess,
            enforce_privacy=enforce_privacy,
            store=store,
        )
        self._sessions.append(session)
        return session

    def attach_stores(
        self, capacity: Optional[int] = None
    ) -> List[ReleaseStore]:
        """Fan one release store out to every registered session.

        Sessions that already own a store keep it; the returned list has
        one store per session, in ``add_session`` order, so callers can
        stand a :class:`~repro.query.QueryEngine` over each.
        """
        if self._ran:
            raise InvalidParameterError(
                "cannot attach stores after the group has run"
            )
        stores: List[ReleaseStore] = []
        for session in self._sessions:
            if session.store is None:
                session.attach_store(capacity)
            stores.append(session.store)
        return stores

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def sessions(self) -> List[StreamSession]:
        """Registered sessions, in ``add_session`` order."""
        return list(self._sessions)

    @property
    def cursor(self) -> int:
        """Next timestamp the shared pass will ingest."""
        return self._cursor

    @property
    def steps(self) -> int:
        """Total timestamps the pass covers (largest session horizon)."""
        if not self._sessions:
            return 0
        return max(s.horizon for s in self._sessions)

    # ------------------------------------------------------------------
    def run(self) -> List[SessionResult]:
        """Execute the single shared pass; results in ``add_session`` order.

        Equivalent to calling :func:`~repro.engine.session.run_stream`
        once per session (rewinding generative streams in between), but
        the stream is generated and the truth histograms are computed
        exactly once.  Composed from the incremental pass API below —
        drive :meth:`start_pass` / :meth:`advance_to` /
        :meth:`finalize_all` directly to pause (and checkpoint) the pass
        mid-stream.
        """
        if self._ran:
            raise InvalidParameterError("group has already run")
        if not self._sessions:
            self._ran = True
            return []
        self.start_pass()
        self.advance_to(self.steps)
        return self.finalize_all()

    def start_pass(self) -> "SessionGroup":
        """Begin the shared pass: rewind the stream, start every session."""
        if self._ran:
            raise InvalidParameterError("group has already run")
        if not self._sessions:
            raise InvalidParameterError(
                "cannot start a pass with no sessions"
            )
        self._ran = True
        self._started = True
        if isinstance(self.dataset, GenerativeStream):
            self.dataset.reset()
        for session in self._sessions:
            session.start()
        return self

    def advance_to(self, target: int) -> int:
        """Ingest shared-pass timestamps up to (excluding) ``target``.

        Clamped to the pass length; a ``target`` at or behind the cursor
        is a no-op.  Returns the new cursor.  Chunk boundaries are
        relative to the *current* cursor, which is safe because
        :meth:`~repro.engine.session.StreamSession.observe_many` is
        bit-identical at any chunk size — a resumed pass whose chunks no
        longer align with the original's produces the same bytes.
        """
        if not self._started:
            raise InvalidParameterError(
                "call start_pass() before advance_to()"
            )
        target = min(int(target), self.steps)
        if target <= self._cursor:
            return self._cursor
        if getattr(self.dataset, "random_access", False):
            self._advance_chunked(self._cursor, target)
        else:
            self._advance_per_step(self._cursor, target)
        self._cursor = target
        return self._cursor

    def finalize_all(self) -> List[SessionResult]:
        """Finalize every session; results in ``add_session`` order."""
        if not self._started:
            raise InvalidParameterError(
                "call start_pass() before finalize_all()"
            )
        return [session.finalize() for session in self._sessions]

    def _advance_chunked(self, t0: int, t1: int) -> None:
        """Bulk fan-out on random-access datasets.

        Each truth chunk is computed once and every session ingests it
        through :meth:`~repro.engine.session.StreamSession.observe_many`
        — bit-identical to the per-timestamp fan-out (sessions own
        private RNGs and the dataset serves any order), with the
        per-step Python overhead amortised per chunk.
        """
        dataset = self.dataset
        for b0 in range(t0, t1, self.truth_chunk):
            b1 = min(b0 + self.truth_chunk, t1)
            truth = dataset.true_frequencies_range(b0, b1)
            for session in self._sessions:
                span = min(b1, session.horizon) - b0
                if span > 0:
                    session.observe_many(
                        b0, span, true_frequencies=truth[:span]
                    )

    def _advance_per_step(self, t0: int, t1: int) -> None:
        """Per-timestamp fan-out for sequential (generative/online)
        datasets, whose snapshots exist only while the cursor is on
        them."""
        dataset = self.dataset
        n = dataset.n_users
        d = dataset.domain_size
        for t in range(t0, t1):
            # One read of the timestamp's user values.  Generative
            # streams generate here and serve every session's collector
            # from the cached snapshot.  Same arithmetic as
            # StreamDataset.true_frequencies, on the values in hand.
            values = dataset.values(t)
            freqs = np.bincount(values, minlength=d).astype(np.float64) / n
            for session in self._sessions:
                if t < session.horizon:
                    session.observe(t, true_frequencies=freqs)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe checkpoint payload of the mid-pass group.

        Captures the pass cursor plus every member session's full
        snapshot; restore with :meth:`restore`.  Legal any time between
        :meth:`start_pass` and :meth:`finalize_all`.
        """
        from ..persist.checkpoint import capture_group

        return capture_group(self)

    @classmethod
    def restore(
        cls, payload: dict, dataset: StreamDataset, *, position: bool = True
    ) -> "SessionGroup":
        """Rebuild a mid-pass group from a :meth:`snapshot` payload.

        The shared ``dataset`` is positioned once to the group cursor
        (member sessions never reposition it individually).
        """
        from ..persist.checkpoint import restore_group

        return restore_group(payload, dataset, position=position)

    def _adopt(self, sessions: List[StreamSession], cursor: int) -> None:
        """Install restored members mid-pass (checkpoint machinery only)."""
        self._sessions = list(sessions)
        self._ran = True
        self._started = True
        self._cursor = int(cursor)
