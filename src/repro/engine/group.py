"""Shared-pass multi-session engine.

A parameter sweep runs the *same dataset* under many configurations
(mechanism × epsilon × window × oracle × postprocess).  Executed naively,
every configuration re-simulates the stream and recomputes the true
frequencies from scratch — for generative simulators the data generation
dominates the mechanism work, so a 7-mechanism × 4-epsilon grid pays for
28 stream passes to do 1 pass worth of data work.

:class:`SessionGroup` runs many :class:`~repro.engine.session.StreamSession`
standing queries over a **single pass** of one dataset: each timestamp's
user values are produced once and its true-frequency histogram is computed
once, then fanned out to every session.

Determinism argument
--------------------
Each session's output is bit-identical to a solo
:func:`~repro.engine.session.run_stream` at the same seed because

* every session owns a private RNG — mechanism randomness and
  perturbation randomness never cross sessions;
* user values are a pure function of the dataset seed and the timestamp
  (generative streams replay bit-identically after ``reset()``), so one
  shared pass serves every session the exact arrays a solo pass would;
* true frequencies are a deterministic function of the values, so the
  group-computed histogram equals what each session would compute itself;
* sessions are advanced in timestamp order, which is the only order a
  solo run ever uses.

Execution paths
---------------
By default the group runs through the structure-of-arrays scheduler
(:mod:`repro.engine.soa`): one shared value block and one histogram pass
per ``truth_chunk`` span, pre-warmed chunk contexts for every session,
and stacked oracle calls fusing buckets of uniform-round sessions.
Because all chunk-kernel data access goes through the prefetched block,
SoA applies to sequential generative streams too (the block consumes
the span once, for everyone).  With SoA off (``soa=False`` or the
``REPRO_SOA`` environment variable), random-access datasets fall back
to the legacy chunked fan-out — one batched
:meth:`~repro.streams.base.StreamDataset.true_frequencies_range` call
per span, each session ingesting via
:meth:`~repro.engine.session.StreamSession.observe_many` — and
sequential streams to the per-timestamp fan-out.  All three paths are
bit-identical.
"""

from __future__ import annotations

import operator
import os
from typing import List, Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..query.store import ReleaseStore
from ..rng import SeedLike
from ..streams.base import GenerativeStream, StreamDataset
from .records import SessionResult
from .session import StreamSession
from .soa import SoAScheduler, soa_supported

#: Timestamps per batched true-frequency fetch on random-access streams.
_TRUTH_CHUNK = 128

#: ``REPRO_SOA`` values that disable the SoA path when ``soa="auto"``.
_SOA_OFF = frozenset({"0", "off", "false", "no"})


class SessionGroup:
    """Run many streaming sessions over one pass of a shared dataset.

    Parameters
    ----------
    dataset:
        The stream every session observes.
    horizon:
        Default horizon for sessions added without one; falls back to
        the dataset's horizon.
    truth_chunk:
        Bulk-ingestion span: timestamps per batched value/truth prefetch
        and per
        :meth:`~repro.engine.session.StreamSession.observe_many` call.
    soa:
        Structure-of-arrays execution (:mod:`repro.engine.soa`): one
        shared value block and histogram pass per chunk, with
        uniform-round sessions fused into stacked oracle calls.
        ``"auto"`` (the default) uses it whenever the group
        configuration supports it (and the ``REPRO_SOA`` environment
        variable doesn't disable it); ``True`` requires it (raising at
        ``advance_to`` time if unsupported); ``False`` keeps the legacy
        per-session fan-out.  Either way every session's output is
        bit-identical — the toggle exists for benchmarking and as an
        escape hatch.
    """

    def __init__(
        self,
        dataset: StreamDataset,
        *,
        horizon: Optional[int] = None,
        truth_chunk: int = _TRUTH_CHUNK,
        soa="auto",
    ):
        try:
            truth_chunk = operator.index(truth_chunk)
        except TypeError:
            raise InvalidParameterError(
                f"truth_chunk must be an integer, got {truth_chunk!r}"
            ) from None
        if truth_chunk < 1:
            raise InvalidParameterError(
                f"truth_chunk must be >= 1, got {truth_chunk}"
            )
        if soa not in (True, False, "auto"):
            raise InvalidParameterError(
                f"soa must be True, False or 'auto', got {soa!r}"
            )
        self.dataset = dataset
        self.horizon = horizon if horizon is not None else dataset.horizon
        self.truth_chunk = truth_chunk
        self.soa = soa
        self._sessions: List[StreamSession] = []
        self._ran = False
        self._started = False
        self._cursor = 0

    # ------------------------------------------------------------------
    def add_session(
        self,
        mechanism,
        epsilon: float,
        window: int,
        *,
        oracle="grr",
        seed: SeedLike = None,
        horizon: Optional[int] = None,
        fast: bool = True,
        postprocess: str = "none",
        enforce_privacy: bool = True,
        store: Optional[ReleaseStore] = None,
    ) -> StreamSession:
        """Register one session on the shared pass and return it.

        ``seed`` must be session-private (an int, SeedSequence, or a
        dedicated Generator) — handing several sessions the same live
        Generator would interleave their draws and break the solo
        equivalence.  ``store`` attaches a session-private
        :class:`~repro.query.ReleaseStore` the session publishes into
        during the pass (one store per session — stores track a single
        release sequence).
        """
        if self._ran:
            raise InvalidParameterError(
                "cannot add sessions after the group has run"
            )
        steps = horizon if horizon is not None else self.horizon
        if steps is None:
            raise InvalidParameterError(
                "a session horizon is required on unbounded streams"
            )
        if steps <= 0:
            raise InvalidParameterError(
                f"horizon must be positive, got {steps}"
            )
        session = StreamSession(
            mechanism,
            self.dataset,
            epsilon,
            window,
            horizon=int(steps),
            oracle=oracle,
            seed=seed,
            fast=fast,
            postprocess=postprocess,
            enforce_privacy=enforce_privacy,
            store=store,
        )
        self._sessions.append(session)
        return session

    def attach_stores(
        self, capacity: Optional[int] = None
    ) -> List[ReleaseStore]:
        """Fan one release store out to every registered session.

        Sessions that already own a store keep it; the returned list has
        one store per session, in ``add_session`` order, so callers can
        stand a :class:`~repro.query.QueryEngine` over each.
        """
        if self._ran:
            raise InvalidParameterError(
                "cannot attach stores after the group has run"
            )
        stores: List[ReleaseStore] = []
        for session in self._sessions:
            if session.store is None:
                session.attach_store(capacity)
            stores.append(session.store)
        return stores

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def sessions(self) -> List[StreamSession]:
        """Registered sessions, in ``add_session`` order."""
        return list(self._sessions)

    @property
    def cursor(self) -> int:
        """Next timestamp the shared pass will ingest."""
        return self._cursor

    @property
    def steps(self) -> int:
        """Total timestamps the pass covers (largest session horizon)."""
        if not self._sessions:
            return 0
        return max(s.horizon for s in self._sessions)

    # ------------------------------------------------------------------
    def run(self) -> List[SessionResult]:
        """Execute the single shared pass; results in ``add_session`` order.

        Equivalent to calling :func:`~repro.engine.session.run_stream`
        once per session (rewinding generative streams in between), but
        the stream is generated and the truth histograms are computed
        exactly once.  Composed from the incremental pass API below —
        drive :meth:`start_pass` / :meth:`advance_to` /
        :meth:`finalize_all` directly to pause (and checkpoint) the pass
        mid-stream.
        """
        if self._ran:
            raise InvalidParameterError("group has already run")
        if not self._sessions:
            self._ran = True
            return []
        self.start_pass()
        self.advance_to(self.steps)
        return self.finalize_all()

    def start_pass(self) -> "SessionGroup":
        """Begin the shared pass: rewind the stream, start every session."""
        if self._ran:
            raise InvalidParameterError("group has already run")
        if not self._sessions:
            raise InvalidParameterError(
                "cannot start a pass with no sessions"
            )
        self._ran = True
        self._started = True
        if isinstance(self.dataset, GenerativeStream):
            self.dataset.reset()
        for session in self._sessions:
            session.start()
        return self

    def advance_to(self, target: int) -> int:
        """Ingest shared-pass timestamps up to (excluding) ``target``.

        Clamped to the pass length; a ``target`` at or behind the cursor
        is a no-op.  Returns the new cursor.  Chunk boundaries are
        relative to the *current* cursor, which is safe because
        :meth:`~repro.engine.session.StreamSession.observe_many` is
        bit-identical at any chunk size — a resumed pass whose chunks no
        longer align with the original's produces the same bytes.
        """
        if not self._started:
            raise InvalidParameterError(
                "call start_pass() before advance_to()"
            )
        target = min(int(target), self.steps)
        if target <= self._cursor:
            return self._cursor
        if self._use_soa():
            SoAScheduler(self).advance(self._cursor, target)
        elif getattr(self.dataset, "random_access", False):
            self._advance_chunked(self._cursor, target)
        else:
            self._advance_per_step(self._cursor, target)
        self._cursor = target
        return self._cursor

    def _use_soa(self) -> bool:
        """Resolve the ``soa`` setting against the current membership."""
        if self.soa is False:
            return False
        supported = soa_supported(self._sessions, self.dataset)
        if self.soa is True:
            if not supported:
                raise InvalidParameterError(
                    "soa=True but the group configuration does not "
                    "support SoA execution: sequential streams require "
                    "every session's mechanism to have a chunk kernel"
                )
            return True
        if os.environ.get("REPRO_SOA", "").strip().lower() in _SOA_OFF:
            return False
        return supported

    def finalize_all(self) -> List[SessionResult]:
        """Finalize every session; results in ``add_session`` order."""
        if not self._started:
            raise InvalidParameterError(
                "call start_pass() before finalize_all()"
            )
        return [session.finalize() for session in self._sessions]

    def _advance_chunked(self, t0: int, t1: int) -> None:
        """Bulk fan-out on random-access datasets.

        Each truth chunk is computed once and every session ingests it
        through :meth:`~repro.engine.session.StreamSession.observe_many`
        — bit-identical to the per-timestamp fan-out (sessions own
        private RNGs and the dataset serves any order), with the
        per-step Python overhead amortised per chunk.
        """
        dataset = self.dataset
        for b0 in range(t0, t1, self.truth_chunk):
            b1 = min(b0 + self.truth_chunk, t1)
            truth = dataset.true_frequencies_range(b0, b1)
            for session in self._sessions:
                span = min(b1, session.horizon) - b0
                if span > 0:
                    session.observe_many(
                        b0, span, true_frequencies=truth[:span]
                    )

    def _advance_per_step(self, t0: int, t1: int) -> None:
        """Per-timestamp fan-out for sequential (generative/online)
        datasets, whose snapshots exist only while the cursor is on
        them."""
        dataset = self.dataset
        n = dataset.n_users
        d = dataset.domain_size
        for t in range(t0, t1):
            # One read of the timestamp's user values.  Generative
            # streams generate here and serve every session's collector
            # from the cached snapshot.  Same arithmetic as
            # StreamDataset.true_frequencies, on the values in hand.
            values = dataset.values(t)
            freqs = np.bincount(values, minlength=d).astype(np.float64) / n
            for session in self._sessions:
                if t < session.horizon:
                    session.observe(t, true_frequencies=freqs)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe checkpoint payload of the mid-pass group.

        Captures the pass cursor plus every member session's full
        snapshot; restore with :meth:`restore`.  Legal any time between
        :meth:`start_pass` and :meth:`finalize_all`.
        """
        from ..persist.checkpoint import capture_group

        return capture_group(self)

    @classmethod
    def restore(
        cls, payload: dict, dataset: StreamDataset, *, position: bool = True
    ) -> "SessionGroup":
        """Rebuild a mid-pass group from a :meth:`snapshot` payload.

        The shared ``dataset`` is positioned once to the group cursor
        (member sessions never reposition it individually).
        """
        from ..persist.checkpoint import restore_group

        return restore_group(payload, dataset, position=position)

    def _adopt(self, sessions: List[StreamSession], cursor: int) -> None:
        """Install restored members mid-pass (checkpoint machinery only)."""
        self._sessions = list(sessions)
        self._ran = True
        self._started = True
        self._cursor = int(cursor)
