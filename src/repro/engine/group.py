"""Shared-pass multi-session engine.

A parameter sweep runs the *same dataset* under many configurations
(mechanism × epsilon × window × oracle × postprocess).  Executed naively,
every configuration re-simulates the stream and recomputes the true
frequencies from scratch — for generative simulators the data generation
dominates the mechanism work, so a 7-mechanism × 4-epsilon grid pays for
28 stream passes to do 1 pass worth of data work.

:class:`SessionGroup` runs many :class:`~repro.engine.session.StreamSession`
standing queries over a **single pass** of one dataset: each timestamp's
user values are produced once and its true-frequency histogram is computed
once, then fanned out to every session.

Determinism argument
--------------------
Each session's output is bit-identical to a solo
:func:`~repro.engine.session.run_stream` at the same seed because

* every session owns a private RNG — mechanism randomness and
  perturbation randomness never cross sessions;
* user values are a pure function of the dataset seed and the timestamp
  (generative streams replay bit-identically after ``reset()``), so one
  shared pass serves every session the exact arrays a solo pass would;
* true frequencies are a deterministic function of the values, so the
  group-computed histogram equals what each session would compute itself;
* sessions are advanced in timestamp order, which is the only order a
  solo run ever uses.

The per-timestamp truth fan-out goes through the streams' batched
:meth:`~repro.streams.base.StreamDataset.true_frequencies_range` path for
random-access datasets, amortising the histogram work over whole chunks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..query.store import ReleaseStore
from ..rng import SeedLike
from ..streams.base import GenerativeStream, StreamDataset
from .records import SessionResult
from .session import StreamSession

#: Timestamps per batched true-frequency fetch on random-access streams.
_TRUTH_CHUNK = 128


class SessionGroup:
    """Run many streaming sessions over one pass of a shared dataset.

    Parameters
    ----------
    dataset:
        The stream every session observes.
    horizon:
        Default horizon for sessions added without one; falls back to
        the dataset's horizon.
    truth_chunk:
        Chunk length for batched true-frequency prefetch on
        random-access datasets.
    """

    def __init__(
        self,
        dataset: StreamDataset,
        *,
        horizon: Optional[int] = None,
        truth_chunk: int = _TRUTH_CHUNK,
    ):
        if truth_chunk <= 0:
            raise InvalidParameterError(
                f"truth_chunk must be positive, got {truth_chunk}"
            )
        self.dataset = dataset
        self.horizon = horizon if horizon is not None else dataset.horizon
        self.truth_chunk = int(truth_chunk)
        self._sessions: List[StreamSession] = []
        self._ran = False

    # ------------------------------------------------------------------
    def add_session(
        self,
        mechanism,
        epsilon: float,
        window: int,
        *,
        oracle="grr",
        seed: SeedLike = None,
        horizon: Optional[int] = None,
        fast: bool = True,
        postprocess: str = "none",
        enforce_privacy: bool = True,
        store: Optional[ReleaseStore] = None,
    ) -> StreamSession:
        """Register one session on the shared pass and return it.

        ``seed`` must be session-private (an int, SeedSequence, or a
        dedicated Generator) — handing several sessions the same live
        Generator would interleave their draws and break the solo
        equivalence.  ``store`` attaches a session-private
        :class:`~repro.query.ReleaseStore` the session publishes into
        during the pass (one store per session — stores track a single
        release sequence).
        """
        if self._ran:
            raise InvalidParameterError(
                "cannot add sessions after the group has run"
            )
        steps = horizon if horizon is not None else self.horizon
        if steps is None:
            raise InvalidParameterError(
                "a session horizon is required on unbounded streams"
            )
        if steps <= 0:
            raise InvalidParameterError(
                f"horizon must be positive, got {steps}"
            )
        session = StreamSession(
            mechanism,
            self.dataset,
            epsilon,
            window,
            horizon=int(steps),
            oracle=oracle,
            seed=seed,
            fast=fast,
            postprocess=postprocess,
            enforce_privacy=enforce_privacy,
            store=store,
        )
        self._sessions.append(session)
        return session

    def attach_stores(
        self, capacity: Optional[int] = None
    ) -> List[ReleaseStore]:
        """Fan one release store out to every registered session.

        Sessions that already own a store keep it; the returned list has
        one store per session, in ``add_session`` order, so callers can
        stand a :class:`~repro.query.QueryEngine` over each.
        """
        if self._ran:
            raise InvalidParameterError(
                "cannot attach stores after the group has run"
            )
        stores: List[ReleaseStore] = []
        for session in self._sessions:
            if session.store is None:
                session.attach_store(capacity)
            stores.append(session.store)
        return stores

    def __len__(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    def run(self) -> List[SessionResult]:
        """Execute the single shared pass; results in ``add_session`` order.

        Equivalent to calling :func:`~repro.engine.session.run_stream`
        once per session (rewinding generative streams in between), but
        the stream is generated and the truth histograms are computed
        exactly once.
        """
        if self._ran:
            raise InvalidParameterError("group has already run")
        self._ran = True
        if not self._sessions:
            return []
        dataset = self.dataset
        if isinstance(dataset, GenerativeStream):
            dataset.reset()
        for session in self._sessions:
            session.start()
        steps = max(s.horizon for s in self._sessions)
        n = dataset.n_users
        d = dataset.domain_size
        random_access = getattr(dataset, "random_access", False)
        truth_block: Optional[np.ndarray] = None
        block_start = 0
        for t in range(steps):
            # One read of the timestamp's user values.  Generative
            # streams generate here and serve every session's collector
            # from the cached snapshot; materialized streams hand out
            # row views.
            values = dataset.values(t)
            if random_access:
                if truth_block is None or t >= block_start + len(truth_block):
                    block_start = t
                    truth_block = dataset.true_frequencies_range(
                        t, min(t + self.truth_chunk, steps)
                    )
                freqs = truth_block[t - block_start]
            else:
                # Same arithmetic as StreamDataset.true_frequencies, on
                # the values array already in hand.
                freqs = np.bincount(values, minlength=d).astype(
                    np.float64
                ) / n
            for session in self._sessions:
                if t < session.horizon:
                    session.observe(t, true_frequencies=freqs)
        return [session.finalize() for session in self._sessions]
