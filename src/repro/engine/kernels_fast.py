"""Optional compiled kernels for the SoA hot loops.

The structure-of-arrays scheduler (:mod:`repro.engine.soa`) and the
chunked collector spend most of their time in three tight loops:

``block_histograms``   per-round exact histograms over a values block
                       (the shared truth/counts pass every session reads)
``debias_rows``        the oracle debias affine map applied to a block of
                       perturbed support counts
``first_exceed``       the LBD/LBA speculative-replay decision scan (first
                       round whose dissimilarity exceeds its error bound)

Each has a **pure-numpy reference implementation** — always present,
always the conformance oracle — and an optional `numba`_-compiled variant
selected at import time.  Selection is governed by the
``REPRO_FAST_KERNELS`` environment variable:

``unset`` / ``"auto"``    use numba when importable, else numpy
``"1"/"on"/"true"``       ask for numba; warn and fall back if missing
``"0"/"off"/"false"``     force the numpy reference kernels

The compiled variants are restricted to *exactness-safe* operations —
elementwise float64 arithmetic in the same evaluation order as the
reference, integer counting, and comparisons — so switching backends
never changes a single bit of any release.  Anything whose floating-point
result depends on summation order (numpy's pairwise ``.sum()``, the
dissimilarity means in LBD) deliberately stays in numpy.  The parity
suite (``tests/engine/test_kernels_fast.py``) asserts reference ==
compiled == pure-python loop on every bucket shape the scheduler emits.

No RNG ever runs inside a compiled kernel: perturbation *draws* must come
from each session's private :class:`numpy.random.Generator` to preserve
bit-identity with solo runs, so only the deterministic pre/post maps
around the draws are compiled.

.. _numba: https://numba.pydata.org/
"""

from __future__ import annotations

import os
import warnings

import numpy as np

__all__ = [
    "backend",
    "block_histograms",
    "debias_rows",
    "first_exceed",
    "LOOP_REFERENCE",
    "NUMPY_REFERENCE",
]


# ----------------------------------------------------------------------
# Pure-numpy reference implementations (the conformance oracles)
# ----------------------------------------------------------------------
def _np_block_histograms(block: np.ndarray, domain_size: int) -> np.ndarray:
    """Exact per-row histograms: ``(B, n_users)`` values -> ``(B, d)``."""
    block = np.asarray(block)
    rows = block.shape[0]
    if rows == 0:
        return np.zeros((0, domain_size), dtype=np.int64)
    offsets = np.arange(rows, dtype=np.int64) * domain_size
    flat = block + offsets[:, None]
    return np.bincount(
        flat.ravel(), minlength=rows * domain_size
    ).reshape(rows, domain_size)


def _np_debias_rows(
    supports: np.ndarray, n_reports: np.ndarray, p: float, q: float
) -> np.ndarray:
    """``(supports / n - q) / (p - q)`` with per-row report counts.

    ``supports`` is ``(B, d)`` float64, ``n_reports`` is ``(B,)``.  The
    expression is the exact debias map every oracle applies after its
    perturbation draw; the elementwise evaluation order here is the
    bit-identity contract the compiled variant must reproduce.
    """
    return (supports / n_reports[:, None] - q) / (p - q)


def _np_first_exceed(dissimilarity: np.ndarray, error: np.ndarray) -> int:
    """First index with ``dissimilarity > error``, or ``-1`` if none."""
    hits = np.nonzero(dissimilarity > error)[0]
    return int(hits[0]) if hits.size else -1


# ----------------------------------------------------------------------
# Pure-python loop forms.  These double as (a) the source the numba
# backend compiles and (b) an independent reference the parity tests can
# run without numba installed.
# ----------------------------------------------------------------------
def _loop_block_histograms(block, domain_size):
    rows, n_users = block.shape
    out = np.zeros((rows, domain_size), dtype=np.int64)
    for b in range(rows):
        for i in range(n_users):
            out[b, block[b, i]] += 1
    return out


def _loop_debias_rows(supports, n_reports, p, q):
    rows, d = supports.shape
    out = np.empty((rows, d), dtype=np.float64)
    for b in range(rows):
        n = n_reports[b]
        for j in range(d):
            out[b, j] = (supports[b, j] / n - q) / (p - q)
    return out


def _loop_first_exceed(dissimilarity, error):
    for i in range(dissimilarity.shape[0]):
        if dissimilarity[i] > error[i]:
            return i
    return -1


#: name -> numpy reference, for tests and introspection.
NUMPY_REFERENCE = {
    "block_histograms": _np_block_histograms,
    "debias_rows": _np_debias_rows,
    "first_exceed": _np_first_exceed,
}

#: name -> pure-python loop form (numba's compilation source).
LOOP_REFERENCE = {
    "block_histograms": _loop_block_histograms,
    "debias_rows": _loop_debias_rows,
    "first_exceed": _loop_first_exceed,
}

_OFF = frozenset({"0", "off", "false", "no", "numpy"})
_ON = frozenset({"1", "on", "true", "yes", "numba"})


def _load_numba():
    """Compile the loop forms; returns the jitted kernel dict."""
    import numba

    jit = numba.njit(cache=True)
    nb_hist = jit(_loop_block_histograms)
    nb_debias = jit(_loop_debias_rows)
    nb_exceed = jit(_loop_first_exceed)

    def block_histograms(block, domain_size):
        block = np.ascontiguousarray(block, dtype=np.int64)
        if block.shape[0] == 0:
            return np.zeros((0, domain_size), dtype=np.int64)
        return nb_hist(block, domain_size)

    def debias_rows(supports, n_reports, p, q):
        return nb_debias(
            np.ascontiguousarray(supports, dtype=np.float64),
            np.ascontiguousarray(n_reports, dtype=np.float64),
            float(p),
            float(q),
        )

    def first_exceed(dissimilarity, error):
        return int(
            nb_exceed(
                np.ascontiguousarray(dissimilarity, dtype=np.float64),
                np.ascontiguousarray(error, dtype=np.float64),
            )
        )

    return {
        "block_histograms": block_histograms,
        "debias_rows": debias_rows,
        "first_exceed": first_exceed,
    }


def _select_backend():
    flag = os.environ.get("REPRO_FAST_KERNELS", "auto").strip().lower()
    if flag in _OFF:
        return "numpy", NUMPY_REFERENCE
    try:
        return "numba", _load_numba()
    except ImportError:
        if flag in _ON:
            warnings.warn(
                "REPRO_FAST_KERNELS requested a compiled backend but numba "
                "is not installed; using the pure-numpy reference kernels",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy", NUMPY_REFERENCE


_BACKEND_NAME, _KERNELS = _select_backend()

block_histograms = _KERNELS["block_histograms"]
debias_rows = _KERNELS["debias_rows"]
first_exceed = _KERNELS["first_exceed"]


def backend() -> str:
    """The selected backend: ``"numba"`` or ``"numpy"``."""
    return _BACKEND_NAME
