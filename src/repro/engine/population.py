"""User-pool management for population-division mechanisms.

Algorithms 3 and 4 maintain an *available user set* ``U_A``: groups are
sampled from it for the dissimilarity (M1) and publication (M2) rounds,
removed so nobody reports twice inside a window, and recycled ``w``
timestamps later (Alg. 3 line 19 / Alg. 4 line 21).  :class:`UserPool`
implements exactly that contract and enforces it — double-assigning a user
or recycling someone who was never assigned raises immediately.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import (
    InvalidParameterError,
    PopulationExhaustedError,
)
from ..rng import SeedLike, ensure_rng


class UserPool:
    """Set of user ids with random disjoint-group sampling and recycling."""

    def __init__(self, n_users: int, seed: SeedLike = None):
        if n_users <= 0:
            raise InvalidParameterError(f"n_users must be positive, got {n_users}")
        self.n_users = int(n_users)
        self._rng = ensure_rng(seed)
        self._available = np.ones(self.n_users, dtype=bool)
        self._n_available = self.n_users

    # ------------------------------------------------------------------
    @property
    def n_available(self) -> int:
        """Number of users currently in ``U_A``."""
        return self._n_available

    def sample(self, k: int) -> np.ndarray:
        """Draw ``k`` distinct users uniformly from ``U_A`` and remove them.

        Raises :class:`PopulationExhaustedError` when fewer than ``k``
        users remain — a symptom of a broken recycling schedule.
        """
        if k < 0:
            raise InvalidParameterError(f"cannot sample negative k={k}")
        if k == 0:
            return np.empty(0, dtype=np.int64)
        if k > self._n_available:
            raise PopulationExhaustedError(
                f"requested {k} users but only {self._n_available} available"
            )
        candidates = np.flatnonzero(self._available)
        chosen = self._rng.choice(candidates, size=k, replace=False)
        self._available[chosen] = False
        self._n_available -= k
        return chosen.astype(np.int64)

    def recycle(self, user_ids: np.ndarray) -> None:
        """Return previously sampled users to ``U_A``."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        if user_ids.size == 0:
            return
        if user_ids.min() < 0 or user_ids.max() >= self.n_users:
            raise InvalidParameterError("user ids outside population")
        if self._available[user_ids].any():
            raise InvalidParameterError(
                "attempted to recycle users that are already available"
            )
        self._available[user_ids] = True
        self._n_available += user_ids.size

    def sample_run(self, k: int) -> np.ndarray:
        """Kernel-path :meth:`sample`: identical draw and state math.

        Used by the adaptive population chunk kernels, whose group sizes
        are positive by construction, so only the exhaustion check
        remains — the generator sees exactly the calls :meth:`sample`
        would issue, keeping chunked runs bit-identical to per-step ones.
        """
        if k > self._n_available:
            raise PopulationExhaustedError(
                f"requested {k} users but only {self._n_available} available"
            )
        candidates = np.flatnonzero(self._available)
        chosen = self._rng.choice(candidates, size=k, replace=False)
        self._available[chosen] = False
        self._n_available -= k
        return chosen.astype(np.int64)

    def recycle_run(self, *groups: np.ndarray) -> None:
        """Kernel-path :meth:`recycle` for several already-validated groups.

        The chunk kernels recycle exactly the arrays they sampled ``w``
        steps earlier, so the per-call bounds and double-recycle scans
        are skipped; the mask and counter updates are identical.
        """
        total = 0
        for user_ids in groups:
            if user_ids.size:
                self._available[user_ids] = True
                total += user_ids.size
        self._n_available += total

    def is_available(self, user_id: int) -> bool:
        """Whether a specific user is currently in ``U_A``."""
        return bool(self._available[user_id])

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Availability mask for :mod:`repro.persist` checkpoints.

        The pool's randomness lives in the shared session generator, so
        the mask is the whole state.
        """
        return {"available": self._available.copy()}

    def load_state(self, state: dict) -> None:
        """Install a mask captured by :meth:`state_dict`."""
        available = np.asarray(state["available"], dtype=bool)
        if available.shape != (self.n_users,):
            raise InvalidParameterError(
                f"pool mask must have shape ({self.n_users},), got "
                f"{available.shape}"
            )
        self._available = available.copy()
        self._n_available = int(available.sum())
