"""Result records produced by streaming sessions.

These dataclasses are the library's observable output: one
:class:`StepRecord` per timestamp and a :class:`SessionResult` per run.
Benchmarks and the experiment harness consume them; they deliberately carry
everything needed to compute every metric in Section 7 (MRE, ROC series,
CFPU) without re-running the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

#: Strategy labels used by all mechanisms.
STRATEGY_PUBLISH = "publish"
STRATEGY_APPROXIMATE = "approximate"
STRATEGY_NULLIFIED = "nullified"


@dataclass(slots=True)
class StepRecord:
    """Everything a mechanism did at one timestamp.

    Attributes
    ----------
    t:
        Timestamp (0-based).
    release:
        The released histogram ``r_t``.
    strategy:
        One of ``publish`` / ``approximate`` / ``nullified``.
    publication_epsilon:
        Budget used by the publication sub-mechanism M2 (0 when
        approximating; the *full* epsilon under population division).
    publication_users:
        Number of users who reported in M2 (0 when approximating).
    dissimilarity_users:
        Number of users who reported in M1 (0 for non-adaptive methods).
    reports:
        Total reports sent at this timestamp (drives CFPU).
    dis / err:
        Estimated dissimilarity and potential publication error compared by
        the private strategy determination (NaN for non-adaptive methods).
    """

    t: int
    release: np.ndarray
    strategy: str
    publication_epsilon: float = 0.0
    publication_users: int = 0
    dissimilarity_users: int = 0
    reports: int = 0
    dis: float = float("nan")
    err: float = float("nan")


@dataclass
class SessionResult:
    """Output of one full streaming session.

    ``releases`` and ``true_frequencies`` are (T, d) matrices aligned by
    timestamp; ``records`` preserves per-step metadata.
    """

    mechanism: str
    oracle: str
    epsilon: float
    window: int
    n_users: int
    domain_size: int
    releases: np.ndarray
    true_frequencies: np.ndarray
    records: List[StepRecord] = field(default_factory=list)
    total_reports: int = 0
    max_window_spend: float = 0.0

    @property
    def horizon(self) -> int:
        """Number of timestamps in the session."""
        return int(self.releases.shape[0])

    @property
    def cfpu(self) -> float:
        """Communication frequency per user (Sections 5.4.3 / 6.3.3):
        average reports per user per timestamp."""
        if self.horizon == 0 or self.n_users == 0:
            return 0.0
        return self.total_reports / (self.n_users * self.horizon)

    @property
    def publication_count(self) -> int:
        """Number of timestamps where a fresh publication occurred."""
        return sum(1 for r in self.records if r.strategy == STRATEGY_PUBLISH)

    @property
    def publication_rate(self) -> float:
        """Fraction of timestamps with fresh publications."""
        return self.publication_count / max(1, self.horizon)

    def errors(self) -> np.ndarray:
        """Per-timestamp, per-cell release errors ``r_t - c_t``."""
        return self.releases - self.true_frequencies
