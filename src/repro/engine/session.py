"""Incremental session core: standing ``w``-event LDP stream queries.

:class:`StreamSession` is the library's execution primitive — a *standing
query* over a value stream.  It wires a dataset, a frequency oracle, a
privacy accountant and a mechanism together and advances them one
timestamp at a time:

* :meth:`StreamSession.start` initialises all per-session state;
* :meth:`StreamSession.observe` ingests one timestamp (mechanism step,
  accounting, postprocessing, trace bookkeeping);
* :meth:`StreamSession.finalize` closes the session and returns the
  :class:`~repro.engine.records.SessionResult` with everything the
  paper's metrics need.

Because the session owns no loop, it supports true unbounded online
ingestion (the "infinite" in LDP-IDS): callers may push timestamps
forever — e.g. the ``repro stream`` CLI feeding an
:class:`~repro.streams.online.OnlineStream` from a pipe — and disable
trace recording to keep memory constant.  Many sessions can also share a
single pass over one dataset via
:class:`~repro.engine.group.SessionGroup`.

:func:`run_stream` remains the one-call entry point: it builds a session,
observes ``horizon`` timestamps and finalizes.  Its results are
bit-identical to the historical monolithic loop — the session performs
the same operations on the same RNG in the same order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..freq_oracles import get_oracle
from ..freq_oracles.postprocess import get_postprocessor
from ..mechanisms.base import StreamMechanism, get_mechanism
from ..query.propagation import PRIOR_VARIANCE, next_release_variance
from ..query.store import ReleaseStore
from ..rng import SeedLike, ensure_rng
from ..streams.base import StreamDataset
from .accountant import WEventAccountant
from .collector import Collector, TimestepContext
from .records import STRATEGY_PUBLISH, SessionResult, StepRecord


class StreamSession:
    """One incremental ``w``-event LDP streaming session.

    Parameters mirror :func:`run_stream`; in addition:

    horizon:
        Optional number of timestamps the session intends to run.  Unlike
        :func:`run_stream` this may stay ``None`` even on unbounded
        streams — an online session simply keeps observing.
    record_trace:
        Keep per-timestamp releases / truths / records for
        :meth:`finalize` (default).  Disable for unbounded online
        sessions so memory stays O(1); running counters and
        :meth:`summary` remain available.
    store:
        Optional :class:`~repro.query.ReleaseStore` the session
        publishes every (postprocessed) release into, along with its
        variance-propagation metadata — the substrate for live
        :class:`~repro.query.QueryEngine` queries.  A capacity-bounded
        store plus ``record_trace=False`` serves standing queries over
        an unbounded stream in O(capacity · d) memory.

    Lifecycle: ``start()`` → ``observe(t)`` for t = 0, 1, 2, ... →
    ``finalize()``.  Timestamps must be observed in order, exactly once.
    """

    def __init__(
        self,
        mechanism,
        dataset: StreamDataset,
        epsilon: float,
        window: int,
        *,
        horizon: Optional[int] = None,
        oracle="grr",
        seed: SeedLike = None,
        fast: bool = True,
        postprocess: str = "none",
        enforce_privacy: bool = True,
        record_trace: bool = True,
        store: Optional[ReleaseStore] = None,
    ):
        if horizon is not None and horizon <= 0:
            raise InvalidParameterError(
                f"horizon must be positive, got {horizon}"
            )
        if store is not None and store.domain_size != dataset.domain_size:
            raise InvalidParameterError(
                f"store domain_size {store.domain_size} != dataset "
                f"domain_size {dataset.domain_size}"
            )
        # Resolution order matches the historical run_stream loop exactly;
        # nothing here draws from the RNG, but keeping the order frozen
        # makes the bit-identity argument a pure refactoring one.
        self.rng = ensure_rng(seed)
        self.oracle = get_oracle(oracle)
        self.mechanism: StreamMechanism = get_mechanism(mechanism)
        self.postprocessor = get_postprocessor(postprocess)
        self.dataset = dataset
        self.epsilon = float(epsilon)
        self.window = int(window)
        self.horizon = None if horizon is None else int(horizon)
        self.fast = bool(fast)
        self.enforce_privacy = bool(enforce_privacy)
        self.record_trace = bool(record_trace)
        self.store = store
        self._release_variance = PRIOR_VARIANCE

        self.accountant: Optional[WEventAccountant] = None
        self.collector: Optional[Collector] = None
        self._releases: list = []
        self._true_frequencies: list = []
        self._records: list = []
        self._next_t = 0
        self._publications = 0
        self._started = False
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def steps_observed(self) -> int:
        """Number of timestamps ingested so far."""
        return self._next_t

    @property
    def publication_count(self) -> int:
        """Fresh publications so far (running counter, trace-free)."""
        return self._publications

    @property
    def total_reports(self) -> int:
        """LDP reports collected so far."""
        return 0 if self.collector is None else self.collector.total_reports

    @property
    def max_window_spend(self) -> float:
        """Largest per-user window spend the accountant has observed."""
        return 0.0 if self.accountant is None else self.accountant.max_window_spend

    # ------------------------------------------------------------------
    def attach_store(self, capacity: Optional[int] = None) -> ReleaseStore:
        """Create, attach and return a release store for this session.

        Must run before the first :meth:`observe` so the store sees the
        whole stream (ring eviction then bounds what it *retains*, not
        what it saw).  ``capacity=None`` retains the full history.
        """
        if self.store is not None:
            raise InvalidParameterError("session already has a store")
        if self._next_t:
            raise InvalidParameterError(
                "attach_store() must run before the first observe()"
            )
        self.store = ReleaseStore(self.dataset.domain_size, capacity=capacity)
        return self.store

    def start(self) -> "StreamSession":
        """Initialise mechanism, accountant and collector state."""
        if self._started:
            raise InvalidParameterError("session already started")
        self.mechanism.setup(
            n_users=self.dataset.n_users,
            domain_size=self.dataset.domain_size,
            epsilon=self.epsilon,
            window=self.window,
            oracle=self.oracle,
            rng=self.rng,
        )
        self.accountant = WEventAccountant(
            n_users=self.dataset.n_users,
            epsilon=self.epsilon,
            window=self.window,
            enforce=self.enforce_privacy,
        )
        self.collector = Collector(
            dataset=self.dataset,
            oracle=self.oracle,
            accountant=self.accountant,
            rng=self.rng,
            fast=self.fast,
        )
        self._started = True
        return self

    def observe(
        self,
        t: Optional[int] = None,
        true_frequencies: Optional[np.ndarray] = None,
    ) -> StepRecord:
        """Ingest one timestamp and return the mechanism's step record.

        ``t`` defaults to the next expected timestamp; passing it
        explicitly asserts in-order ingestion.  ``true_frequencies``
        lets a shared-pass driver hand over the truth histogram it
        already computed for this timestamp (it must equal
        ``dataset.true_frequencies(t)``); otherwise the session asks the
        dataset itself.
        """
        if not self._started:
            raise InvalidParameterError("call start() before observe()")
        if self._finalized:
            raise InvalidParameterError("session already finalized")
        if t is None:
            t = self._next_t
        elif t != self._next_t:
            raise InvalidParameterError(
                f"timestamps must be observed in order: expected "
                f"t={self._next_t}, got t={t}"
            )
        if self.horizon is not None and t >= self.horizon:
            raise InvalidParameterError(
                f"timestamp {t} beyond session horizon {self.horizon}"
            )
        ctx = TimestepContext(self.collector, t)
        record = self.mechanism.step(ctx)
        if record.t != t:
            raise InvalidParameterError(
                f"{self.mechanism.name} returned record for t={record.t} "
                f"at t={t}"
            )
        if record.strategy == STRATEGY_PUBLISH:
            self._publications += 1
        if self.record_trace or self.store is not None:
            # Postprocessing and the truth histogram only feed the trace
            # and the query store; trace-free, store-free online sessions
            # skip both so each step is O(1) beyond the mechanism's work.
            release = np.asarray(
                self.postprocessor(record.release), dtype=np.float64
            )
        if self.store is not None:
            self._release_variance = next_release_variance(
                self.oracle,
                record.strategy,
                record.publication_epsilon,
                record.publication_users,
                self.dataset.domain_size,
                self._release_variance,
            )
            self.store.append(
                t, release, self._release_variance, record.strategy
            )
        if self.record_trace:
            if true_frequencies is None:
                true_frequencies = self.dataset.true_frequencies(t)
            self._releases.append(release.copy())
            self._true_frequencies.append(
                np.asarray(true_frequencies, dtype=np.float64).copy()
            )
            self._records.append(record)
        self._next_t = t + 1
        return record

    def finalize(self) -> SessionResult:
        """Close the session and assemble its :class:`SessionResult`.

        Requires ``record_trace=True``; online sessions that disabled
        the trace should read :meth:`summary` instead.
        """
        if not self._started:
            raise InvalidParameterError("call start() before finalize()")
        if self._finalized:
            raise InvalidParameterError("session already finalized")
        if not self.record_trace:
            raise InvalidParameterError(
                "finalize() needs record_trace=True; use summary() for "
                "trace-free online sessions"
            )
        self._finalized = True
        d = self.dataset.domain_size
        if self._releases:
            releases = np.stack(self._releases)
            true_freqs = np.stack(self._true_frequencies)
        else:
            releases = np.empty((0, d), dtype=np.float64)
            true_freqs = np.empty((0, d), dtype=np.float64)
        return SessionResult(
            mechanism=self.mechanism.name,
            oracle=self.oracle.name,
            epsilon=self.epsilon,
            window=self.window,
            n_users=self.dataset.n_users,
            domain_size=d,
            releases=releases,
            true_frequencies=true_freqs,
            records=self._records,
            total_reports=self.collector.total_reports,
            max_window_spend=self.accountant.max_window_spend,
        )

    def summary(self) -> dict:
        """Running counters, available with or without a trace."""
        steps = self.steps_observed
        return {
            "mechanism": self.mechanism.name,
            "oracle": self.oracle.name,
            "epsilon": self.epsilon,
            "window": self.window,
            "steps": steps,
            "publications": self._publications,
            "publication_rate": self._publications / max(1, steps),
            "total_reports": self.total_reports,
            "cfpu": (
                self.total_reports / (self.dataset.n_users * steps)
                if steps
                else 0.0
            ),
            "max_window_spend": self.max_window_spend,
        }


def run_stream(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    horizon: Optional[int] = None,
    oracle="grr",
    seed: SeedLike = None,
    fast: bool = True,
    postprocess: str = "none",
    enforce_privacy: bool = True,
) -> SessionResult:
    """Run one ``w``-event LDP streaming session start-to-finish.

    Parameters
    ----------
    mechanism:
        A mechanism name (``"LBU"``, ..., ``"LPA"``), class, or instance.
    dataset:
        The stream to collect; its users are the reporting population.
    epsilon / window:
        The ``w``-event LDP parameters (total window budget and ``w``).
    horizon:
        Number of timestamps to run; defaults to the dataset's horizon
        (required for unbounded streams — drive a :class:`StreamSession`
        directly for open-ended online ingestion).
    oracle:
        Frequency oracle name or instance (default GRR, as in the paper).
    seed:
        Master seed; mechanism randomness and perturbation randomness are
        derived from it.
    fast:
        Use count-level exact samplers instead of per-user perturbation.
    postprocess:
        Consistency step applied to each release for the *stored* trace
        (``none`` by default, matching the paper's raw estimates).
    enforce_privacy:
        Arm the accountant (raise on any ``w``-event violation).  Always
        leave on except when deliberately probing broken mechanisms.

    Returns
    -------
    SessionResult
        Releases, true frequencies, per-step records and counters.
    """
    steps = horizon if horizon is not None else dataset.horizon
    if steps is None:
        raise InvalidParameterError(
            "horizon is required when running an unbounded stream"
        )
    if steps <= 0:
        raise InvalidParameterError(f"horizon must be positive, got {steps}")
    session = StreamSession(
        mechanism,
        dataset,
        epsilon,
        window,
        horizon=steps,
        oracle=oracle,
        seed=seed,
        fast=fast,
        postprocess=postprocess,
        enforce_privacy=enforce_privacy,
    )
    session.start()
    for t in range(steps):
        session.observe(t)
    return session.finalize()
