"""Session driver: run a mechanism over a stream under the accountant.

:func:`run_stream` is the library's main entry point — it wires a dataset,
a frequency oracle, a privacy accountant and a mechanism together and
produces a :class:`~repro.engine.records.SessionResult` with everything the
paper's metrics need.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..freq_oracles import get_oracle
from ..freq_oracles.postprocess import get_postprocessor
from ..mechanisms.base import StreamMechanism, get_mechanism
from ..rng import SeedLike, ensure_rng
from ..streams.base import StreamDataset
from .accountant import WEventAccountant
from .collector import Collector, TimestepContext
from .records import SessionResult


def run_stream(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    horizon: Optional[int] = None,
    oracle="grr",
    seed: SeedLike = None,
    fast: bool = True,
    postprocess: str = "none",
    enforce_privacy: bool = True,
) -> SessionResult:
    """Run one ``w``-event LDP streaming session.

    Parameters
    ----------
    mechanism:
        A mechanism name (``"LBU"``, ..., ``"LPA"``), class, or instance.
    dataset:
        The stream to collect; its users are the reporting population.
    epsilon / window:
        The ``w``-event LDP parameters (total window budget and ``w``).
    horizon:
        Number of timestamps to run; defaults to the dataset's horizon
        (required for unbounded streams).
    oracle:
        Frequency oracle name or instance (default GRR, as in the paper).
    seed:
        Master seed; mechanism randomness and perturbation randomness are
        derived from it.
    fast:
        Use count-level exact samplers instead of per-user perturbation.
    postprocess:
        Consistency step applied to each release for the *stored* trace
        (``none`` by default, matching the paper's raw estimates).
    enforce_privacy:
        Arm the accountant (raise on any ``w``-event violation).  Always
        leave on except when deliberately probing broken mechanisms.

    Returns
    -------
    SessionResult
        Releases, true frequencies, per-step records and counters.
    """
    steps = horizon if horizon is not None else dataset.horizon
    if steps is None:
        raise InvalidParameterError(
            "horizon is required when running an unbounded stream"
        )
    if steps <= 0:
        raise InvalidParameterError(f"horizon must be positive, got {steps}")

    rng = ensure_rng(seed)
    oracle = get_oracle(oracle)
    mechanism = get_mechanism(mechanism)
    postprocessor = get_postprocessor(postprocess)

    mechanism.setup(
        n_users=dataset.n_users,
        domain_size=dataset.domain_size,
        epsilon=epsilon,
        window=window,
        oracle=oracle,
        rng=rng,
    )
    accountant = WEventAccountant(
        n_users=dataset.n_users,
        epsilon=epsilon,
        window=window,
        enforce=enforce_privacy,
    )
    collector = Collector(
        dataset=dataset, oracle=oracle, accountant=accountant, rng=rng, fast=fast
    )

    releases = np.empty((steps, dataset.domain_size), dtype=np.float64)
    true_freqs = np.empty((steps, dataset.domain_size), dtype=np.float64)
    records = []
    for t in range(steps):
        ctx = TimestepContext(collector, t)
        record = mechanism.step(ctx)
        if record.t != t:
            raise InvalidParameterError(
                f"{mechanism.name} returned record for t={record.t} at t={t}"
            )
        releases[t] = postprocessor(record.release)
        true_freqs[t] = dataset.true_frequencies(t)
        records.append(record)

    return SessionResult(
        mechanism=mechanism.name,
        oracle=oracle.name,
        epsilon=float(epsilon),
        window=int(window),
        n_users=dataset.n_users,
        domain_size=dataset.domain_size,
        releases=releases,
        true_frequencies=true_freqs,
        records=records,
        total_reports=collector.total_reports,
        max_window_spend=accountant.max_window_spend,
    )
