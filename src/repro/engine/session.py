"""Incremental session core: standing ``w``-event LDP stream queries.

:class:`StreamSession` is the library's execution primitive — a *standing
query* over a value stream.  It wires a dataset, a frequency oracle, a
privacy accountant and a mechanism together and advances them one
timestamp at a time:

* :meth:`StreamSession.start` initialises all per-session state;
* :meth:`StreamSession.observe` ingests one timestamp (mechanism step,
  accounting, postprocessing, trace bookkeeping);
* :meth:`StreamSession.observe_many` ingests a contiguous chunk of
  timestamps in one call — bit-identical to the equivalent ``observe()``
  loop, but with the per-step interpreter overhead amortised across the
  chunk (vectorized mechanism kernels, batched truth histograms, bulk
  trace/store bookkeeping);
* :meth:`StreamSession.finalize` closes the session and returns the
  :class:`~repro.engine.records.SessionResult` with everything the
  paper's metrics need.

Because the session owns no loop, it supports true unbounded online
ingestion (the "infinite" in LDP-IDS): callers may push timestamps
forever — e.g. the ``repro stream`` CLI feeding an
:class:`~repro.streams.online.OnlineStream` from a pipe — and disable
trace recording to keep memory constant.  Many sessions can also share a
single pass over one dataset via
:class:`~repro.engine.group.SessionGroup`.

:func:`run_stream` remains the one-call entry point: it builds a session,
observes ``horizon`` timestamps and finalizes.  Its results are
bit-identical to the historical monolithic loop — the session performs
the same operations on the same RNG in the same order.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..freq_oracles import get_oracle
from ..freq_oracles.postprocess import get_postprocessor
from ..mechanisms.base import StreamMechanism, get_mechanism
from ..query.propagation import PRIOR_VARIANCE, next_release_variance
from ..query.store import ReleaseStore
from ..rng import SeedLike, ensure_rng
from ..streams.base import StreamDataset
from .accountant import WEventAccountant
from .collector import ChunkContext, Collector, TimestepContext
from .records import STRATEGY_PUBLISH, SessionResult, StepRecord

#: Chunk size :func:`run_stream` ingests with when none is requested.
DEFAULT_CHUNK = 256


class StreamSession:
    """One incremental ``w``-event LDP streaming session.

    Parameters mirror :func:`run_stream`; in addition:

    horizon:
        Optional number of timestamps the session intends to run.  Unlike
        :func:`run_stream` this may stay ``None`` even on unbounded
        streams — an online session simply keeps observing.
    record_trace:
        Keep per-timestamp releases / truths / records for
        :meth:`finalize` (default).  Disable for unbounded online
        sessions so memory stays O(1); running counters and
        :meth:`summary` remain available.
    store:
        Optional :class:`~repro.query.ReleaseStore` the session
        publishes every (postprocessed) release into, along with its
        variance-propagation metadata — the substrate for live
        :class:`~repro.query.QueryEngine` queries.  A capacity-bounded
        store plus ``record_trace=False`` serves standing queries over
        an unbounded stream in O(capacity · d) memory.

    Lifecycle: ``start()`` → ``observe(t)`` for t = 0, 1, 2, ... →
    ``finalize()``.  Timestamps must be observed in order, exactly once.
    """

    def __init__(
        self,
        mechanism,
        dataset: StreamDataset,
        epsilon: float,
        window: int,
        *,
        horizon: Optional[int] = None,
        oracle="grr",
        seed: SeedLike = None,
        fast: bool = True,
        postprocess: str = "none",
        enforce_privacy: bool = True,
        record_trace: bool = True,
        store: Optional[ReleaseStore] = None,
    ):
        if horizon is not None and horizon <= 0:
            raise InvalidParameterError(
                f"horizon must be positive, got {horizon}"
            )
        if store is not None and store.domain_size != dataset.domain_size:
            raise InvalidParameterError(
                f"store domain_size {store.domain_size} != dataset "
                f"domain_size {dataset.domain_size}"
            )
        # Resolution order matches the historical run_stream loop exactly;
        # nothing here draws from the RNG, but keeping the order frozen
        # makes the bit-identity argument a pure refactoring one.
        self.rng = ensure_rng(seed)
        self.oracle = get_oracle(oracle)
        self.mechanism: StreamMechanism = get_mechanism(mechanism)
        self.postprocess_name = str(postprocess)
        self.postprocessor = get_postprocessor(postprocess)
        self.dataset = dataset
        self.epsilon = float(epsilon)
        self.window = int(window)
        self.horizon = None if horizon is None else int(horizon)
        self.fast = bool(fast)
        self.enforce_privacy = bool(enforce_privacy)
        self.record_trace = bool(record_trace)
        self.store = store
        self._release_variance = PRIOR_VARIANCE

        self.accountant: Optional[WEventAccountant] = None
        self.collector: Optional[Collector] = None
        self._releases: list = []
        self._true_frequencies: list = []
        self._records: list = []
        self._next_t = 0
        self._publications = 0
        self._started = False
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def steps_observed(self) -> int:
        """Number of timestamps ingested so far."""
        return self._next_t

    @property
    def publication_count(self) -> int:
        """Fresh publications so far (running counter, trace-free)."""
        return self._publications

    @property
    def total_reports(self) -> int:
        """LDP reports collected so far."""
        return 0 if self.collector is None else self.collector.total_reports

    @property
    def max_window_spend(self) -> float:
        """Largest per-user window spend the accountant has observed."""
        return 0.0 if self.accountant is None else self.accountant.max_window_spend

    # ------------------------------------------------------------------
    def attach_store(self, capacity: Optional[int] = None) -> ReleaseStore:
        """Create, attach and return a release store for this session.

        Must run before the first :meth:`observe` so the store sees the
        whole stream (ring eviction then bounds what it *retains*, not
        what it saw).  ``capacity=None`` retains the full history.
        """
        if self.store is not None:
            raise InvalidParameterError("session already has a store")
        if self._next_t:
            raise InvalidParameterError(
                "attach_store() must run before the first observe()"
            )
        self.store = ReleaseStore(self.dataset.domain_size, capacity=capacity)
        return self.store

    def start(self) -> "StreamSession":
        """Initialise mechanism, accountant and collector state."""
        if self._started:
            raise InvalidParameterError("session already started")
        self.mechanism.setup(
            n_users=self.dataset.n_users,
            domain_size=self.dataset.domain_size,
            epsilon=self.epsilon,
            window=self.window,
            oracle=self.oracle,
            rng=self.rng,
        )
        self.accountant = WEventAccountant(
            n_users=self.dataset.n_users,
            epsilon=self.epsilon,
            window=self.window,
            enforce=self.enforce_privacy,
        )
        self.collector = Collector(
            dataset=self.dataset,
            oracle=self.oracle,
            accountant=self.accountant,
            rng=self.rng,
            fast=self.fast,
        )
        self._started = True
        return self

    def observe(
        self,
        t: Optional[int] = None,
        true_frequencies: Optional[np.ndarray] = None,
    ) -> StepRecord:
        """Ingest one timestamp and return the mechanism's step record.

        ``t`` defaults to the next expected timestamp; passing it
        explicitly asserts in-order ingestion.  ``true_frequencies``
        lets a shared-pass driver hand over the truth histogram it
        already computed for this timestamp (it must equal
        ``dataset.true_frequencies(t)``); otherwise the session asks the
        dataset itself.
        """
        if not self._started:
            raise InvalidParameterError("call start() before observe()")
        if self._finalized:
            raise InvalidParameterError("session already finalized")
        if t is None:
            t = self._next_t
        elif t != self._next_t:
            raise InvalidParameterError(
                f"timestamps must be observed in order: expected "
                f"t={self._next_t}, got t={t}"
            )
        if self.horizon is not None and t >= self.horizon:
            raise InvalidParameterError(
                f"timestamp {t} beyond session horizon {self.horizon}"
            )
        ctx = TimestepContext(self.collector, t)
        record = self.mechanism.step(ctx)
        if record.t != t:
            raise InvalidParameterError(
                f"{self.mechanism.name} returned record for t={record.t} "
                f"at t={t}"
            )
        if record.strategy == STRATEGY_PUBLISH:
            self._publications += 1
        if self.record_trace or self.store is not None:
            # Postprocessing and the truth histogram only feed the trace
            # and the query store; trace-free, store-free online sessions
            # skip both so each step is O(1) beyond the mechanism's work.
            release = np.asarray(
                self.postprocessor(record.release), dtype=np.float64
            )
        if self.store is not None:
            self._release_variance = next_release_variance(
                self.oracle,
                record.strategy,
                record.publication_epsilon,
                record.publication_users,
                self.dataset.domain_size,
                self._release_variance,
            )
            self.store.append(
                t, release, self._release_variance, record.strategy
            )
        if self.record_trace:
            if true_frequencies is None:
                true_frequencies = self.dataset.true_frequencies(t)
            self._releases.append(release.copy())
            self._true_frequencies.append(
                np.asarray(true_frequencies, dtype=np.float64).copy()
            )
            self._records.append(record)
        self._next_t = t + 1
        return record

    def observe_many(
        self,
        t0: Optional[int] = None,
        n: Optional[int] = None,
        *,
        true_frequencies: Optional[np.ndarray] = None,
    ) -> list:
        """Ingest ``n`` consecutive timestamps starting at ``t0``.

        Bulk counterpart of :meth:`observe`, and **bit-identical** to
        calling it in a loop: the chunk performs the same RNG draws in
        the same order, so releases, records, counters and any attached
        store end up byte-for-byte equal.  The non-adaptive kernels
        batch their collection rounds through the oracles'
        order-preserving run samplers; the adaptive budget kernels
        (LBD/LBA) speculatively batch M1 rounds and rewind/replay the
        generator around publications; the adaptive population kernels
        (LPD/LPA) run a streamlined per-round loop (their pool draws
        interleave with oracle draws).  What changes is the
        per-timestamp interpreter overhead: truth histograms, collection
        rounds and trace/store bookkeeping are amortised across the
        chunk (see ``benchmarks/bench_ingest_throughput.py`` and
        ``docs/ARCHITECTURE.md``, "Bulk ingestion").

        ``t0`` defaults to the next expected timestamp (and must equal
        it when given).  ``n`` defaults to the rest of the session's
        horizon; a chunk reaching beyond the horizon is clamped to it,
        so callers may loop ``observe_many(n=chunk)`` without sizing the
        final partial chunk — but ingesting *at* the horizon raises,
        exactly like :meth:`observe`.  ``true_frequencies`` optionally
        hands over the ``(n, d)`` truth block a shared-pass driver
        already computed (row ``i`` must equal
        ``dataset.true_frequencies(t0 + i)``).

        Returns the list of per-timestamp
        :class:`~repro.engine.records.StepRecord`\\ s.
        """
        if not self._started:
            raise InvalidParameterError("call start() before observe_many()")
        if self._finalized:
            raise InvalidParameterError("session already finalized")
        if t0 is None:
            t0 = self._next_t
        elif t0 != self._next_t:
            raise InvalidParameterError(
                f"timestamps must be observed in order: expected "
                f"t={self._next_t}, got t0={t0}"
            )
        # The tightest horizon in play: the session's own, else the
        # dataset's (unbounded online sessions have neither).
        limit = self.horizon
        if limit is None:
            limit = self.dataset.horizon
        if limit is not None and t0 >= limit:
            raise InvalidParameterError(
                f"timestamp {t0} beyond session horizon {limit}"
            )
        if n is None:
            if limit is None:
                raise InvalidParameterError(
                    "a chunk size n is required on sessions without a "
                    "horizon"
                )
            n = limit - t0
        n = int(n)
        if n < 0:
            raise InvalidParameterError(
                f"chunk size must be non-negative, got {n}"
            )
        if limit is not None:
            n = min(n, limit - t0)
        if n == 0:
            return []
        truth: Optional[np.ndarray] = None
        if true_frequencies is not None:
            truth = np.asarray(true_frequencies, dtype=np.float64)
            if truth.shape != (n, self.dataset.domain_size):
                raise InvalidParameterError(
                    f"true_frequencies must have shape "
                    f"({n}, {self.dataset.domain_size}), got {truth.shape}"
                )
        if not self.mechanism.chunk_kernel:
            return self._observe_many_fallback(t0, n, truth)
        return self._observe_many_kernel(t0, n, truth)

    def _observe_many_fallback(
        self, t0: int, n: int, truth: Optional[np.ndarray]
    ) -> list:
        """Per-step chunk ingestion: the literal ``observe()`` loop.

        Used for mechanisms without a chunk kernel — e.g. the LPF
        extension and third-party subclasses that have not opted in
        (all seven core mechanisms have kernels).  Still amortises the
        truth histograms over the chunk on random-access datasets.
        """
        if (
            truth is None
            and self.record_trace
            and getattr(self.dataset, "random_access", False)
        ):
            truth = self.dataset.true_frequencies_range(t0, t0 + n)
        return [
            self.observe(
                t0 + i,
                true_frequencies=None if truth is None else truth[i],
            )
            for i in range(n)
        ]

    def _observe_many_kernel(
        self,
        t0: int,
        n: int,
        truth: Optional[np.ndarray],
        ctx: Optional[ChunkContext] = None,
    ) -> list:
        """Vectorized chunk ingestion through the mechanism's kernel.

        All stream access goes through the chunk context's prefetched
        value block, which is what makes this path legal on sequential
        generative streams too (the block consumes the span; nothing
        re-reads it per step afterwards).  The SoA scheduler passes a
        pre-built ``ctx`` whose block/histogram caches are already warm
        with the chunk's shared arrays (:mod:`repro.engine.soa`).
        """
        if ctx is None:
            ctx = ChunkContext(self.collector, t0, n)
        records = self.mechanism.step_many(ctx)
        if self.record_trace and truth is None:
            # Same integers as per-step np.bincount(values(t)), divided
            # the same way — rows are bit-identical to
            # dataset.true_frequencies(t).
            truth = ctx.counts().astype(np.float64) / self.dataset.n_users
        self._absorb_records(t0, n, truth, records)
        return records

    def ingest_prepared(
        self, ctx: ChunkContext, truth: Optional[np.ndarray]
    ) -> list:
        """Drive one chunk through a caller-built :class:`ChunkContext`.

        The SoA scheduler's per-session entry: the context's value-block
        and histogram caches are pre-warmed with the chunk's shared
        arrays, so this session reads nothing from the dataset itself.
        The context must bind this session's collector and cover exactly
        ``[next_t, next_t + length)`` within the horizon.
        """
        if not self._started:
            raise InvalidParameterError("call start() before ingest")
        if self._finalized:
            raise InvalidParameterError("session already finalized")
        if ctx._collector is not self.collector:
            raise InvalidParameterError(
                "prepared chunk context binds a different session"
            )
        if ctx.t0 != self._next_t:
            raise InvalidParameterError(
                f"timestamps must be observed in order: expected "
                f"t={self._next_t}, got t0={ctx.t0}"
            )
        if self.horizon is not None and ctx.t0 + ctx.length > self.horizon:
            raise InvalidParameterError(
                f"chunk [{ctx.t0}, {ctx.t0 + ctx.length}) reaches beyond "
                f"session horizon {self.horizon}"
            )
        return self._observe_many_kernel(ctx.t0, ctx.length, truth, ctx=ctx)

    def _absorb_records(
        self,
        t0: int,
        n: int,
        truth: Optional[np.ndarray],
        records: list,
    ) -> None:
        """Post-process, store and trace a chunk's step records.

        Shared absorb tail of every bulk path — the in-session kernel,
        and the SoA scheduler's generic and fused bucket drives — so
        publication counting, post-processing, variance propagation and
        trace bookkeeping stay byte-identical across them.
        """
        if len(records) != n:
            raise InvalidParameterError(
                f"{self.mechanism.name} returned {len(records)} records "
                f"for a chunk of {n}"
            )
        need_release = self.record_trace or self.store is not None
        for i, record in enumerate(records):
            if record.t != t0 + i:
                raise InvalidParameterError(
                    f"{self.mechanism.name} returned record for "
                    f"t={record.t} at t={t0 + i}"
                )
            if record.strategy == STRATEGY_PUBLISH:
                self._publications += 1
            if need_release:
                release = np.asarray(
                    self.postprocessor(record.release), dtype=np.float64
                )
            if self.store is not None:
                self._release_variance = next_release_variance(
                    self.oracle,
                    record.strategy,
                    record.publication_epsilon,
                    record.publication_users,
                    self.dataset.domain_size,
                    self._release_variance,
                )
                self.store.append(
                    t0 + i, release, self._release_variance, record.strategy
                )
            if self.record_trace:
                self._releases.append(release.copy())
                self._true_frequencies.append(truth[i].copy())
                self._records.append(record)
        self._next_t = t0 + n

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe checkpoint payload of the live session.

        Covers everything needed to continue bit-identically: mechanism
        state, collector statistics, accountant ledger, bit-generator
        state, attached release store and the recorded trace.  Feed the
        result to :meth:`restore` (or wrap it in
        :class:`repro.persist.Checkpoint` for atomic file round trips).
        Requires a started, unfinalized session.
        """
        from ..persist.checkpoint import capture_session

        return capture_session(self)

    @classmethod
    def restore(
        cls, payload: dict, dataset: StreamDataset, *, position: bool = True
    ) -> "StreamSession":
        """Rebuild a live session from a :meth:`snapshot` payload.

        ``dataset`` re-attaches the input stream (streams are not part
        of a checkpoint); it must match the checkpointed population and
        domain.  ``position=True`` also seeks it so the next
        :meth:`observe` reads the right timestamp — see
        :func:`repro.persist.checkpoint.position_dataset`.
        """
        from ..persist.checkpoint import restore_session

        return restore_session(payload, dataset, position=position)

    def finalize(self) -> SessionResult:
        """Close the session and assemble its :class:`SessionResult`.

        Requires ``record_trace=True``; online sessions that disabled
        the trace should read :meth:`summary` instead.
        """
        if not self._started:
            raise InvalidParameterError("call start() before finalize()")
        if self._finalized:
            raise InvalidParameterError("session already finalized")
        if not self.record_trace:
            raise InvalidParameterError(
                "finalize() needs record_trace=True; use summary() for "
                "trace-free online sessions"
            )
        self._finalized = True
        d = self.dataset.domain_size
        if self._releases:
            releases = np.stack(self._releases)
            true_freqs = np.stack(self._true_frequencies)
        else:
            releases = np.empty((0, d), dtype=np.float64)
            true_freqs = np.empty((0, d), dtype=np.float64)
        return SessionResult(
            mechanism=self.mechanism.name,
            oracle=self.oracle.name,
            epsilon=self.epsilon,
            window=self.window,
            n_users=self.dataset.n_users,
            domain_size=d,
            releases=releases,
            true_frequencies=true_freqs,
            records=self._records,
            total_reports=self.collector.total_reports,
            max_window_spend=self.accountant.max_window_spend,
        )

    def summary(self) -> dict:
        """Running counters, available with or without a trace."""
        steps = self.steps_observed
        return {
            "mechanism": self.mechanism.name,
            "oracle": self.oracle.name,
            "epsilon": self.epsilon,
            "window": self.window,
            "steps": steps,
            "publications": self._publications,
            "publication_rate": self._publications / max(1, steps),
            "total_reports": self.total_reports,
            "cfpu": (
                self.total_reports / (self.dataset.n_users * steps)
                if steps
                else 0.0
            ),
            "max_window_spend": self.max_window_spend,
        }


def run_stream(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    horizon: Optional[int] = None,
    oracle="grr",
    seed: SeedLike = None,
    fast: bool = True,
    postprocess: str = "none",
    enforce_privacy: bool = True,
    chunk: Optional[int] = None,
) -> SessionResult:
    """Run one ``w``-event LDP streaming session start-to-finish.

    Parameters
    ----------
    mechanism:
        A mechanism name (``"LBU"``, ..., ``"LPA"``), class, or instance.
    dataset:
        The stream to collect; its users are the reporting population.
    epsilon / window:
        The ``w``-event LDP parameters (total window budget and ``w``).
    horizon:
        Number of timestamps to run; defaults to the dataset's horizon
        (required for unbounded streams — drive a :class:`StreamSession`
        directly for open-ended online ingestion).
    oracle:
        Frequency oracle name or instance (default GRR, as in the paper).
    seed:
        Master seed; mechanism randomness and perturbation randomness are
        derived from it.
    fast:
        Use count-level exact samplers instead of per-user perturbation.
    postprocess:
        Consistency step applied to each release for the *stored* trace
        (``none`` by default, matching the paper's raw estimates).
    enforce_privacy:
        Arm the accountant (raise on any ``w``-event violation).  Always
        leave on except when deliberately probing broken mechanisms.
    chunk:
        Timestamps ingested per :meth:`StreamSession.observe_many` call
        (default :data:`DEFAULT_CHUNK`).  Results are bit-identical at
        any chunk size — including ``chunk=1``, the historical per-step
        loop — so this only trades peak memory against per-step
        overhead.

    Returns
    -------
    SessionResult
        Releases, true frequencies, per-step records and counters.
    """
    steps = horizon if horizon is not None else dataset.horizon
    if steps is None:
        raise InvalidParameterError(
            "horizon is required when running an unbounded stream"
        )
    if steps <= 0:
        raise InvalidParameterError(f"horizon must be positive, got {steps}")
    if chunk is None:
        chunk = DEFAULT_CHUNK
    elif chunk <= 0:
        raise InvalidParameterError(f"chunk must be positive, got {chunk}")
    session = StreamSession(
        mechanism,
        dataset,
        epsilon,
        window,
        horizon=steps,
        oracle=oracle,
        seed=seed,
        fast=fast,
        postprocess=postprocess,
        enforce_privacy=enforce_privacy,
    )
    session.start()
    for t0 in range(0, steps, chunk):
        session.observe_many(t0, min(chunk, steps - t0))
    return session.finalize()
