"""Structure-of-arrays execution for :class:`~repro.engine.group.SessionGroup`.

The legacy shared pass already amortises the *data* work (one stream
read, one truth histogram per timestamp), but still drives every session
through its own chunk kernel: S sessions over the same chunk perform S
histogram passes, S oracle setups and S rounds of per-session Python
dispatch.  The SoA scheduler turns the member sessions into the *inner*
axis instead:

* one ``values_range`` fetch and one
  :func:`~repro.engine.kernels_fast.block_histograms` pass per chunk,
  shared by every session (the per-session
  :class:`~repro.engine.collector.ChunkContext` caches are pre-warmed
  with the shared arrays);
* sessions whose chunk is one all-user FO round per timestamp at a fixed
  budget (:meth:`~repro.mechanisms.base.StreamMechanism.
  uniform_run_epsilon`) are **bucketed** by (mechanism family, oracle,
  postprocess) and driven through a single stacked oracle call
  (:meth:`~repro.freq_oracles.base.FrequencyOracle.
  sample_aggregate_run_stacked`) that hoists the epsilon-independent
  setup — e.g. OUE/SUE's ``(B, 2, d)`` trial tensor — once per bucket
  instead of once per session;
* everything else ingests through
  :meth:`~repro.engine.session.StreamSession.ingest_prepared` with the
  shared block/histograms injected.

Bit-identity argument
---------------------
Every session's output is bit-identical to its solo ``run_stream``:

* **RNG privacy.** Each session's draws come exclusively from its own
  generator.  The stacked samplers take one generator *per layer* and
  replay, for layer ``s``, exactly the generator-call sequence of that
  session's solo run sampler (the stacked trial/probability tensors are
  shared only where they are epsilon-independent *inputs*, never where
  randomness is drawn).  Stacking therefore changes which Python frame
  issues the calls, not the calls themselves.
* **Shared inputs are exact.** The value block is the same array a solo
  pass would read; histograms are exact integer counts; the shared truth
  block performs the same ``counts / n_users`` division.
* **Ledger order.** The fused path charges a session's whole span
  through :meth:`~repro.engine.accountant.PrivacyAccountant.charge_span`
  — the same per-timestamp charges in the same order as the chunk
  kernel's ``charge_many``.  The one observable deviation matches the
  one already documented on ``collect_run``: a privacy violation raises
  before the bucket's draws rather than mid-span.
* **Session order is immaterial.** Buckets regroup sessions within a
  chunk, but no state is shared across sessions except the read-only
  input arrays, so visit order cannot affect any session's bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .collector import ChunkContext
from .kernels_fast import block_histograms

__all__ = ["SoAScheduler", "soa_supported"]


def soa_supported(sessions, dataset) -> bool:
    """Whether the SoA scheduler can drive this group configuration.

    Random-access datasets always qualify (sessions without a chunk
    kernel fall back to per-step ingestion, which may re-read the
    dataset).  Sequential (generative/online) streams qualify only when
    *every* session's mechanism has a chunk kernel, because the shared
    value block consumes the span — a per-step fallback would re-read
    timestamps that no longer exist.
    """
    if not sessions:
        return False
    if getattr(dataset, "random_access", False):
        return True
    return all(s.mechanism.chunk_kernel for s in sessions)


class SoAScheduler:
    """Chunked structure-of-arrays driver for one :class:`SessionGroup`.

    Stateless: all pass state (cursor, sessions) lives on the group, so
    a mid-pass :meth:`~repro.engine.group.SessionGroup.snapshot` /
    ``restore`` round trip resumes under a freshly built scheduler with
    no extra bookkeeping.
    """

    def __init__(self, group):
        self._group = group

    # ------------------------------------------------------------------
    def advance(self, t0: int, t1: int) -> None:
        """Ingest timestamps ``[t0, t1)`` into every member session."""
        group = self._group
        dataset = group.dataset
        n_users = dataset.n_users
        d = dataset.domain_size
        for b0 in range(t0, t1, group.truth_chunk):
            b1 = min(b0 + group.truth_chunk, t1)
            live = [s for s in group.sessions if s.horizon > b0]
            if not live:
                continue
            # One read, one counting pass, one truth division per chunk.
            block = dataset.values_range(b0, b1)
            counts = block_histograms(block, d)
            truth = counts.astype(np.float64) / n_users
            self._drive_chunk(live, b0, b1, block, counts, truth)

    def _drive_chunk(
        self,
        live: List,
        b0: int,
        b1: int,
        block: np.ndarray,
        counts: np.ndarray,
        truth: np.ndarray,
    ) -> None:
        length = b1 - b0
        fused: Dict[Tuple, List] = {}
        generic: List[Tuple] = []  # (session, span)
        for s in live:
            span = min(b1, s.horizon) - b0
            if not s.mechanism.chunk_kernel:
                # Per-step fallback (e.g. the LPF extension): only legal
                # on random-access datasets — soa_supported() guarantees
                # it.  Still shares the chunk's truth block.
                s.observe_many(b0, span, true_frequencies=truth[:span])
            elif (
                span == length
                and s.fast
                and s.mechanism.uniform_run_epsilon() is not None
            ):
                key = (
                    type(s.mechanism),
                    s.oracle.name,
                    s.postprocess_name,
                )
                fused.setdefault(key, []).append(s)
            else:
                generic.append((s, span))
        for bucket in fused.values():
            if len(bucket) < 2:
                # A stacked call over one layer hoists nothing; the
                # ordinary prepared kernel is the cheaper identical path.
                generic.extend((s, length) for s in bucket)
                continue
            self._drive_fused(bucket, b0, length, counts, truth)
        for s, span in generic:
            whole = span == length
            ctx = ChunkContext(
                s.collector,
                b0,
                span,
                values_block=block if whole else block[:span],
                counts=counts if whole else counts[:span],
            )
            s.ingest_prepared(ctx, truth if whole else truth[:span])

    def _drive_fused(
        self,
        bucket: List,
        t0: int,
        length: int,
        counts: np.ndarray,
        truth: np.ndarray,
    ) -> None:
        """One stacked oracle call for a whole bucket of sessions.

        Replays, per session, exactly what its chunk kernel's
        ``collect_run`` over the full span would do: charge the span,
        meter the reports, draw through the session's private generator
        (layer ``s`` of the stacked sampler), then absorb the records.
        """
        # Same integers as Collector.collect_run's per-session reduction
        # of the identical shared counts.
        n_reports = counts.sum(axis=1)
        reports_total = int(n_reports.sum())
        epsilons = [s.mechanism.uniform_run_epsilon() for s in bucket]
        for s, eps in zip(bucket, epsilons):
            accountant = s.collector.accountant
            if accountant is not None:
                accountant.charge_span(t0, length, eps)
            s.collector.total_reports += reports_total
        oracle = bucket[0].oracle
        stacked = oracle.sample_aggregate_run_stacked(
            counts, epsilons, [s.collector.rng for s in bucket]
        )
        for k, s in enumerate(bucket):
            records = s.mechanism.absorb_run(t0, stacked[k], n_reports)
            s._absorb_records(t0, length, truth, records)
