"""Exception hierarchy for the LDP-IDS reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter is outside its legal range (e.g. a non-positive budget)."""


class PrivacyViolationError(ReproError):
    """A mechanism attempted to exceed its ``w``-event LDP budget.

    Raised by :class:`repro.engine.accountant.WEventAccountant` the moment a
    collection round would push some user's sliding-window privacy spend
    above the total budget epsilon.  This error firing in a test means the
    mechanism under test is *not* ``w``-event LDP.
    """


class PopulationExhaustedError(ReproError):
    """A population-division mechanism asked for more users than available."""


class StreamAccessError(ReproError):
    """A stream was accessed out of order or outside its valid horizon."""


class CheckpointError(ReproError):
    """A checkpoint payload is missing, corrupt, or incompatible.

    Raised by :mod:`repro.persist` when a serialized session cannot be
    decoded: unknown format version, missing fields, mismatched session
    configuration (e.g. restoring onto a dataset with a different
    population), or a bit-generator the running NumPy does not provide.
    """


class WALError(CheckpointError):
    """A write-ahead release log is internally inconsistent.

    Raised when replaying a WAL whose *committed* prefix is malformed —
    undecodable JSON before the last commit marker, out-of-order
    timestamps, or rows that disagree with their commit watermark.  An
    uncommitted torn tail (the expected crash artifact) is *not* an
    error; replay simply stops at the last commit marker.
    """


class ServingError(ReproError):
    """The sharded serving tier lost a shard or got an inconsistent reply.

    Raised by :mod:`repro.serving` when a worker process dies, reports a
    failure, or answers out of protocol.  Ingestion cannot continue past
    a lost shard (the merged store would silently drop a sub-population),
    so the server treats this as fatal.
    """


class EvictedSpanError(ReproError):
    """A query touched timestamps already evicted from a bounded
    :class:`repro.query.ReleaseStore` ring buffer.

    Carries ``oldest`` (the oldest timestamp still retained, or ``None``
    for an empty store) so callers can clamp and retry.
    """

    def __init__(self, message: str, oldest=None):
        super().__init__(message)
        self.oldest = oldest
