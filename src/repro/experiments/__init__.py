"""Experiment harness regenerating every figure and table of Section 7.

* :mod:`~repro.experiments.datasets` — the six evaluation datasets at
  smoke/default/paper sizes;
* :mod:`~repro.experiments.runner` — grid evaluation with all metrics;
* :mod:`~repro.experiments.parallel` — the parallel experiment engine:
  self-describing :class:`CellSpec` jobs over worker processes, with
  coordinate-derived seeding (bit-identical at any worker count);
* :mod:`~repro.experiments.figures` — series generators for Figs. 4-8;
* :mod:`~repro.experiments.tables` — Table 2 (+ the paper's reported values);
* :mod:`~repro.experiments.reporting` — text rendering of the series.
"""

from .campaign import ARTIFACTS, run_campaign
from .datasets import (
    ALL_DATASETS,
    REALWORLD_DATASETS,
    SYNTHETIC_DATASETS,
    dataset_names,
    dataset_size,
    make_dataset,
)
from .figures import (
    FIG7_METHODS,
    fig4_utility_vs_epsilon,
    fig5_utility_vs_window,
    fig6_fluctuation,
    fig6_population,
    fig7_event_monitoring,
    fig8_communication,
)
from .reporting import (
    format_figure,
    format_roc_summary,
    format_series_table,
    format_table2,
)
from .parallel import (
    CellSpec,
    DatasetSpec,
    coalesce_specs,
    evaluate_parallel,
    execute_cells,
    grid_specs,
    merge_grid,
    parallel_sweep,
    run_cell,
    run_shared_pass,
)
from .runner import (
    CellResult,
    evaluate,
    evaluate_repeat,
    merge_repeat_cells,
    run_single,
    sweep,
)
from .tables import PAPER_TABLE2, TABLE2_DATASETS, TABLE2_SETTINGS, table2_cfpu

__all__ = [
    "run_campaign",
    "ARTIFACTS",
    "ALL_DATASETS",
    "SYNTHETIC_DATASETS",
    "REALWORLD_DATASETS",
    "dataset_names",
    "dataset_size",
    "make_dataset",
    "CellResult",
    "CellSpec",
    "DatasetSpec",
    "coalesce_specs",
    "run_shared_pass",
    "evaluate",
    "evaluate_parallel",
    "evaluate_repeat",
    "execute_cells",
    "grid_specs",
    "merge_grid",
    "merge_repeat_cells",
    "parallel_sweep",
    "run_cell",
    "run_single",
    "sweep",
    "fig4_utility_vs_epsilon",
    "fig5_utility_vs_window",
    "fig6_population",
    "fig6_fluctuation",
    "fig7_event_monitoring",
    "fig8_communication",
    "FIG7_METHODS",
    "table2_cfpu",
    "TABLE2_DATASETS",
    "TABLE2_SETTINGS",
    "PAPER_TABLE2",
    "format_series_table",
    "format_figure",
    "format_roc_summary",
    "format_table2",
]
