"""Full evaluation campaign: regenerate every figure and table in one call.

:func:`run_campaign` executes the complete Section-7 evaluation at a chosen
size tier, writes one text artifact per figure/table (plus CSV series for
external plotting) into an output directory, and returns the in-memory
results.  The CLI exposes it as ``python -m repro campaign``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Union

from ..io import series_to_csv
from ..rng import SeedLike
from .figures import (
    fig4_utility_vs_epsilon,
    fig5_utility_vs_window,
    fig6_fluctuation,
    fig6_population,
    fig7_event_monitoring,
    fig8_communication,
)
from .reporting import (
    format_figure,
    format_roc_summary,
    format_table2,
)
from .tables import PAPER_TABLE2, table2_cfpu

PathLike = Union[str, Path]

#: Campaign artifact names, in run order.
ARTIFACTS = (
    "fig4",
    "fig5",
    "fig6_population",
    "fig6_fluctuation",
    "fig7",
    "fig8",
    "table2",
)


def run_campaign(
    output_dir: Optional[PathLike] = None,
    size: str = "smoke",
    repeats: int = 1,
    seed: SeedLike = 0,
    verbose: bool = True,
    jobs: Optional[int] = 1,
) -> Dict[str, object]:
    """Run the full evaluation; optionally write artifacts to ``output_dir``.

    Returns a dict with one entry per artifact name in :data:`ARTIFACTS`
    holding the raw series, plus ``"elapsed_seconds"``.  ``jobs=N`` fans
    every figure/table grid out over N worker processes (``None`` uses
    all CPUs) without changing any result — see
    :mod:`repro.experiments.parallel` for the determinism contract.
    """
    out = Path(output_dir) if output_dir is not None else None
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)

    def emit(name: str, text: str, series=None) -> None:
        if verbose:
            print(f"== {name} ==")
            print(text)
            print()
        if out is not None:
            (out / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
            if series is not None:
                series_to_csv(series, out / f"{name}.csv")

    started = time.time()
    results: Dict[str, object] = {}

    results["fig4"] = fig4_utility_vs_epsilon(
        size=size, repeats=repeats, seed=seed, jobs=jobs
    )
    emit("fig4", format_figure(results["fig4"], x_label="epsilon"), results["fig4"])

    results["fig5"] = fig5_utility_vs_window(
        size=size, repeats=repeats, seed=seed, jobs=jobs
    )
    emit("fig5", format_figure(results["fig5"], x_label="w"), results["fig5"])

    # fig6/fig8 take explicit workload parameters rather than a size tier;
    # shrink them for smoke campaigns so CI stays fast.
    small = size == "smoke"
    fig6_kwargs = (
        {"populations": (2_000, 4_000, 8_000), "horizon": 60} if small else {}
    )
    fig6_fluct_kwargs = {"n_users": 6_000, "horizon": 60} if small else {}
    fig8_kwargs = (
        {"populations": (2_000, 4_000), "n_users": 6_000, "horizon": 60}
        if small
        else {}
    )

    results["fig6_population"] = fig6_population(
        repeats=repeats, seed=seed, jobs=jobs, **fig6_kwargs
    )
    emit(
        "fig6_population",
        format_figure(results["fig6_population"], x_label="N"),
        results["fig6_population"],
    )

    results["fig6_fluctuation"] = fig6_fluctuation(
        repeats=repeats, seed=seed, jobs=jobs, **fig6_fluct_kwargs
    )
    emit(
        "fig6_fluctuation",
        format_figure(results["fig6_fluctuation"], x_label="fluctuation"),
        results["fig6_fluctuation"],
    )

    results["fig7"] = fig7_event_monitoring(size=size, seed=seed, jobs=jobs)
    emit("fig7", format_roc_summary(results["fig7"]))

    results["fig8"] = fig8_communication(seed=seed, jobs=jobs, **fig8_kwargs)
    emit("fig8", format_figure(results["fig8"], x_label="x"), results["fig8"])

    results["table2"] = table2_cfpu(size=size, seed=seed, jobs=jobs)
    emit("table2", format_table2(results["table2"], PAPER_TABLE2))

    results["elapsed_seconds"] = time.time() - started
    if verbose:
        print(f"campaign finished in {results['elapsed_seconds']:.1f}s")
    return results
