"""Registry of the paper's six evaluation datasets (Section 7.1).

Every dataset is available at three sizes:

* ``smoke`` — seconds-fast sizes for CI and pytest-benchmark runs;
* ``default`` — laptop-scale sizes that preserve every qualitative result;
* ``paper`` — the exact N/T the paper reports (minutes per grid point).

The three real-world datasets are generative simulators (see
:mod:`repro.streams.simulators` and DESIGN.md Section 5 for the
substitution rationale).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..exceptions import InvalidParameterError
from ..rng import SeedLike
from ..streams import (
    FoursquareSimulator,
    StreamDataset,
    TaobaoSimulator,
    TaxiSimulator,
    make_lns,
    make_log,
    make_sin,
)

#: Dataset names in the paper's plotting order.
SYNTHETIC_DATASETS = ("LNS", "Sin", "Log")
REALWORLD_DATASETS = ("Taxi", "Foursquare", "Taobao")
ALL_DATASETS = SYNTHETIC_DATASETS + REALWORLD_DATASETS

#: (n_users, horizon) per size tier.  ``paper`` matches Section 7.1.
_SIZES: Dict[str, Dict[str, Tuple[int, int]]] = {
    "LNS": {"smoke": (4_000, 60), "default": (20_000, 200), "paper": (200_000, 800)},
    "Sin": {"smoke": (4_000, 60), "default": (20_000, 200), "paper": (200_000, 800)},
    "Log": {"smoke": (4_000, 60), "default": (20_000, 200), "paper": (200_000, 800)},
    "Taxi": {"smoke": (4_000, 60), "default": (10_357, 200), "paper": (10_357, 886)},
    "Foursquare": {
        "smoke": (4_000, 60),
        "default": (33_143, 150),
        "paper": (265_149, 447),
    },
    "Taobao": {
        "smoke": (4_000, 60),
        "default": (31_973, 150),
        "paper": (1_023_154, 432),
    },
}


def dataset_names() -> tuple[str, ...]:
    """All registered dataset names in paper order."""
    return ALL_DATASETS


def dataset_size(name: str, size: str = "default") -> Tuple[int, int]:
    """The (n_users, horizon) pair used for ``name`` at a size tier."""
    try:
        return _SIZES[name][size]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset/size {name!r}/{size!r}; datasets: {ALL_DATASETS}, "
            "sizes: smoke/default/paper"
        ) from None


def make_dataset(
    name: str,
    size: str = "default",
    n_users: Optional[int] = None,
    horizon: Optional[int] = None,
    seed: SeedLike = None,
    **kwargs,
) -> StreamDataset:
    """Instantiate a paper dataset by name.

    ``n_users`` / ``horizon`` override the tier defaults; extra ``kwargs``
    reach the underlying generator (e.g. ``q_std`` for LNS, ``b`` for Sin).
    """
    default_n, default_t = dataset_size(name, size)
    n = n_users if n_users is not None else default_n
    t = horizon if horizon is not None else default_t
    if name == "LNS":
        return make_lns(n_users=n, horizon=t, seed=seed, **kwargs)
    if name == "Sin":
        return make_sin(n_users=n, horizon=t, seed=seed, **kwargs)
    if name == "Log":
        return make_log(n_users=n, horizon=t, seed=seed, **kwargs)
    if name == "Taxi":
        return TaxiSimulator(n_users=n, horizon=t, seed=seed, **kwargs)
    if name == "Foursquare":
        return FoursquareSimulator(n_users=n, horizon=t, scale=1, seed=seed, **kwargs)
    if name == "Taobao":
        return TaobaoSimulator(n_users=n, horizon=t, scale=1, seed=seed, **kwargs)
    raise InvalidParameterError(
        f"unknown dataset {name!r}; available: {ALL_DATASETS}"
    )
