"""Series generators for every figure in Section 7.

Each ``figN_*`` function regenerates the data series behind the paper's
figure — the same methods, the same x-axes, the same metric — and returns a
plain nested dict that :mod:`repro.experiments.reporting` can print.  The
paper's exact parameter values are the defaults; sizes default to the
``default`` tier of :mod:`repro.experiments.datasets` (scaled, shape
preserving) and can be raised to ``paper``.

Figure index (see DESIGN.md for the full mapping):

* Fig. 4 — MRE vs epsilon, w = 20, 6 datasets, 7 methods;
* Fig. 5 — MRE vs window, eps = 1, 6 datasets, 7 methods;
* Fig. 6 — MRE vs population N and fluctuation (Q, b), eps = 1, w = 30;
* Fig. 7 — event-monitoring ROC curves, eps = 1, w = 50;
* Fig. 8 — CFPU vs N, Q, eps, w on LNS.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..analysis import ROCCurve, monitoring_roc
from ..mechanisms import ALL_METHODS
from ..rng import SeedLike, ensure_rng
from .datasets import ALL_DATASETS, make_dataset
from .runner import evaluate, run_single

#: Methods on the paper's Fig. 7 ROC plots.
FIG7_METHODS = ("LBA", "LSP", "LPU", "LPD", "LPA")

SeriesDict = Dict[str, Dict[str, Dict[float, float]]]


def _seed_stream(seed: SeedLike):
    rng = ensure_rng(seed)

    def next_seed() -> int:
        return int(rng.integers(0, 2**31 - 1))

    return next_seed


def fig4_utility_vs_epsilon(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = ALL_METHODS,
    epsilons: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5),
    window: int = 20,
    size: str = "default",
    repeats: int = 1,
    seed: SeedLike = 0,
) -> SeriesDict:
    """Fig. 4: ``series[dataset][method][epsilon] = MRE``."""
    next_seed = _seed_stream(seed)
    series: SeriesDict = {}
    for name in datasets:
        dataset = make_dataset(name, size=size, seed=next_seed())
        series[name] = {}
        for method in methods:
            series[name][method] = {}
            for epsilon in epsilons:
                cell = evaluate(
                    method,
                    dataset,
                    epsilon,
                    window,
                    seed=next_seed(),
                    repeats=repeats,
                )
                series[name][method][epsilon] = cell.mre
    return series


def fig5_utility_vs_window(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = ALL_METHODS,
    windows: Sequence[int] = (10, 20, 30, 40, 50),
    epsilon: float = 1.0,
    size: str = "default",
    repeats: int = 1,
    seed: SeedLike = 0,
) -> SeriesDict:
    """Fig. 5: ``series[dataset][method][window] = MRE``."""
    next_seed = _seed_stream(seed)
    series: SeriesDict = {}
    for name in datasets:
        dataset = make_dataset(name, size=size, seed=next_seed())
        series[name] = {}
        for method in methods:
            series[name][method] = {}
            for window in windows:
                cell = evaluate(
                    method,
                    dataset,
                    epsilon,
                    window,
                    seed=next_seed(),
                    repeats=repeats,
                )
                series[name][method][window] = cell.mre
    return series


def fig6_population(
    populations: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    datasets: Sequence[str] = ("LNS", "Sin"),
    methods: Sequence[str] = ALL_METHODS,
    epsilon: float = 1.0,
    window: int = 30,
    horizon: int = 200,
    repeats: int = 1,
    seed: SeedLike = 0,
) -> SeriesDict:
    """Fig. 6(a,b): MRE vs population N (frequency process held fixed).

    The paper's x-axis is {1e5, 2e5, 4e5, 8e5}; the default here is the
    same geometric ladder scaled by 10 for bench speed.
    """
    next_seed = _seed_stream(seed)
    series: SeriesDict = {}
    for name in datasets:
        process_seed = next_seed()
        series[name] = {method: {} for method in methods}
        for n_users in populations:
            dataset = make_dataset(
                name, n_users=n_users, horizon=horizon, seed=process_seed
            )
            for method in methods:
                cell = evaluate(
                    method,
                    dataset,
                    epsilon,
                    window,
                    seed=next_seed(),
                    repeats=repeats,
                )
                series[name][method][float(n_users)] = cell.mre
    return series


def fig6_fluctuation(
    q_values: Sequence[float] = (0.001, 0.002, 0.004, 0.008),
    b_values: Sequence[float] = (1 / 200, 1 / 100, 1 / 50, 1 / 25),
    methods: Sequence[str] = ALL_METHODS,
    epsilon: float = 1.0,
    window: int = 30,
    n_users: int = 20_000,
    horizon: int = 200,
    repeats: int = 1,
    seed: SeedLike = 0,
) -> SeriesDict:
    """Fig. 6(c,d): MRE vs fluctuation — sqrt(Q) for LNS and b for Sin."""
    next_seed = _seed_stream(seed)
    series: SeriesDict = {"LNS": {m: {} for m in methods}, "Sin": {m: {} for m in methods}}
    for q_std in q_values:
        dataset = make_dataset(
            "LNS", n_users=n_users, horizon=horizon, q_std=q_std, seed=next_seed()
        )
        for method in methods:
            cell = evaluate(
                method, dataset, epsilon, window, seed=next_seed(), repeats=repeats
            )
            series["LNS"][method][q_std] = cell.mre
    for b in b_values:
        dataset = make_dataset(
            "Sin", n_users=n_users, horizon=horizon, b=b, seed=next_seed()
        )
        for method in methods:
            cell = evaluate(
                method, dataset, epsilon, window, seed=next_seed(), repeats=repeats
            )
            series["Sin"][method][b] = cell.mre
    return series


def fig7_event_monitoring(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = FIG7_METHODS,
    epsilon: float = 1.0,
    window: int = 50,
    size: str = "default",
    seed: SeedLike = 0,
) -> Dict[str, Dict[str, ROCCurve]]:
    """Fig. 7: ``curves[dataset][method]`` = ROC curve (with ``.auc``)."""
    next_seed = _seed_stream(seed)
    curves: Dict[str, Dict[str, ROCCurve]] = {}
    for name in datasets:
        dataset = make_dataset(name, size=size, seed=next_seed())
        curves[name] = {}
        for method in methods:
            result = run_single(
                method, dataset, epsilon, window, seed=next_seed()
            )
            curves[name][method] = monitoring_roc(
                result.releases, result.true_frequencies
            )
    return curves


def fig8_communication(
    methods: Sequence[str] = ALL_METHODS,
    populations: Sequence[int] = (5_000, 10_000, 15_000, 20_000),
    q_values: Sequence[float] = (0.01, 0.02, 0.04, 0.08),
    epsilons: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    windows: Sequence[int] = (10, 20, 30, 40),
    n_users: int = 20_000,
    horizon: int = 200,
    epsilon: float = 1.0,
    window: int = 20,
    repeats: int = 1,
    seed: SeedLike = 0,
) -> Dict[str, SeriesDict]:
    """Fig. 8(a-d): CFPU on LNS vs N, Q, epsilon and window.

    Returns ``panels[panel][method][x] = CFPU`` with panels
    ``"N"``, ``"Q"``, ``"epsilon"``, ``"window"``.
    """
    next_seed = _seed_stream(seed)
    panels: Dict[str, Dict[str, Dict[float, float]]] = {
        "N": {m: {} for m in methods},
        "Q": {m: {} for m in methods},
        "epsilon": {m: {} for m in methods},
        "window": {m: {} for m in methods},
    }
    for n in populations:
        dataset = make_dataset("LNS", n_users=n, horizon=horizon, seed=next_seed())
        for method in methods:
            cell = evaluate(
                method, dataset, epsilon, window, seed=next_seed(), repeats=repeats
            )
            panels["N"][method][float(n)] = cell.cfpu
    for q_std in q_values:
        dataset = make_dataset(
            "LNS", n_users=n_users, horizon=horizon, q_std=q_std, seed=next_seed()
        )
        for method in methods:
            cell = evaluate(
                method, dataset, epsilon, window, seed=next_seed(), repeats=repeats
            )
            panels["Q"][method][q_std] = cell.cfpu
    base = make_dataset("LNS", n_users=n_users, horizon=horizon, seed=next_seed())
    for eps in epsilons:
        for method in methods:
            cell = evaluate(
                method, base, eps, window, seed=next_seed(), repeats=repeats
            )
            panels["epsilon"][method][eps] = cell.cfpu
    for w in windows:
        for method in methods:
            cell = evaluate(
                method, base, epsilon, w, seed=next_seed(), repeats=repeats
            )
            panels["window"][method][float(w)] = cell.cfpu
    return panels
