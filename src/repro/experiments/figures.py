"""Series generators for every figure in Section 7.

Each ``figN_*`` function regenerates the data series behind the paper's
figure — the same methods, the same x-axes, the same metric — and returns a
plain nested dict that :mod:`repro.experiments.reporting` can print.  The
paper's exact parameter values are the defaults; sizes default to the
``default`` tier of :mod:`repro.experiments.datasets` (scaled, shape
preserving) and can be raised to ``paper``.

Every generator decomposes its grid into
:class:`~repro.experiments.parallel.CellSpec` jobs and executes them
through :func:`~repro.experiments.parallel.execute_cells`, so passing
``jobs=N`` fans the figure out over N worker processes with bit-identical
results to the serial run (each cell's randomness derives from the figure
seed and the cell's coordinates alone).

Figure index (see DESIGN.md for the full mapping):

* Fig. 4 — MRE vs epsilon, w = 20, 6 datasets, 7 methods;
* Fig. 5 — MRE vs window, eps = 1, 6 datasets, 7 methods;
* Fig. 6 — MRE vs population N and fluctuation (Q, b), eps = 1, w = 30;
* Fig. 7 — event-monitoring ROC curves, eps = 1, w = 50;
* Fig. 8 — CFPU vs N, Q, eps, w on LNS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import ROCCurve
from ..mechanisms import ALL_METHODS
from ..rng import SeedLike, as_seed_sequence, derive_seed
from .datasets import ALL_DATASETS
from .parallel import CellSpec, DatasetSpec, execute_cells

#: Methods on the paper's Fig. 7 ROC plots.
FIG7_METHODS = ("LBA", "LSP", "LPU", "LPD", "LPA")

SeriesDict = Dict[str, Dict[str, Dict[float, float]]]

#: (panel, method, x) coordinates tracked alongside each CellSpec so the
#: executed cells can be folded back into the figure's nested-dict shape.
_Coord = Tuple[str, str, float]


def _fill(
    specs: List[CellSpec],
    coords: List[_Coord],
    *,
    base: np.random.SeedSequence,
    jobs: Optional[int],
    metric: str = "mre",
) -> SeriesDict:
    """Execute specs and fold ``metric`` into ``series[panel][method][x]``."""
    cells = execute_cells(specs, base_seed=base, jobs=jobs)
    series: SeriesDict = {}
    for (panel, method, x), cell in zip(coords, cells):
        series.setdefault(panel, {}).setdefault(method, {})[x] = getattr(
            cell, metric
        )
    return series


def fig4_utility_vs_epsilon(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = ALL_METHODS,
    epsilons: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5),
    window: int = 20,
    size: str = "default",
    repeats: int = 1,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> SeriesDict:
    """Fig. 4: ``series[dataset][method][epsilon] = MRE``."""
    base = as_seed_sequence(seed)
    specs: List[CellSpec] = []
    coords: List[_Coord] = []
    for name in datasets:
        dataset = DatasetSpec.of(
            name, size=size, seed=derive_seed(base, "fig4", name)
        )
        for method in methods:
            for epsilon in epsilons:
                specs.append(
                    CellSpec(
                        mechanism=method,
                        dataset=dataset,
                        epsilon=float(epsilon),
                        window=int(window),
                        repeats=repeats,
                        tag="fig4",
                    )
                )
                coords.append((name, method, epsilon))
    return _fill(specs, coords, base=base, jobs=jobs)


def fig5_utility_vs_window(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = ALL_METHODS,
    windows: Sequence[int] = (10, 20, 30, 40, 50),
    epsilon: float = 1.0,
    size: str = "default",
    repeats: int = 1,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> SeriesDict:
    """Fig. 5: ``series[dataset][method][window] = MRE``."""
    base = as_seed_sequence(seed)
    specs: List[CellSpec] = []
    coords: List[_Coord] = []
    for name in datasets:
        dataset = DatasetSpec.of(
            name, size=size, seed=derive_seed(base, "fig5", name)
        )
        for method in methods:
            for window in windows:
                specs.append(
                    CellSpec(
                        mechanism=method,
                        dataset=dataset,
                        epsilon=float(epsilon),
                        window=int(window),
                        repeats=repeats,
                        tag="fig5",
                    )
                )
                coords.append((name, method, window))
    return _fill(specs, coords, base=base, jobs=jobs)


def fig6_population(
    populations: Sequence[int] = (10_000, 20_000, 40_000, 80_000),
    datasets: Sequence[str] = ("LNS", "Sin"),
    methods: Sequence[str] = ALL_METHODS,
    epsilon: float = 1.0,
    window: int = 30,
    horizon: int = 200,
    repeats: int = 1,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> SeriesDict:
    """Fig. 6(a,b): MRE vs population N (frequency process held fixed).

    The paper's x-axis is {1e5, 2e5, 4e5, 8e5}; the default here is the
    same geometric ladder scaled by 10 for bench speed.
    """
    base = as_seed_sequence(seed)
    specs: List[CellSpec] = []
    coords: List[_Coord] = []
    for name in datasets:
        # One process seed per dataset: the frequency process stays fixed
        # while N varies, exactly as in the paper's Fig. 6(a,b).
        process_seed = derive_seed(base, "fig6", name)
        for n_users in populations:
            dataset = DatasetSpec.of(
                name, n_users=n_users, horizon=horizon, seed=process_seed
            )
            for method in methods:
                specs.append(
                    CellSpec(
                        mechanism=method,
                        dataset=dataset,
                        epsilon=float(epsilon),
                        window=int(window),
                        repeats=repeats,
                        tag="fig6",
                    )
                )
                coords.append((name, method, float(n_users)))
    return _fill(specs, coords, base=base, jobs=jobs)


def fig6_fluctuation(
    q_values: Sequence[float] = (0.001, 0.002, 0.004, 0.008),
    b_values: Sequence[float] = (1 / 200, 1 / 100, 1 / 50, 1 / 25),
    methods: Sequence[str] = ALL_METHODS,
    epsilon: float = 1.0,
    window: int = 30,
    n_users: int = 20_000,
    horizon: int = 200,
    repeats: int = 1,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> SeriesDict:
    """Fig. 6(c,d): MRE vs fluctuation — sqrt(Q) for LNS and b for Sin."""
    base = as_seed_sequence(seed)
    specs: List[CellSpec] = []
    coords: List[_Coord] = []
    for q_std in q_values:
        dataset = DatasetSpec.of(
            "LNS",
            n_users=n_users,
            horizon=horizon,
            seed=derive_seed(base, "fig6", "LNS", float(q_std)),
            q_std=float(q_std),
        )
        for method in methods:
            specs.append(
                CellSpec(
                    mechanism=method,
                    dataset=dataset,
                    epsilon=float(epsilon),
                    window=int(window),
                    repeats=repeats,
                    tag="fig6",
                )
            )
            coords.append(("LNS", method, q_std))
    for b in b_values:
        dataset = DatasetSpec.of(
            "Sin",
            n_users=n_users,
            horizon=horizon,
            seed=derive_seed(base, "fig6", "Sin", float(b)),
            b=float(b),
        )
        for method in methods:
            specs.append(
                CellSpec(
                    mechanism=method,
                    dataset=dataset,
                    epsilon=float(epsilon),
                    window=int(window),
                    repeats=repeats,
                    tag="fig6",
                )
            )
            coords.append(("Sin", method, b))
    series = _fill(specs, coords, base=base, jobs=jobs)
    # Preserve the paper's panel order even when a panel is empty.
    return {
        "LNS": series.get("LNS", {m: {} for m in methods}),
        "Sin": series.get("Sin", {m: {} for m in methods}),
    }


def fig7_event_monitoring(
    datasets: Sequence[str] = ALL_DATASETS,
    methods: Sequence[str] = FIG7_METHODS,
    epsilon: float = 1.0,
    window: int = 50,
    size: str = "default",
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> Dict[str, Dict[str, ROCCurve]]:
    """Fig. 7: ``curves[dataset][method]`` = ROC curve (with ``.auc``)."""
    base = as_seed_sequence(seed)
    specs: List[CellSpec] = []
    coords: List[Tuple[str, str]] = []
    for name in datasets:
        dataset = DatasetSpec.of(
            name, size=size, seed=derive_seed(base, "fig7", name)
        )
        for method in methods:
            specs.append(
                CellSpec(
                    mechanism=method,
                    dataset=dataset,
                    epsilon=float(epsilon),
                    window=int(window),
                    kind="roc",
                    tag="fig7",
                )
            )
            coords.append((name, method))
    cells = execute_cells(specs, base_seed=base, jobs=jobs)
    curves: Dict[str, Dict[str, ROCCurve]] = {}
    for (name, method), curve in zip(coords, cells):
        curves.setdefault(name, {})[method] = curve
    return curves


def fig8_communication(
    methods: Sequence[str] = ALL_METHODS,
    populations: Sequence[int] = (5_000, 10_000, 15_000, 20_000),
    q_values: Sequence[float] = (0.01, 0.02, 0.04, 0.08),
    epsilons: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
    windows: Sequence[int] = (10, 20, 30, 40),
    n_users: int = 20_000,
    horizon: int = 200,
    epsilon: float = 1.0,
    window: int = 20,
    repeats: int = 1,
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> Dict[str, SeriesDict]:
    """Fig. 8(a-d): CFPU on LNS vs N, Q, epsilon and window.

    Returns ``panels[panel][method][x] = CFPU`` with panels
    ``"N"``, ``"Q"``, ``"epsilon"``, ``"window"``.
    """
    base = as_seed_sequence(seed)
    specs: List[CellSpec] = []
    coords: List[_Coord] = []

    def add(panel: str, dataset: DatasetSpec, method: str, eps: float, w: int, x: float) -> None:
        specs.append(
            CellSpec(
                mechanism=method,
                dataset=dataset,
                epsilon=float(eps),
                window=int(w),
                repeats=repeats,
                tag=f"fig8:{panel}",
            )
        )
        coords.append((panel, method, x))

    for n in populations:
        dataset = DatasetSpec.of(
            "LNS",
            n_users=n,
            horizon=horizon,
            seed=derive_seed(base, "fig8", "N", int(n)),
        )
        for method in methods:
            add("N", dataset, method, epsilon, window, float(n))
    for q_std in q_values:
        dataset = DatasetSpec.of(
            "LNS",
            n_users=n_users,
            horizon=horizon,
            seed=derive_seed(base, "fig8", "Q", float(q_std)),
            q_std=float(q_std),
        )
        for method in methods:
            add("Q", dataset, method, epsilon, window, q_std)
    shared = DatasetSpec.of(
        "LNS",
        n_users=n_users,
        horizon=horizon,
        seed=derive_seed(base, "fig8", "base"),
    )
    for eps in epsilons:
        for method in methods:
            add("epsilon", shared, method, eps, window, eps)
    for w in windows:
        for method in methods:
            add("window", shared, method, epsilon, w, float(w))

    panels = _fill(specs, coords, base=base, jobs=jobs, metric="cfpu")
    for panel in ("N", "Q", "epsilon", "window"):
        panels.setdefault(panel, {m: {} for m in methods})
    return panels
