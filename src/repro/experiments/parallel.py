"""Parallel experiment engine: self-describing cells over worker processes.

The paper's evaluation is a large mechanism × epsilon × window × dataset
grid.  This module decomposes any sweep into an explicit list of
:class:`CellSpec` jobs and executes them either inline or over a
:class:`concurrent.futures.ProcessPoolExecutor`, then merges the results
back into the ``results[mechanism][(epsilon, window)]`` shape the rest of
the experiments layer expects.

Determinism contract
--------------------
A cell's randomness is a pure function of the campaign seed and the
cell's *coordinates* (dataset identity, mechanism, epsilon, window,
oracle, tag) — derived through :func:`repro.rng.derive_seed_sequence`,
never from sequential draws off a shared generator.  Consequences:

* ``jobs=1`` and ``jobs=N`` produce bit-identical
  :class:`~repro.experiments.runner.CellResult`\\ s;
* reordering the grid (or running a single cell in isolation) does not
  change any cell's result;
* repeats split across workers reproduce the serial average exactly,
  because per-repeat seeds are prefix-stable ``SeedSequence.spawn``
  children (see :func:`repro.experiments.runner.evaluate_repeat`).

Workers reconstruct datasets from a :class:`DatasetSpec` (registry name +
size/overrides + seed) rather than receiving pickled value matrices, so
fanning out a paper-tier grid ships a few hundred bytes per job instead
of gigabytes.  Passing a live :class:`~repro.streams.base.StreamDataset`
still works — it is pickled to the workers — but specs are the fast path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis import ROCCurve, monitoring_roc
from ..exceptions import InvalidParameterError
from ..rng import SeedLike, as_seed_sequence, derive_seed, derive_seed_sequence
from ..streams.base import StreamDataset
from .datasets import make_dataset
from .runner import (
    CellResult,
    evaluate,
    evaluate_repeat,
    merge_repeat_cells,
    run_single,
)

#: Hashable scalar parameter value inside a DatasetSpec.
ParamValue = Union[int, float, str, bool]


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset described by registry coordinates, not by its data.

    ``build()`` reconstructs the actual stream via
    :func:`repro.experiments.datasets.make_dataset`; two equal specs
    always build bit-identical streams, which is what lets worker
    processes rebuild datasets locally instead of unpickling them.
    """

    name: str
    size: str = "default"
    n_users: Optional[int] = None
    horizon: Optional[int] = None
    seed: Optional[int] = None
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    @classmethod
    def of(
        cls,
        name: str,
        size: str = "default",
        n_users: Optional[int] = None,
        horizon: Optional[int] = None,
        seed: Optional[int] = None,
        **params: ParamValue,
    ) -> "DatasetSpec":
        """Build a spec; extra kwargs become sorted ``params`` entries."""
        return cls(
            name=str(name),
            size=str(size),
            n_users=None if n_users is None else int(n_users),
            horizon=None if horizon is None else int(horizon),
            seed=None if seed is None else int(seed),
            params=tuple(sorted(params.items())),
        )

    def build(self) -> StreamDataset:
        """Instantiate the dataset this spec describes."""
        return make_dataset(
            self.name,
            size=self.size,
            n_users=self.n_users,
            horizon=self.horizon,
            seed=self.seed,
            **dict(self.params),
        )

    def seed_keys(self) -> Tuple[Union[int, float, str], ...]:
        """Stable coordinate keys identifying this dataset for seeding."""
        keys: List[Union[int, float, str]] = [
            self.name,
            self.size,
            -1 if self.n_users is None else self.n_users,
            -1 if self.horizon is None else self.horizon,
            -1 if self.seed is None else self.seed,
        ]
        for key, value in self.params:
            keys.append(key)
            keys.append(value if isinstance(value, (int, float)) else str(value))
        return tuple(keys)


DatasetLike = Union[DatasetSpec, StreamDataset, str]


def as_dataset_spec(dataset: DatasetLike, size: str = "default") -> DatasetLike:
    """Normalise a dataset argument: names become specs, the rest pass."""
    if isinstance(dataset, str):
        return DatasetSpec.of(dataset, size=size)
    return dataset


def _pin_dataset_seed(
    dataset: DatasetLike, seed: SeedLike, tag: str
) -> DatasetLike:
    """Give a seedless DatasetSpec a campaign-derived seed.

    Workers rebuild DatasetSpec streams locally; without a pinned seed a
    seedless spec would materialise differently in every process.  The
    pin happens once, in the parent, so serial and parallel runs agree.
    """
    dataset = as_dataset_spec(dataset)
    if isinstance(dataset, DatasetSpec) and dataset.seed is None:
        return replace(
            dataset, seed=derive_seed(seed, tag, "dataset", dataset.name)
        )
    return dataset


@dataclass(frozen=True)
class CellSpec:
    """One self-describing experiment job.

    ``kind`` selects the result type: ``"cell"`` runs
    :func:`~repro.experiments.runner.evaluate` (averaged
    :class:`CellResult`), ``"roc"`` runs a single session and returns its
    event-monitoring :class:`~repro.analysis.ROCCurve` (Fig. 7).  When
    ``repeat_index`` is set, only that repeat runs — with the exact seed
    the full serial evaluation would hand it.
    """

    mechanism: str
    dataset: Union[DatasetSpec, StreamDataset]
    epsilon: float
    window: int
    oracle: str = "grr"
    repeats: int = 1
    horizon: Optional[int] = None
    with_roc: bool = False
    kind: str = "cell"
    tag: str = ""
    repeat_index: Optional[int] = None

    def seed_keys(self) -> Tuple[Union[int, float, str], ...]:
        """The cell's seeding coordinates (excludes ``repeat_index``)."""
        if isinstance(self.dataset, DatasetSpec):
            dataset_keys = self.dataset.seed_keys()
        else:  # live dataset: identify by its observable shape
            dataset_keys = (
                type(self.dataset).__name__,
                self.dataset.n_users,
                self.dataset.domain_size,
                -1 if self.dataset.horizon is None else self.dataset.horizon,
            )
        return (
            self.tag,
            self.kind,
            *dataset_keys,
            _mechanism_key(self.mechanism),
            float(self.epsilon),
            int(self.window),
            _oracle_key(self.oracle),
            -1 if self.horizon is None else int(self.horizon),
        )

    def seed_sequence(self, base: SeedLike) -> np.random.SeedSequence:
        """The cell's SeedSequence under campaign seed ``base``."""
        return derive_seed_sequence(base, *self.seed_keys())


def _mechanism_key(mechanism) -> str:
    if isinstance(mechanism, str):
        return mechanism.upper()
    name = getattr(mechanism, "name", None)
    if name:
        return str(name).upper()
    return getattr(mechanism, "__name__", str(mechanism)).upper()


def _oracle_key(oracle) -> str:
    if isinstance(oracle, str):
        return oracle.lower()
    return str(getattr(oracle, "name", oracle)).lower()


# --------------------------------------------------------------------------
# Cell execution

#: Per-process cache of materialised DatasetSpec streams.  Bounded so a
#: long campaign cannot pin every paper-tier value matrix in worker RAM.
_DATASET_CACHE: Dict[DatasetSpec, StreamDataset] = {}
_DATASET_CACHE_MAX = 4


def _materialize(dataset: Union[DatasetSpec, StreamDataset]) -> StreamDataset:
    if not isinstance(dataset, DatasetSpec):
        return dataset
    cached = _DATASET_CACHE.get(dataset)
    if cached is None:
        if len(_DATASET_CACHE) >= _DATASET_CACHE_MAX:
            _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
        cached = _DATASET_CACHE[dataset] = dataset.build()
    return cached


def run_cell(
    spec: CellSpec, base_seed: SeedLike = 0
) -> Union[CellResult, ROCCurve]:
    """Execute one cell; pure in (spec, base_seed) by construction."""
    dataset = _materialize(spec.dataset)
    seed = spec.seed_sequence(base_seed)
    if spec.kind == "roc":
        result = run_single(
            spec.mechanism,
            dataset,
            spec.epsilon,
            spec.window,
            oracle=spec.oracle,
            seed=np.random.default_rng(seed),
            horizon=spec.horizon,
        )
        return monitoring_roc(result.releases, result.true_frequencies)
    if spec.kind != "cell":
        raise InvalidParameterError(f"unknown cell kind {spec.kind!r}")
    if spec.repeat_index is not None:
        return evaluate_repeat(
            spec.mechanism,
            dataset,
            spec.epsilon,
            spec.window,
            index=spec.repeat_index,
            oracle=spec.oracle,
            seed=seed,
            with_roc=spec.with_roc,
            horizon=spec.horizon,
        )
    return evaluate(
        spec.mechanism,
        dataset,
        spec.epsilon,
        spec.window,
        oracle=spec.oracle,
        seed=seed,
        repeats=spec.repeats,
        with_roc=spec.with_roc,
        horizon=spec.horizon,
    )


def _run_cell_job(job: Tuple[CellSpec, np.random.SeedSequence]):
    """Top-level worker entry point (must be picklable)."""
    spec, base = job
    return run_cell(spec, base)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/``0`` mean all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise InvalidParameterError(f"jobs must be >= 0 or None, got {jobs}")
    return int(jobs)


def execute_cells(
    specs: Sequence[CellSpec],
    *,
    base_seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> List[Union[CellResult, ROCCurve]]:
    """Run every spec, returning results in spec order.

    ``jobs <= 1`` runs inline; anything larger fans out over a process
    pool.  Both paths call the same :func:`run_cell`, and each cell's
    seed depends only on its coordinates, so the outputs are identical.
    """
    # Normalise entropy once in the parent so seed=None still gives every
    # cell a distinct (if irreproducible) stream under any worker count.
    base = as_seed_sequence(base_seed)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [run_cell(spec, base) for spec in specs]
    workers = min(jobs, len(specs))
    chunksize = max(1, len(specs) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(
                _run_cell_job,
                [(spec, base) for spec in specs],
                chunksize=chunksize,
            )
        )


# --------------------------------------------------------------------------
# Grid sweeps

def grid_specs(
    mechanisms: Iterable,
    dataset: DatasetLike,
    *,
    epsilons: Iterable[float] = (1.0,),
    windows: Iterable[int] = (20,),
    oracle="grr",
    repeats: int = 1,
    with_roc: bool = False,
    horizon: Optional[int] = None,
    tag: str = "sweep",
) -> List[CellSpec]:
    """Decompose a sweep grid into its cell jobs (row-major order)."""
    dataset = as_dataset_spec(dataset)
    return [
        CellSpec(
            mechanism=mechanism,
            dataset=dataset,
            epsilon=float(epsilon),
            window=int(window),
            oracle=oracle,
            repeats=repeats,
            with_roc=with_roc,
            horizon=horizon,
            tag=tag,
        )
        for mechanism in mechanisms
        for epsilon in epsilons
        for window in windows
    ]


def merge_grid(
    specs: Sequence[CellSpec], cells: Sequence[CellResult]
) -> Dict[str, Dict[tuple, CellResult]]:
    """Fold executed cells back into ``results[mechanism][(eps, w)]``."""
    results: Dict[str, Dict[tuple, CellResult]] = {}
    for spec, cell in zip(specs, cells):
        name = str(spec.mechanism)
        results.setdefault(name, {})[(spec.epsilon, spec.window)] = cell
    return results


def parallel_sweep(
    mechanisms: Iterable,
    dataset: DatasetLike,
    *,
    epsilons: Iterable[float] = (1.0,),
    windows: Iterable[int] = (20,),
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
    jobs: Optional[int] = 1,
) -> Dict[str, Dict[tuple, CellResult]]:
    """Grid sweep through the parallel engine (see :func:`runner.sweep`)."""
    seed = as_seed_sequence(seed)
    specs = grid_specs(
        mechanisms,
        _pin_dataset_seed(dataset, seed, "sweep"),
        epsilons=epsilons,
        windows=windows,
        oracle=oracle,
        repeats=repeats,
        with_roc=with_roc,
    )
    cells = execute_cells(specs, base_seed=seed, jobs=jobs)
    return merge_grid(specs, cells)


def evaluate_parallel(
    mechanism,
    dataset: DatasetLike,
    epsilon: float,
    window: int,
    *,
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
    horizon: Optional[int] = None,
    jobs: Optional[int] = 1,
    tag: str = "evaluate",
) -> CellResult:
    """One cell, with its repeats optionally split across workers.

    Bit-identical to :func:`repro.experiments.runner.evaluate` on the
    same coordinates: repeat ``i`` always runs with spawn child ``i`` of
    the cell seed, and the final average is taken in repeat order.
    """
    seed = as_seed_sequence(seed)
    spec = CellSpec(
        mechanism=mechanism,
        dataset=_pin_dataset_seed(dataset, seed, tag),
        epsilon=float(epsilon),
        window=int(window),
        oracle=oracle,
        repeats=repeats,
        with_roc=with_roc,
        horizon=horizon,
        tag=tag,
    )
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or repeats <= 1:
        return run_cell(spec, seed)
    repeat_specs = [
        replace(spec, repeats=1, repeat_index=i) for i in range(repeats)
    ]
    cells = execute_cells(repeat_specs, base_seed=seed, jobs=jobs)
    return merge_repeat_cells(cells)
