"""Parallel experiment engine: self-describing cells over worker processes.

The paper's evaluation is a large mechanism × epsilon × window × dataset
grid.  This module decomposes any sweep into an explicit list of
:class:`CellSpec` jobs and executes them either inline or over a
:class:`concurrent.futures.ProcessPoolExecutor`, then merges the results
back into the ``results[mechanism][(epsilon, window)]`` shape the rest of
the experiments layer expects.

Determinism contract
--------------------
A cell's randomness is a pure function of the campaign seed and the
cell's *coordinates* (dataset identity, mechanism, epsilon, window,
oracle, tag) — derived through :func:`repro.rng.derive_seed_sequence`,
never from sequential draws off a shared generator.  Consequences:

* ``jobs=1`` and ``jobs=N`` produce bit-identical
  :class:`~repro.experiments.runner.CellResult`\\ s;
* reordering the grid (or running a single cell in isolation) does not
  change any cell's result;
* repeats split across workers reproduce the serial average exactly,
  because per-repeat seeds are prefix-stable ``SeedSequence.spawn``
  children (see :func:`repro.experiments.runner.evaluate_repeat`).

Workers reconstruct datasets from a :class:`DatasetSpec` (registry name +
size/overrides + seed) rather than receiving pickled value matrices, so
fanning out a paper-tier grid ships a few hundred bytes per job instead
of gigabytes.  Passing a live :class:`~repro.streams.base.StreamDataset`
still works — it is pickled to the workers — but specs are the fast path.

Shared-pass coalescing
----------------------
Cells that target the same dataset no longer each re-simulate the stream:
:func:`coalesce_specs` groups them and :func:`run_shared_pass` executes a
group as one :class:`~repro.engine.SessionGroup` — a single pass over the
stream whose per-timestamp values and true frequencies fan out to one
:class:`~repro.engine.StreamSession` per (cell, repeat).  Each session is
seeded with the exact coordinate-derived SeedSequence the solo path
uses, so coalescing changes wall-clock only, never results.  A
7-mechanism × 4-epsilon grid over one simulator-backed dataset becomes 1
stream pass instead of 28 (see ``benchmarks/bench_shared_pass.py``).

The shared pass runs through the group's structure-of-arrays scheduler
(:mod:`repro.engine.soa`, the ``soa="auto"`` default): each
:data:`_SHARED_PASS_CHUNK`-timestamp span is read and histogrammed
once for the whole group, every session's chunk context is pre-warmed
with the shared arrays, and buckets of uniform-round sessions (e.g.
all the LBU cells of an epsilon sweep) collapse into single stacked
oracle calls.  This holds on generative simulators too — the SoA block
fetch consumes each span exactly once — and is bit-identical to the
per-timestamp fan-out (see ``benchmarks/bench_shared_pass.py``; set
``REPRO_SOA=0`` to fall back to the legacy fan-out).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis import ROCCurve, monitoring_roc
from ..engine import SessionGroup
from ..exceptions import InvalidParameterError
from ..rng import SeedLike, as_seed_sequence, derive_seed, derive_seed_sequence
from ..streams.base import StreamDataset
from .datasets import make_dataset
from .runner import (
    CellResult,
    cell_from_session,
    evaluate,
    evaluate_repeat,
    merge_repeat_cells,
    repeat_seed_sequences,
    run_single,
)

#: Hashable scalar parameter value inside a DatasetSpec.
ParamValue = Union[int, float, str, bool]

#: Timestamps per bulk-ingestion step on shared-pass groups (drives both
#: the truth-histogram prefetch and each session's observe_many spans).
_SHARED_PASS_CHUNK = 128


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset described by registry coordinates, not by its data.

    ``build()`` reconstructs the actual stream via
    :func:`repro.experiments.datasets.make_dataset`; two equal specs
    always build bit-identical streams, which is what lets worker
    processes rebuild datasets locally instead of unpickling them.
    """

    name: str
    size: str = "default"
    n_users: Optional[int] = None
    horizon: Optional[int] = None
    seed: Optional[int] = None
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    @classmethod
    def of(
        cls,
        name: str,
        size: str = "default",
        n_users: Optional[int] = None,
        horizon: Optional[int] = None,
        seed: Optional[int] = None,
        **params: ParamValue,
    ) -> "DatasetSpec":
        """Build a spec; extra kwargs become sorted ``params`` entries."""
        return cls(
            name=str(name),
            size=str(size),
            n_users=None if n_users is None else int(n_users),
            horizon=None if horizon is None else int(horizon),
            seed=None if seed is None else int(seed),
            params=tuple(sorted(params.items())),
        )

    def build(self) -> StreamDataset:
        """Instantiate the dataset this spec describes."""
        return make_dataset(
            self.name,
            size=self.size,
            n_users=self.n_users,
            horizon=self.horizon,
            seed=self.seed,
            **dict(self.params),
        )

    def seed_keys(self) -> Tuple[Union[int, float, str], ...]:
        """Stable coordinate keys identifying this dataset for seeding."""
        keys: List[Union[int, float, str]] = [
            self.name,
            self.size,
            -1 if self.n_users is None else self.n_users,
            -1 if self.horizon is None else self.horizon,
            -1 if self.seed is None else self.seed,
        ]
        for key, value in self.params:
            keys.append(key)
            keys.append(value if isinstance(value, (int, float)) else str(value))
        return tuple(keys)


DatasetLike = Union[DatasetSpec, StreamDataset, str]


def as_dataset_spec(dataset: DatasetLike, size: str = "default") -> DatasetLike:
    """Normalise a dataset argument: names become specs, the rest pass."""
    if isinstance(dataset, str):
        return DatasetSpec.of(dataset, size=size)
    return dataset


def _pin_dataset_seed(
    dataset: DatasetLike, seed: SeedLike, tag: str
) -> DatasetLike:
    """Give a seedless DatasetSpec a campaign-derived seed.

    Workers rebuild DatasetSpec streams locally; without a pinned seed a
    seedless spec would materialise differently in every process.  The
    pin happens once, in the parent, so serial and parallel runs agree.
    """
    dataset = as_dataset_spec(dataset)
    if isinstance(dataset, DatasetSpec) and dataset.seed is None:
        return replace(
            dataset, seed=derive_seed(seed, tag, "dataset", dataset.name)
        )
    return dataset


@dataclass(frozen=True)
class CellSpec:
    """One self-describing experiment job.

    ``kind`` selects the result type: ``"cell"`` runs
    :func:`~repro.experiments.runner.evaluate` (averaged
    :class:`CellResult`), ``"roc"`` runs a single session and returns its
    event-monitoring :class:`~repro.analysis.ROCCurve` (Fig. 7).  When
    ``repeat_index`` is set, only that repeat runs — with the exact seed
    the full serial evaluation would hand it.
    """

    mechanism: str
    dataset: Union[DatasetSpec, StreamDataset]
    epsilon: float
    window: int
    oracle: str = "grr"
    repeats: int = 1
    horizon: Optional[int] = None
    with_roc: bool = False
    kind: str = "cell"
    tag: str = ""
    repeat_index: Optional[int] = None
    #: Record top-k heavy-hitter precision alongside full-vector error.
    #: Pure trace post-processing: deliberately excluded from
    #: ``seed_keys`` so toggling it never changes any random draw.
    query_k: Optional[int] = None

    def seed_keys(self) -> Tuple[Union[int, float, str], ...]:
        """The cell's seeding coordinates (excludes ``repeat_index``
        and ``query_k``)."""
        if isinstance(self.dataset, DatasetSpec):
            dataset_keys = self.dataset.seed_keys()
        else:  # live dataset: identify by its observable shape
            dataset_keys = (
                type(self.dataset).__name__,
                self.dataset.n_users,
                self.dataset.domain_size,
                -1 if self.dataset.horizon is None else self.dataset.horizon,
            )
        return (
            self.tag,
            self.kind,
            *dataset_keys,
            _mechanism_key(self.mechanism),
            float(self.epsilon),
            int(self.window),
            _oracle_key(self.oracle),
            -1 if self.horizon is None else int(self.horizon),
        )

    def seed_sequence(self, base: SeedLike) -> np.random.SeedSequence:
        """The cell's SeedSequence under campaign seed ``base``."""
        return derive_seed_sequence(base, *self.seed_keys())


def _mechanism_key(mechanism) -> str:
    if isinstance(mechanism, str):
        return mechanism.upper()
    name = getattr(mechanism, "name", None)
    if name:
        return str(name).upper()
    return getattr(mechanism, "__name__", str(mechanism)).upper()


def _oracle_key(oracle) -> str:
    if isinstance(oracle, str):
        return oracle.lower()
    return str(getattr(oracle, "name", oracle)).lower()


# --------------------------------------------------------------------------
# Cell execution


class _DatasetLRU:
    """Small per-process LRU of materialised DatasetSpec streams.

    Long campaigns visit many distinct datasets; an unbounded cache would
    pin every paper-tier value matrix in worker RAM for the lifetime of
    the pool.  The LRU keeps the handful of streams a figure's cells
    revisit while letting cold ones be garbage collected.  Size is
    tunable via ``REPRO_DATASET_CACHE`` (0 disables caching).
    """

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[DatasetSpec, StreamDataset]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, spec: DatasetSpec) -> StreamDataset:
        if self.maxsize <= 0:
            self.misses += 1
            return spec.build()
        cached = self._entries.get(spec)
        if cached is not None:
            self._entries.move_to_end(spec)
            self.hits += 1
            return cached
        self.misses += 1
        built = spec.build()
        self._entries[spec] = built
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return built

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_DATASET_CACHE = _DatasetLRU(
    maxsize=int(os.environ.get("REPRO_DATASET_CACHE", "4"))
)


def _materialize(dataset: Union[DatasetSpec, StreamDataset]) -> StreamDataset:
    if not isinstance(dataset, DatasetSpec):
        return dataset
    return _DATASET_CACHE.get_or_build(dataset)


def run_cell(
    spec: CellSpec, base_seed: SeedLike = 0
) -> Union[CellResult, ROCCurve]:
    """Execute one cell; pure in (spec, base_seed) by construction."""
    dataset = _materialize(spec.dataset)
    seed = spec.seed_sequence(base_seed)
    if spec.kind == "roc":
        result = run_single(
            spec.mechanism,
            dataset,
            spec.epsilon,
            spec.window,
            oracle=spec.oracle,
            seed=np.random.default_rng(seed),
            horizon=spec.horizon,
        )
        return monitoring_roc(result.releases, result.true_frequencies)
    if spec.kind != "cell":
        raise InvalidParameterError(f"unknown cell kind {spec.kind!r}")
    if spec.repeat_index is not None:
        return evaluate_repeat(
            spec.mechanism,
            dataset,
            spec.epsilon,
            spec.window,
            index=spec.repeat_index,
            oracle=spec.oracle,
            seed=seed,
            with_roc=spec.with_roc,
            horizon=spec.horizon,
            query_k=spec.query_k,
        )
    return evaluate(
        spec.mechanism,
        dataset,
        spec.epsilon,
        spec.window,
        oracle=spec.oracle,
        seed=seed,
        repeats=spec.repeats,
        with_roc=spec.with_roc,
        horizon=spec.horizon,
        query_k=spec.query_k,
    )


def _run_cell_job(job: Tuple[CellSpec, np.random.SeedSequence]):
    """Top-level worker entry point (must be picklable)."""
    spec, base = job
    return run_cell(spec, base)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/``0`` mean all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise InvalidParameterError(f"jobs must be >= 0 or None, got {jobs}")
    return int(jobs)


# --------------------------------------------------------------------------
# Shared-pass coalescing
#
# Cells that target the same dataset re-simulate the same stream and
# recompute the same true frequencies.  The coalescer folds such cells
# into one job executed as a SessionGroup — a single pass over the stream
# fanned out to one StreamSession per (cell, repeat), each with the exact
# SeedSequence the solo path would derive.  Results are therefore
# bit-identical to per-cell execution; only the wall-clock changes.

def _dataset_key(spec: CellSpec):
    """Hashable identity under which cells may share a stream pass."""
    if isinstance(spec.dataset, DatasetSpec):
        return spec.dataset
    return id(spec.dataset)  # live stream: share only the same object


def coalesce_specs(specs: Sequence[CellSpec]) -> List[List[int]]:
    """Group spec indices by shared dataset, in first-seen order."""
    groups: Dict[object, List[int]] = {}
    order: List[object] = []
    for index, spec in enumerate(specs):
        key = _dataset_key(spec)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(index)
    return [groups[key] for key in order]


def _split_for_workers(groups: List[List[int]], jobs: int) -> List[List[int]]:
    """Split the largest shared-pass groups until every worker has a job.

    Sessions are seeded by coordinates, and stream replay is
    bit-identical, so chunking a group re-runs the pass for the chunk
    without changing any result — it only trades generation time for
    parallelism when the grid has fewer datasets than workers.
    """
    groups = [list(group) for group in groups]
    target = min(jobs, sum(len(group) for group in groups))
    while len(groups) < target:
        largest = max(range(len(groups)), key=lambda i: len(groups[i]))
        group = groups[largest]
        if len(group) <= 1:
            break
        mid = (len(group) + 1) // 2
        groups[largest : largest + 1] = [group[:mid], group[mid:]]
    return groups


def run_shared_pass(
    specs: Sequence[CellSpec], base_seed: SeedLike = 0
) -> List[Union[CellResult, ROCCurve]]:
    """Execute cells sharing one dataset over a single stream pass.

    Every (cell, repeat) becomes one :class:`~repro.engine.SessionGroup`
    session seeded with the exact SeedSequence the solo path derives
    (``spec.seed_sequence(base)`` and its prefix-stable spawn children),
    so each returned result is bit-identical to :func:`run_cell` on the
    same spec.
    """
    if not specs:
        return []
    if len(specs) == 1 and specs[0].kind == "cell" and specs[0].repeats == 1:
        # Nothing to share; keep the battle-tested solo path.
        return [run_cell(specs[0], base_seed)]
    base = as_seed_sequence(base_seed)
    dataset = _materialize(specs[0].dataset)
    group = SessionGroup(dataset, truth_chunk=_SHARED_PASS_CHUNK)
    plan: List[Tuple[CellSpec, int]] = []
    for spec in specs:
        seed = spec.seed_sequence(base)
        if spec.kind == "roc":
            group.add_session(
                spec.mechanism,
                spec.epsilon,
                spec.window,
                oracle=spec.oracle,
                seed=np.random.default_rng(seed),
                horizon=spec.horizon,
            )
            plan.append((spec, 1))
        elif spec.kind != "cell":
            raise InvalidParameterError(f"unknown cell kind {spec.kind!r}")
        elif spec.repeat_index is not None:
            if spec.repeat_index < 0:
                raise InvalidParameterError(
                    f"repeat index must be >= 0, got {spec.repeat_index}"
                )
            child = repeat_seed_sequences(seed, spec.repeat_index + 1)[
                spec.repeat_index
            ]
            group.add_session(
                spec.mechanism,
                spec.epsilon,
                spec.window,
                oracle=spec.oracle,
                seed=np.random.default_rng(child),
                horizon=spec.horizon,
            )
            plan.append((spec, 1))
        else:
            if spec.repeats < 1:
                raise InvalidParameterError(
                    f"repeats must be >= 1, got {spec.repeats}"
                )
            for child in repeat_seed_sequences(seed, spec.repeats):
                group.add_session(
                    spec.mechanism,
                    spec.epsilon,
                    spec.window,
                    oracle=spec.oracle,
                    seed=np.random.default_rng(child),
                    horizon=spec.horizon,
                )
            plan.append((spec, spec.repeats))
    sessions = group.run()
    results: List[Union[CellResult, ROCCurve]] = []
    cursor = 0
    for spec, count in plan:
        chunk = sessions[cursor : cursor + count]
        cursor += count
        if spec.kind == "roc":
            results.append(
                monitoring_roc(chunk[0].releases, chunk[0].true_frequencies)
            )
        elif spec.repeat_index is not None:
            results.append(
                cell_from_session(
                    chunk[0],
                    spec.epsilon,
                    spec.window,
                    with_roc=spec.with_roc,
                    query_k=spec.query_k,
                )
            )
        else:
            results.append(
                merge_repeat_cells(
                    [
                        cell_from_session(
                            result,
                            spec.epsilon,
                            spec.window,
                            with_roc=spec.with_roc,
                            query_k=spec.query_k,
                        )
                        for result in chunk
                    ]
                )
            )
    return results


def _run_group_job(job: Tuple[List[CellSpec], np.random.SeedSequence]):
    """Top-level shared-pass worker entry point (must be picklable)."""
    specs, base = job
    return run_shared_pass(specs, base)


def execute_cells(
    specs: Sequence[CellSpec],
    *,
    base_seed: SeedLike = 0,
    jobs: Optional[int] = 1,
    coalesce: bool = True,
) -> List[Union[CellResult, ROCCurve]]:
    """Run every spec, returning results in spec order.

    By default cells that share a dataset are coalesced into shared-pass
    :class:`~repro.engine.SessionGroup` jobs (one stream pass fanned out
    to every cell) — pass ``coalesce=False`` to force the historical
    one-process-call-per-cell execution.  ``jobs <= 1`` runs inline;
    anything larger fans the jobs out over a process pool.  All paths
    derive each session's randomness from the cell's coordinates alone,
    so the outputs are bit-identical regardless of worker count or
    coalescing.
    """
    # Normalise entropy once in the parent so seed=None still gives every
    # cell a distinct (if irreproducible) stream under any worker count.
    base = as_seed_sequence(base_seed)
    jobs = resolve_jobs(jobs)
    if coalesce:
        groups = coalesce_specs(specs)
        if jobs > 1:
            groups = _split_for_workers(groups, jobs)
    else:
        groups = [[index] for index in range(len(specs))]
    results: List[Optional[Union[CellResult, ROCCurve]]] = [None] * len(specs)
    if jobs <= 1 or len(groups) <= 1:
        for group_indices in groups:
            outputs = run_shared_pass(
                [specs[index] for index in group_indices], base
            )
            for index, output in zip(group_indices, outputs):
                results[index] = output
        return results
    workers = min(jobs, len(groups))
    payloads = [
        ([specs[index] for index in group_indices], base)
        for group_indices in groups
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for group_indices, outputs in zip(
            groups, pool.map(_run_group_job, payloads, chunksize=1)
        ):
            for index, output in zip(group_indices, outputs):
                results[index] = output
    return results


# --------------------------------------------------------------------------
# Grid sweeps

def grid_specs(
    mechanisms: Iterable,
    dataset: DatasetLike,
    *,
    epsilons: Iterable[float] = (1.0,),
    windows: Iterable[int] = (20,),
    oracle="grr",
    repeats: int = 1,
    with_roc: bool = False,
    horizon: Optional[int] = None,
    tag: str = "sweep",
    query_k: Optional[int] = None,
) -> List[CellSpec]:
    """Decompose a sweep grid into its cell jobs (row-major order)."""
    dataset = as_dataset_spec(dataset)
    return [
        CellSpec(
            mechanism=mechanism,
            dataset=dataset,
            epsilon=float(epsilon),
            window=int(window),
            oracle=oracle,
            repeats=repeats,
            with_roc=with_roc,
            horizon=horizon,
            tag=tag,
            query_k=query_k,
        )
        for mechanism in mechanisms
        for epsilon in epsilons
        for window in windows
    ]


def merge_grid(
    specs: Sequence[CellSpec], cells: Sequence[CellResult]
) -> Dict[str, Dict[tuple, CellResult]]:
    """Fold executed cells back into ``results[mechanism][(eps, w)]``."""
    results: Dict[str, Dict[tuple, CellResult]] = {}
    for spec, cell in zip(specs, cells):
        name = str(spec.mechanism)
        results.setdefault(name, {})[(spec.epsilon, spec.window)] = cell
    return results


def parallel_sweep(
    mechanisms: Iterable,
    dataset: DatasetLike,
    *,
    epsilons: Iterable[float] = (1.0,),
    windows: Iterable[int] = (20,),
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
    jobs: Optional[int] = 1,
    query_k: Optional[int] = None,
) -> Dict[str, Dict[tuple, CellResult]]:
    """Grid sweep through the parallel engine (see :func:`runner.sweep`)."""
    seed = as_seed_sequence(seed)
    specs = grid_specs(
        mechanisms,
        _pin_dataset_seed(dataset, seed, "sweep"),
        epsilons=epsilons,
        windows=windows,
        oracle=oracle,
        repeats=repeats,
        with_roc=with_roc,
        query_k=query_k,
    )
    cells = execute_cells(specs, base_seed=seed, jobs=jobs)
    return merge_grid(specs, cells)


def evaluate_parallel(
    mechanism,
    dataset: DatasetLike,
    epsilon: float,
    window: int,
    *,
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
    horizon: Optional[int] = None,
    jobs: Optional[int] = 1,
    tag: str = "evaluate",
    query_k: Optional[int] = None,
) -> CellResult:
    """One cell, with its repeats optionally split across workers.

    Bit-identical to :func:`repro.experiments.runner.evaluate` on the
    same coordinates: repeat ``i`` always runs with spawn child ``i`` of
    the cell seed, and the final average is taken in repeat order.
    """
    seed = as_seed_sequence(seed)
    spec = CellSpec(
        mechanism=mechanism,
        dataset=_pin_dataset_seed(dataset, seed, tag),
        epsilon=float(epsilon),
        window=int(window),
        oracle=oracle,
        repeats=repeats,
        with_roc=with_roc,
        horizon=horizon,
        tag=tag,
        query_k=query_k,
    )
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or repeats <= 1:
        return run_cell(spec, seed)
    repeat_specs = [
        replace(spec, repeats=1, repeat_index=i) for i in range(repeats)
    ]
    cells = execute_cells(repeat_specs, base_seed=seed, jobs=jobs)
    return merge_repeat_cells(cells)
