"""Plain-text rendering of experiment series — the "figures" of this repo.

Every generator in :mod:`repro.experiments.figures` / ``tables`` returns
nested dicts; these helpers format them as aligned text tables so bench
output reads like the paper's figures (one row per method, one column per
x-value).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..analysis.monitoring import ROCCurve


def format_series_table(
    series: Mapping[str, Mapping[float, float]],
    x_label: str = "x",
    value_format: str = "{:.4f}",
    title: Optional[str] = None,
) -> str:
    """Render ``{method: {x: value}}`` as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    xs = sorted({x for per_method in series.values() for x in per_method})
    header = [x_label.ljust(12)] + [f"{x:g}".rjust(10) for x in xs]
    lines.append(" ".join(header))
    for method, per_x in series.items():
        row = [str(method).ljust(12)]
        for x in xs:
            value = per_x.get(x)
            row.append(
                (value_format.format(value) if value is not None else "-").rjust(10)
            )
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_figure(
    figure: Mapping[str, Mapping[str, Mapping[float, float]]],
    x_label: str = "x",
    value_format: str = "{:.4f}",
) -> str:
    """Render ``{panel: {method: {x: value}}}`` (one table per panel)."""
    blocks = [
        format_series_table(
            methods, x_label=x_label, value_format=value_format, title=f"== {panel} =="
        )
        for panel, methods in figure.items()
    ]
    return "\n\n".join(blocks)


def format_roc_summary(
    curves: Mapping[str, Mapping[str, ROCCurve]]
) -> str:
    """Render Fig. 7 output as an AUC table (dataset × method)."""
    datasets = list(curves)
    methods: Sequence[str] = list(next(iter(curves.values())).keys()) if curves else []
    lines = ["AUC".ljust(12) + " " + " ".join(m.rjust(8) for m in methods)]
    for name in datasets:
        row = [name.ljust(12)]
        for method in methods:
            curve = curves[name].get(method)
            row.append((f"{curve.auc:.4f}" if curve is not None else "-").rjust(8))
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_table2(
    table: Mapping[tuple, Mapping[str, Mapping[str, float]]],
    paper: Optional[Mapping[tuple, Mapping[str, Mapping[str, float]]]] = None,
) -> str:
    """Render Table 2 blocks, optionally side by side with paper values."""
    blocks = []
    for (epsilon, window), methods in table.items():
        datasets = list(next(iter(methods.values())).keys())
        lines = [f"== eps={epsilon:g}, w={window} =="]
        lines.append("method".ljust(8) + " " + " ".join(d.rjust(12) for d in datasets))
        for method, per_dataset in methods.items():
            row = [method.ljust(8)]
            for name in datasets:
                measured = per_dataset[name]
                if paper is not None:
                    reference = paper[(epsilon, window)][method][name]
                    row.append(f"{measured:.4f}/{reference:.4f}".rjust(12))
                else:
                    row.append(f"{measured:.4f}".rjust(12))
            lines.append(" ".join(row))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
