"""Experiment runner: evaluate mechanisms over parameter grids.

The figure/table generators in :mod:`repro.experiments.figures` and
:mod:`repro.experiments.tables` are thin loops over :func:`evaluate`,
which runs one (mechanism, dataset, epsilon, window) cell — optionally
averaged over repeats with distinct seeds — and returns every metric of
Section 7.1.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from ..analysis import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    monitoring_roc,
)
from ..engine import SessionResult, run_stream
from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from ..streams.base import GenerativeStream, StreamDataset


@dataclass
class CellResult:
    """Averaged metrics for one experiment grid cell."""

    mechanism: str
    epsilon: float
    window: int
    mre: float
    mae: float
    mse: float
    cfpu: float
    publication_rate: float
    auc: float = float("nan")
    repeats: int = 1

    def as_dict(self) -> Dict[str, float]:
        return {
            "mre": self.mre,
            "mae": self.mae,
            "mse": self.mse,
            "cfpu": self.cfpu,
            "publication_rate": self.publication_rate,
            "auc": self.auc,
        }


def _fresh_dataset(dataset: StreamDataset) -> StreamDataset:
    """Rewind generative streams so each repeat replays from t = 0."""
    if isinstance(dataset, GenerativeStream):
        dataset.reset()
    return dataset


def run_single(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    oracle="grr",
    seed: SeedLike = None,
    horizon: Optional[int] = None,
) -> SessionResult:
    """Run one session (rewinding generative streams first)."""
    return run_stream(
        mechanism,
        _fresh_dataset(dataset),
        epsilon=epsilon,
        window=window,
        horizon=horizon,
        oracle=oracle,
        seed=seed,
    )


def evaluate(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
    horizon: Optional[int] = None,
) -> CellResult:
    """Run ``repeats`` sessions and average all metrics."""
    if repeats < 1:
        raise InvalidParameterError(f"repeats must be >= 1, got {repeats}")
    rng = ensure_rng(seed)
    mres, maes, mses, cfpus, pub_rates, aucs = [], [], [], [], [], []
    for _ in range(repeats):
        run_seed = int(rng.integers(0, 2**31 - 1))
        result = run_single(
            mechanism,
            dataset,
            epsilon,
            window,
            oracle=oracle,
            seed=run_seed,
            horizon=horizon,
        )
        mres.append(mean_relative_error(result.releases, result.true_frequencies))
        maes.append(mean_absolute_error(result.releases, result.true_frequencies))
        mses.append(mean_squared_error(result.releases, result.true_frequencies))
        cfpus.append(result.cfpu)
        pub_rates.append(result.publication_rate)
        if with_roc:
            try:
                aucs.append(
                    monitoring_roc(result.releases, result.true_frequencies).auc
                )
            except InvalidParameterError:
                pass  # degenerate truth (no events); AUC stays NaN
    name = result.mechanism
    return CellResult(
        mechanism=name,
        epsilon=float(epsilon),
        window=int(window),
        mre=float(np.mean(mres)),
        mae=float(np.mean(maes)),
        mse=float(np.mean(mses)),
        cfpu=float(np.mean(cfpus)),
        publication_rate=float(np.mean(pub_rates)),
        auc=float(np.mean(aucs)) if aucs else float("nan"),
        repeats=repeats,
    )


def sweep(
    mechanisms: Iterable[str],
    dataset: StreamDataset,
    *,
    epsilons: Iterable[float] = (1.0,),
    windows: Iterable[int] = (20,),
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
) -> Dict[str, Dict[tuple, CellResult]]:
    """Full grid: mechanism × epsilon × window → :class:`CellResult`.

    Result keys are ``results[mechanism][(epsilon, window)]``.
    """
    rng = ensure_rng(seed)
    results: Dict[str, Dict[tuple, CellResult]] = {}
    for mechanism in mechanisms:
        per_cell: Dict[tuple, CellResult] = {}
        for epsilon in epsilons:
            for window in windows:
                per_cell[(epsilon, window)] = evaluate(
                    mechanism,
                    dataset,
                    epsilon,
                    window,
                    oracle=oracle,
                    seed=int(rng.integers(0, 2**31 - 1)),
                    repeats=repeats,
                    with_roc=with_roc,
                )
        results[str(mechanism)] = per_cell
    return results
