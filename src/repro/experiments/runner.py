"""Experiment runner: evaluate mechanisms over parameter grids.

The figure/table generators in :mod:`repro.experiments.figures` and
:mod:`repro.experiments.tables` are thin loops over :func:`evaluate`,
which runs one (mechanism, dataset, epsilon, window) cell — optionally
averaged over repeats with distinct seeds — and returns every metric of
Section 7.1.4.

Seeding discipline
------------------
Per-repeat randomness derives from ``numpy.random.SeedSequence.spawn`` of
the cell seed, never from sequential draws off a shared generator.  Spawn
children are prefix-stable (child ``i`` is the same whether 1 or ``n``
children are spawned), so any single repeat can be re-run in isolation —
this is what lets :mod:`repro.experiments.parallel` fan a grid out over
worker processes and still return bit-identical results to the serial
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..analysis import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    monitoring_roc,
)
from ..analysis.topk import topk_precision as _topk_precision
from ..engine import SessionResult, run_stream
from ..exceptions import InvalidParameterError
from ..rng import SeedLike, as_seed_sequence
from ..streams.base import GenerativeStream, StreamDataset


@dataclass
class CellResult:
    """Averaged metrics for one experiment grid cell.

    ``topk_precision`` is the query-level utility of the released stream
    — mean per-timestamp overlap between the released and true top-k
    heavy-hitter sets — populated when the cell ran with a ``query_k``
    (NaN otherwise).  Full-vector error (MRE/MAE/MSE) measures the whole
    histogram; top-k precision measures what a dashboard consumer of the
    query layer actually sees.
    """

    mechanism: str
    epsilon: float
    window: int
    mre: float
    mae: float
    mse: float
    cfpu: float
    publication_rate: float
    auc: float = float("nan")
    topk_precision: float = float("nan")
    repeats: int = 1

    def as_dict(self) -> Dict[str, float]:
        return {
            "mre": self.mre,
            "mae": self.mae,
            "mse": self.mse,
            "cfpu": self.cfpu,
            "publication_rate": self.publication_rate,
            "auc": self.auc,
            "topk_precision": self.topk_precision,
        }


def _fresh_dataset(dataset: StreamDataset) -> StreamDataset:
    """Rewind generative streams so each repeat replays from t = 0."""
    if isinstance(dataset, GenerativeStream):
        dataset.reset()
    return dataset


def repeat_seed_sequences(
    seed: SeedLike, repeats: int
) -> List[np.random.SeedSequence]:
    """The per-repeat seed sequences :func:`evaluate` uses for ``seed``.

    Children are prefix-stable: ``repeat_seed_sequences(s, n)[i]`` equals
    ``repeat_seed_sequences(s, m)[i]`` for any ``n, m > i``, so individual
    repeats can be re-executed (or farmed out to workers) independently.
    """
    return as_seed_sequence(seed).spawn(repeats)


def run_single(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    oracle="grr",
    seed: SeedLike = None,
    horizon: Optional[int] = None,
) -> SessionResult:
    """Run one session (rewinding generative streams first)."""
    return run_stream(
        mechanism,
        _fresh_dataset(dataset),
        epsilon=epsilon,
        window=window,
        horizon=horizon,
        oracle=oracle,
        seed=seed,
    )


def evaluate(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
    horizon: Optional[int] = None,
    query_k: Optional[int] = None,
) -> CellResult:
    """Run ``repeats`` sessions and average all metrics.

    ``query_k`` additionally scores the released stream's top-``k``
    heavy-hitter precision (query-level utility); it is pure
    post-processing of the trace, so setting it never changes any other
    metric or any random draw.
    """
    if repeats < 1:
        raise InvalidParameterError(f"repeats must be >= 1, got {repeats}")
    children = repeat_seed_sequences(seed, repeats)
    cells = [
        _evaluate_one(
            mechanism,
            dataset,
            epsilon,
            window,
            oracle=oracle,
            seed_seq=child,
            with_roc=with_roc,
            horizon=horizon,
            query_k=query_k,
        )
        for child in children
    ]
    return merge_repeat_cells(cells)


def evaluate_repeat(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    index: int,
    oracle="grr",
    seed: SeedLike = None,
    with_roc: bool = False,
    horizon: Optional[int] = None,
    query_k: Optional[int] = None,
) -> CellResult:
    """Run repeat ``index`` of the cell :func:`evaluate` would run.

    Uses exactly the seed sequence repeat ``index`` gets inside
    :func:`evaluate`, so averaging ``evaluate_repeat(i)`` for
    ``i = 0..n-1`` with :func:`merge_repeat_cells` is bit-identical to
    ``evaluate(..., repeats=n)``.
    """
    if index < 0:
        raise InvalidParameterError(f"repeat index must be >= 0, got {index}")
    child = repeat_seed_sequences(seed, index + 1)[index]
    return _evaluate_one(
        mechanism,
        dataset,
        epsilon,
        window,
        oracle=oracle,
        seed_seq=child,
        with_roc=with_roc,
        horizon=horizon,
        query_k=query_k,
    )


def _evaluate_one(
    mechanism,
    dataset: StreamDataset,
    epsilon: float,
    window: int,
    *,
    oracle,
    seed_seq: np.random.SeedSequence,
    with_roc: bool,
    horizon: Optional[int],
    query_k: Optional[int] = None,
) -> CellResult:
    """One repeat of a cell, seeded by an explicit SeedSequence."""
    result = run_single(
        mechanism,
        dataset,
        epsilon,
        window,
        oracle=oracle,
        seed=np.random.default_rng(seed_seq),
        horizon=horizon,
    )
    return cell_from_session(
        result, epsilon, window, with_roc=with_roc, query_k=query_k
    )


def cell_from_session(
    result: SessionResult,
    epsilon: float,
    window: int,
    *,
    with_roc: bool,
    query_k: Optional[int] = None,
) -> CellResult:
    """Compute one repeat's :class:`CellResult` from a finished session.

    This is the single place session traces turn into cell metrics; the
    serial evaluator and the shared-pass group executor both call it, so
    their outputs cannot drift apart.
    """
    auc = float("nan")
    if with_roc:
        try:
            auc = monitoring_roc(result.releases, result.true_frequencies).auc
        except InvalidParameterError:
            pass  # degenerate truth (no events); AUC stays NaN
    topk = float("nan")
    if query_k is not None:
        topk = _topk_precision(
            result.releases, result.true_frequencies, query_k
        )
    return CellResult(
        mechanism=result.mechanism,
        epsilon=float(epsilon),
        window=int(window),
        mre=mean_relative_error(result.releases, result.true_frequencies),
        mae=mean_absolute_error(result.releases, result.true_frequencies),
        mse=mean_squared_error(result.releases, result.true_frequencies),
        cfpu=result.cfpu,
        publication_rate=result.publication_rate,
        auc=auc,
        topk_precision=topk,
        repeats=1,
    )


def merge_repeat_cells(cells: List[CellResult]) -> CellResult:
    """Average per-repeat :class:`CellResult`\\ s into one cell.

    The inverse of splitting a cell's repeats across workers; NaN AUCs
    (ROC disabled or degenerate truth) are excluded from the AUC mean,
    matching the serial accumulation.
    """
    if not cells:
        raise InvalidParameterError("cannot merge an empty list of cells")
    first = cells[0]
    for cell in cells[1:]:
        if (
            cell.mechanism != first.mechanism
            or cell.epsilon != first.epsilon
            or cell.window != first.window
        ):
            raise InvalidParameterError(
                "merge_repeat_cells needs cells from one grid cell; got "
                f"{(cell.mechanism, cell.epsilon, cell.window)} vs "
                f"{(first.mechanism, first.epsilon, first.window)}"
            )
    aucs = [c.auc for c in cells if not np.isnan(c.auc)]
    topks = [
        c.topk_precision for c in cells if not np.isnan(c.topk_precision)
    ]
    return CellResult(
        mechanism=first.mechanism,
        epsilon=first.epsilon,
        window=first.window,
        mre=float(np.mean([c.mre for c in cells])),
        mae=float(np.mean([c.mae for c in cells])),
        mse=float(np.mean([c.mse for c in cells])),
        cfpu=float(np.mean([c.cfpu for c in cells])),
        publication_rate=float(np.mean([c.publication_rate for c in cells])),
        auc=float(np.mean(aucs)) if aucs else float("nan"),
        topk_precision=float(np.mean(topks)) if topks else float("nan"),
        repeats=sum(c.repeats for c in cells),
    )


def sweep(
    mechanisms: Iterable[str],
    dataset,
    *,
    epsilons: Iterable[float] = (1.0,),
    windows: Iterable[int] = (20,),
    oracle="grr",
    seed: SeedLike = None,
    repeats: int = 1,
    with_roc: bool = False,
    jobs: Optional[int] = 1,
    query_k: Optional[int] = None,
) -> Dict[str, Dict[tuple, CellResult]]:
    """Full grid: mechanism × epsilon × window → :class:`CellResult`.

    Result keys are ``results[mechanism][(epsilon, window)]``.

    ``dataset`` may be a live :class:`~repro.streams.base.StreamDataset`,
    a registry name (``"LNS"``), or a
    :class:`~repro.experiments.parallel.DatasetSpec`.  With ``jobs > 1``
    the grid fans out over worker processes; every cell's randomness is
    derived from ``seed`` and the cell's coordinates alone, so results
    are bit-identical to the serial path (and to any other worker count).
    ``query_k`` records per-cell top-k heavy-hitter precision (a pure
    trace post-processing step — it changes no random draw).
    """
    from .parallel import parallel_sweep

    return parallel_sweep(
        mechanisms,
        dataset,
        epsilons=epsilons,
        windows=windows,
        oracle=oracle,
        seed=seed,
        repeats=repeats,
        with_roc=with_roc,
        jobs=jobs,
        query_k=query_k,
    )
