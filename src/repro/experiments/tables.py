"""Table generators for Section 7 — Table 2 (CFPU comparison).

Table 2 reports the communication frequency per user of all seven methods
on five datasets (Sin, Log, Taxi, Foursquare, Taobao) for three parameter
settings: (eps=1, w=20), (eps=2, w=20), (eps=2, w=40).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..mechanisms import ALL_METHODS
from ..rng import SeedLike, as_seed_sequence, derive_seed
from .parallel import CellSpec, DatasetSpec, execute_cells

#: Datasets of Table 2 (paper order).
TABLE2_DATASETS = ("Sin", "Log", "Taxi", "Foursquare", "Taobao")
#: (epsilon, window) settings of Table 2's three blocks.
TABLE2_SETTINGS = ((1.0, 20), (2.0, 20), (2.0, 40))

#: Paper-reported CFPU values for shape checks ((eps, w) -> method -> dataset).
PAPER_TABLE2: Dict[Tuple[float, int], Dict[str, Dict[str, float]]] = {
    (1.0, 20): {
        "LBU": {d: 1.0 for d in TABLE2_DATASETS},
        "LBD": {
            "Sin": 1.2719, "Log": 1.2671, "Taxi": 1.2734,
            "Foursquare": 1.2733, "Taobao": 1.2962,
        },
        "LBA": {
            "Sin": 1.1709, "Log": 1.1687, "Taxi": 1.1685,
            "Foursquare": 1.1775, "Taobao": 1.1996,
        },
        "LSP": {d: 0.05 for d in TABLE2_DATASETS},
        "LPU": {d: 0.05 for d in TABLE2_DATASETS},
        "LPD": {
            "Sin": 0.0457, "Log": 0.0457, "Taxi": 0.0461,
            "Foursquare": 0.0458, "Taobao": 0.0467,
        },
        "LPA": {
            "Sin": 0.0404, "Log": 0.0403, "Taxi": 0.0406,
            "Foursquare": 0.0403, "Taobao": 0.0418,
        },
    },
    (2.0, 20): {
        "LBU": {d: 1.0 for d in TABLE2_DATASETS},
        "LBD": {
            "Sin": 1.2800, "Log": 1.2823, "Taxi": 1.2762,
            "Foursquare": 1.2692, "Taobao": 1.3243,
        },
        "LBA": {
            "Sin": 1.1731, "Log": 1.1737, "Taxi": 1.1682,
            "Foursquare": 1.1704, "Taobao": 1.2350,
        },
        "LSP": {d: 0.05 for d in TABLE2_DATASETS},
        "LPU": {d: 0.05 for d in TABLE2_DATASETS},
        "LPD": {
            "Sin": 0.0466, "Log": 0.0468, "Taxi": 0.0475,
            "Foursquare": 0.0468, "Taobao": 0.0475,
        },
        "LPA": {
            "Sin": 0.0414, "Log": 0.0413, "Taxi": 0.0425,
            "Foursquare": 0.0412, "Taobao": 0.0434,
        },
    },
    (2.0, 40): {
        "LBU": {d: 1.0 for d in TABLE2_DATASETS},
        "LBD": {
            "Sin": 1.2643, "Log": 1.2575, "Taxi": 1.2641,
            "Foursquare": 1.2487, "Taobao": 1.2771,
        },
        "LBA": {
            "Sin": 1.1729, "Log": 1.1676, "Taxi": 1.1755,
            "Foursquare": 1.1670, "Taobao": 1.2046,
        },
        "LSP": {d: 0.025 for d in TABLE2_DATASETS},
        "LPU": {d: 0.025 for d in TABLE2_DATASETS},
        "LPD": {
            "Sin": 0.0242, "Log": 0.0245, "Taxi": 0.0244,
            "Foursquare": 0.0245, "Taobao": 0.0245,
        },
        "LPA": {
            "Sin": 0.0206, "Log": 0.0207, "Taxi": 0.0210,
            "Foursquare": 0.0204, "Taobao": 0.0214,
        },
    },
}


def table2_cfpu(
    datasets: Sequence[str] = TABLE2_DATASETS,
    settings: Sequence[Tuple[float, int]] = TABLE2_SETTINGS,
    methods: Sequence[str] = ALL_METHODS,
    size: str = "default",
    seed: SeedLike = 0,
    jobs: Optional[int] = 1,
) -> Dict[Tuple[float, int], Dict[str, Dict[str, float]]]:
    """Regenerate Table 2: ``table[(eps, w)][method][dataset] = CFPU``.

    The settings × datasets × methods grid runs through the parallel
    engine; ``jobs=N`` fans it out with results identical to ``jobs=1``.
    """
    base = as_seed_sequence(seed)
    specs: List[CellSpec] = []
    coords: List[Tuple[Tuple[float, int], str, str]] = []
    for epsilon, window in settings:
        for name in datasets:
            dataset = DatasetSpec.of(
                name,
                size=size,
                seed=derive_seed(
                    base, "table2", name, float(epsilon), int(window)
                ),
            )
            for method in methods:
                specs.append(
                    CellSpec(
                        mechanism=method,
                        dataset=dataset,
                        epsilon=float(epsilon),
                        window=int(window),
                        tag="table2",
                    )
                )
                coords.append(((epsilon, window), method, name))
    cells = execute_cells(specs, base_seed=base, jobs=jobs)
    table: Dict[Tuple[float, int], Dict[str, Dict[str, float]]] = {
        (epsilon, window): {m: {} for m in methods}
        for epsilon, window in settings
    }
    for (setting, method, name), cell in zip(coords, cells):
        table[setting][method][name] = cell.cfpu
    return table
