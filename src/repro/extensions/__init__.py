"""Extensions beyond the paper's seven methods (Remark 3 realized):
population-division FAST (:class:`LPF`) and post-release smoothing."""

from .ldp_fast import LPF
from .smoothing import (
    adaptive_group_smoothing,
    exponential_smoothing,
    moving_average,
)

__all__ = [
    "LPF",
    "moving_average",
    "exponential_smoothing",
    "adaptive_group_smoothing",
]
