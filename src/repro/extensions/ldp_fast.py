"""LPF — population-division FAST for ``w``-event LDP (Remark 3 realized).

Remark 3 of the paper suggests that the population-division framework "can
be easily applied and extended to other state-of-the-art DP methods for
streams, such as FAST".  This module does exactly that:

* **sampling**: at PID-chosen sampling timestamps, a fresh disjoint group
  of users (at most ``⌊N/w⌋``, so any window touches each user at most
  once) reports through the FO with the *entire* budget ``eps``;
* **filtering**: a scalar Kalman filter per histogram cell fuses the noisy
  FO estimate with the random-walk prediction, exactly as in FAST, with
  the measurement variance given by the FO's closed form ``V(eps, |U_t|)``;
* **adaptive sampling**: the PID controller of
  :class:`repro.cdp.fast.PIDController` adjusts the sampling interval from
  the filters' innovation gain.

Privacy: identical argument to LPU — every user reports at most once per
window with ``eps``-LDP, so the mechanism is ``w``-event ``eps``-LDP
(parallel composition; enforced at runtime by the engine's accountant).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cdp.fast import PIDController, ScalarKalmanFilter
from ..engine.collector import TimestepContext
from ..engine.population import UserPool
from ..engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ..exceptions import InvalidParameterError
from ..mechanisms.base import StreamMechanism, register_mechanism


@register_mechanism
class LPF(StreamMechanism):
    """LDP Population FAST: PID-adaptive sampling + Kalman filtering.

    Parameters
    ----------
    process_variance:
        Kalman process noise ``q`` (per-cell random-walk step variance).
    pid:
        Sampling-interval controller; defaults to FAST's gains.
    max_interval:
        Upper bound on the adaptive sampling interval, in timestamps.
    """

    name = "LPF"
    adaptive = True
    framework = "population"

    def __init__(
        self,
        process_variance: float = 1e-5,
        pid: Optional[PIDController] = None,
        max_interval: float = 64.0,
    ):
        super().__init__()
        if process_variance <= 0:
            raise InvalidParameterError("process_variance must be positive")
        self.process_variance = float(process_variance)
        self.pid = pid if pid is not None else PIDController()
        self.max_interval = float(max_interval)

    def _setup(self) -> None:
        self._group_size = self.n_users // self.window
        if self._group_size < 1:
            raise InvalidParameterError(
                f"LPF needs N >= w users (N={self.n_users}, w={self.window})"
            )
        self._pool = UserPool(self.n_users, seed=self.rng)
        self._history: Dict[int, np.ndarray] = {}
        self._filters: Optional[list[ScalarKalmanFilter]] = None
        self._interval = 1.0
        self._next_sample = 0.0

    def _state(self) -> dict:
        return {
            "process_variance": self.process_variance,
            "max_interval": self.max_interval,
            "pid": {
                "kp": self.pid.kp,
                "ki": self.pid.ki,
                "kd": self.pid.kd,
                "setpoint": self.pid.setpoint,
                "integral": self.pid._integral,
                "last_error": self.pid._last_error,
            },
            "group_size": self._group_size,
            "pool": self._pool.state_dict(),
            "history": [
                (t, ids.copy()) for t, ids in sorted(self._history.items())
            ],
            "filters": (
                None
                if self._filters is None
                else [(f.x, f.p, f.q, f.r) for f in self._filters]
            ),
            "interval": self._interval,
            "next_sample": self._next_sample,
        }

    def _load_state(self, state: dict) -> None:
        self.process_variance = float(state["process_variance"])
        self.max_interval = float(state["max_interval"])
        pid = state["pid"]
        self.pid = PIDController(
            kp=float(pid["kp"]),
            ki=float(pid["ki"]),
            kd=float(pid["kd"]),
            setpoint=float(pid["setpoint"]),
        )
        self.pid._integral = float(pid["integral"])
        self.pid._last_error = float(pid["last_error"])
        self._group_size = int(state["group_size"])
        self._pool.load_state(state["pool"])
        self._history = {
            int(t): np.asarray(ids, dtype=np.int64)
            for t, ids in state["history"]
        }
        if state["filters"] is None:
            self._filters = None
        else:
            filters = []
            for x, p, q, r in state["filters"]:
                f = ScalarKalmanFilter(float(q), float(r))
                f.x = float(x)
                f.p = float(p)
                filters.append(f)
            self._filters = filters
        self._interval = float(state["interval"])
        self._next_sample = float(state["next_sample"])

    def _ensure_filters(self, measurement_variance: float) -> None:
        if self._filters is None:
            self._filters = [
                ScalarKalmanFilter(self.process_variance, measurement_variance)
                for _ in range(self.domain_size)
            ]
        else:
            for f in self._filters:
                f.r = measurement_variance

    def step(self, ctx: TimestepContext) -> StepRecord:
        sampled = np.empty(0, dtype=np.int64)
        if ctx.t >= self._next_sample and self._pool.n_available >= self._group_size:
            sampled = self._pool.sample(self._group_size)
            estimate = ctx.collect(self.epsilon, user_ids=sampled)
            self._ensure_filters(estimate.variance)
            assert self._filters is not None
            for f in self._filters:
                f.predict()
            release = np.array(
                [
                    f.correct(z)
                    for f, z in zip(self._filters, estimate.frequencies)
                ]
            )
            feedback = float(
                np.mean([f.innovation_gain for f in self._filters])
            )
            control = self.pid.update(feedback)
            self._interval = float(
                np.clip(self._interval + control * self._interval, 1.0, self.max_interval)
            )
            self._next_sample = ctx.t + self._interval
            self.last_release = release
            record = StepRecord(
                t=ctx.t,
                release=release,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=self.epsilon,
                publication_users=estimate.n_reports,
                reports=estimate.n_reports,
            )
        else:
            if self._filters is not None:
                for f in self._filters:
                    f.predict()
                release = np.array([f.x for f in self._filters])
            else:
                release = self.last_release
            self.last_release = release
            record = StepRecord(
                t=ctx.t, release=release, strategy=STRATEGY_APPROXIMATE
            )

        self._history[ctx.t] = sampled
        expired = ctx.t - self.window + 1
        if expired >= 0:
            self._pool.recycle(self._history.pop(expired))
        return record
