"""Post-release smoothing for LDP streams (PeGaSus-style, Remark 3).

Smoothing a released stream is pure post-processing, so it never costs
privacy.  These helpers shrink the per-timestamp LDP noise on stable
segments, trading a little lag around change points — useful on top of the
high-noise budget-division methods in particular.

* :func:`moving_average` — fixed-width trailing mean;
* :func:`exponential_smoothing` — EWMA with configurable decay;
* :func:`adaptive_group_smoothing` — PeGaSus' Smoother applied to an LDP
  trace: grow a group while the released values stay within a noise-scaled
  deviation, average within groups.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError


def moving_average(releases: np.ndarray, width: int) -> np.ndarray:
    """Trailing moving average over the time axis of a (T, d) trace."""
    if width < 1:
        raise InvalidParameterError(f"width must be >= 1, got {width}")
    trace = np.asarray(releases, dtype=np.float64)
    if trace.ndim != 2:
        raise InvalidParameterError("releases must be (T, d)")
    out = np.empty_like(trace)
    cumulative = np.cumsum(trace, axis=0)
    for t in range(trace.shape[0]):
        start = max(0, t - width + 1)
        total = cumulative[t] - (cumulative[start - 1] if start > 0 else 0.0)
        out[t] = total / (t - start + 1)
    return out


def exponential_smoothing(releases: np.ndarray, alpha: float) -> np.ndarray:
    """EWMA: ``s_t = alpha * r_t + (1 - alpha) * s_{t-1}``."""
    if not 0.0 < alpha <= 1.0:
        raise InvalidParameterError(f"alpha must be in (0, 1], got {alpha}")
    trace = np.asarray(releases, dtype=np.float64)
    if trace.ndim != 2:
        raise InvalidParameterError("releases must be (T, d)")
    out = np.empty_like(trace)
    out[0] = trace[0]
    for t in range(1, trace.shape[0]):
        out[t] = alpha * trace[t] + (1.0 - alpha) * out[t - 1]
    return out


def adaptive_group_smoothing(
    releases: np.ndarray, noise_std: float, z: float = 2.0
) -> np.ndarray:
    """PeGaSus-style grouping on a released LDP trace.

    Grows a group while every released value in it stays within
    ``z * noise_std`` of the group's running mean (i.e. the variation is
    explained by noise alone), then replaces the group by its mean.  This
    is deterministic post-processing of the private trace: no privacy cost.
    """
    if noise_std <= 0:
        raise InvalidParameterError(f"noise_std must be positive, got {noise_std}")
    trace = np.asarray(releases, dtype=np.float64)
    if trace.ndim != 2:
        raise InvalidParameterError("releases must be (T, d)")
    horizon, d = trace.shape
    out = np.empty_like(trace)
    tolerance = z * noise_std
    for k in range(d):
        start = 0
        for t in range(horizon):
            group = trace[start : t + 1, k]
            if np.abs(group - group.mean()).max() > tolerance or t == horizon - 1:
                out[start : t + 1, k] = group.mean()
                start = t + 1
        if start < horizon:
            out[start:, k] = trace[start:, k].mean()
    return out
