"""LDP frequency oracles (Section 3.4 substrate).

Public surface:

* :class:`FrequencyOracle` — the oracle interface (perturb / aggregate /
  count-level ``sample_aggregate`` / closed-form ``variance``).
* Concrete oracles: :class:`GRR`, :class:`OUE`, :class:`OLH`, :class:`SUE`,
  all registered by name for :func:`get_oracle`.
* :mod:`~repro.freq_oracles.variance` — closed-form ``V(eps, n)`` helpers.
* :mod:`~repro.freq_oracles.postprocess` — consistency post-processing.
"""

from .base import (
    FOEstimate,
    FrequencyOracle,
    available_oracles,
    get_oracle,
    register_oracle,
)
from .grr import GRR, grr_probabilities
from .hadamard import HadamardResponse, hadamard_order, hr_probability
from .olh import OLH, olh_hash_range
from .oue import OUE, oue_probabilities
from .postprocess import (
    clip,
    get_postprocessor,
    norm_sub,
    normalize,
    project_simplex,
)
from .sue import SUE, sue_probabilities
from .variance import (
    grr_cell_variance,
    grr_mean_variance,
    laplace_mean_variance,
    olh_mean_variance,
    oue_mean_variance,
    sue_mean_variance,
)

__all__ = [
    "FOEstimate",
    "FrequencyOracle",
    "available_oracles",
    "get_oracle",
    "register_oracle",
    "GRR",
    "OUE",
    "OLH",
    "SUE",
    "HadamardResponse",
    "hadamard_order",
    "hr_probability",
    "grr_probabilities",
    "oue_probabilities",
    "sue_probabilities",
    "olh_hash_range",
    "grr_cell_variance",
    "grr_mean_variance",
    "oue_mean_variance",
    "sue_mean_variance",
    "olh_mean_variance",
    "laplace_mean_variance",
    "clip",
    "normalize",
    "norm_sub",
    "project_simplex",
    "get_postprocessor",
]
