"""Frequency-oracle (FO) abstraction.

A frequency oracle is the LDP building block used throughout the paper
(Section 3.4): each user holds a private value ``v`` in a categorical domain
of size ``d`` and sends a randomized report; the aggregator turns the set of
reports into an unbiased estimate of the value-frequency histogram.

Two execution paths are provided by every oracle:

``perturb``
    Per-user simulation: maps an array of true values to an array of
    reports.  This is the literal protocol and is used in unit and property
    tests, and anywhere per-user artefacts matter.

``sample_aggregate``
    Count-level simulation: directly samples the aggregator's *perturbed
    count vector* from its exact sampling distribution (sums of independent
    Bernoullis become binomials/multinomials).  Statistically identical to
    running ``perturb`` + counting, but orders of magnitude faster for the
    large populations in the paper's experiments.  Property tests in
    ``tests/property/test_fo_equivalence.py`` check the two paths agree.

Both paths end in :meth:`FrequencyOracle.estimate`, the standard unbiased
debiasing ``(c'/n - q) / (p - q)`` (Section 3.4).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, Optional, Type

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FOEstimate:
    """Result of one frequency-oracle aggregation round.

    Attributes
    ----------
    frequencies:
        Unbiased estimate of the *reporting group's* value frequencies, one
        entry per domain element.  Not clipped and not normalised; see
        :mod:`repro.freq_oracles.postprocess` for consistency steps.
    n_reports:
        Number of users that contributed a report.
    epsilon:
        Per-report LDP budget used for this round.
    variance:
        Closed-form per-cell estimation variance, averaged over the domain,
        using the frequency-independent approximation of Eq. (2).
    supports:
        The round's *sufficient statistic*: the perturbed support-count
        vector the estimate was debiased from (``None`` on estimates
        built before support tracking, e.g. hand-constructed ones).
        Supports are additive across disjoint reporting groups — summing
        shard supports and re-debiasing reproduces the whole-group
        estimate bit-for-bit, which is what makes collection rounds
        shard-mergeable (see :meth:`repro.engine.collector.Collector.merge`).
    """

    frequencies: np.ndarray
    n_reports: int
    epsilon: float
    variance: float
    supports: Optional[np.ndarray] = None

    @property
    def domain_size(self) -> int:
        return int(self.frequencies.shape[0])


class FrequencyOracle(abc.ABC):
    """Abstract base class for LDP frequency oracles over ``{0, ..., d-1}``.

    Subclasses implement a specific randomized-response encoding.  Oracles
    are stateless with respect to data: domain size and budget are passed per
    call, so a single oracle instance can serve every round of a streaming
    session (where the budget varies between rounds under budget division).
    """

    #: Registry name, e.g. ``"grr"``; set by subclasses.
    name: str = ""

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def perturb(
        self,
        values: np.ndarray,
        domain_size: int,
        epsilon: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Perturb an integer array of true values; return per-user reports.

        The report representation is oracle specific (a value for GRR, a bit
        vector row for unary encodings) but is always consumable by
        :meth:`aggregate`.
        """

    @abc.abstractmethod
    def aggregate(
        self,
        reports: np.ndarray,
        domain_size: int,
        epsilon: float,
    ) -> FOEstimate:
        """Debias per-user reports into an unbiased frequency estimate."""

    # ------------------------------------------------------------------
    # Sufficient statistics (shard mergeability)
    # ------------------------------------------------------------------
    # Every oracle in this library estimates frequencies as an affine map
    # of an integer *support-count* vector: ``f = (c/n - q) / (p - q)``
    # with oracle-specific constants ``(p, q)``.  The support counts of a
    # union of report sets are the integer sums of the per-set counts, so
    # exposing the two halves of ``aggregate`` separately makes collection
    # rounds mergeable across population shards with *no* loss:
    # ``estimate_from_supports(sum of shard supports)`` is bit-identical
    # to aggregating the whole population's reports in one process.

    def support_probabilities(
        self, epsilon: float, domain_size: int
    ) -> tuple[float, float]:
        """The ``(p, q)`` constants of this oracle's support-count debias.

        ``p`` is the probability a report supports its owner's value,
        ``q`` the probability it supports any other fixed value (for HR
        the baseline is exactly 1/2 by Hadamard orthogonality).

        Not abstract so minimal third-party subclasses keep working; all
        five built-in oracles implement it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose support probabilities"
        )

    def aggregate_supports(
        self,
        reports: np.ndarray,
        domain_size: int,
        epsilon: float,
    ) -> np.ndarray:
        """Integer support-count vector of a report set (length ``d``).

        This is the additive half of :meth:`aggregate`: supports of
        disjoint report sets sum exactly (they are integers), and
        :meth:`estimate_from_supports` turns a (summed) vector back into
        the estimate :meth:`aggregate` would have produced for the union.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not decompose aggregation into "
            f"support counts"
        )

    def estimate_from_supports(
        self,
        supports: np.ndarray,
        n_reports: int,
        domain_size: int,
        epsilon: float,
    ) -> FOEstimate:
        """Debias a support-count vector into an :class:`FOEstimate`.

        Composes with :meth:`aggregate_supports`: for every oracle,
        ``aggregate(reports, d, eps)`` equals
        ``estimate_from_supports(aggregate_supports(reports, d, eps),
        len(reports), d, eps)`` bit-for-bit — same floating-point
        expressions on the same integers.
        """
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        supports = np.asarray(supports, dtype=np.float64)
        if supports.shape != (domain_size,):
            raise InvalidParameterError(
                f"supports must have shape ({domain_size},), got "
                f"{supports.shape}"
            )
        n = int(n_reports)
        p, q = self.support_probabilities(epsilon, domain_size)
        freqs = self._debias(supports, n, p, q)
        return FOEstimate(
            frequencies=freqs,
            n_reports=n,
            epsilon=epsilon,
            variance=self.variance(epsilon, n, domain_size),
            supports=supports,
        )

    @abc.abstractmethod
    def sample_aggregate(
        self,
        true_counts: np.ndarray,
        epsilon: float,
        rng: SeedLike = None,
    ) -> FOEstimate:
        """Sample an aggregation outcome directly from true per-value counts.

        ``true_counts`` is the exact histogram of the reporting group's
        values (length ``d``, sums to the group size).  The returned
        estimate is distributed exactly as ``aggregate(perturb(...))``.
        """

    def sample_aggregate_batch(
        self,
        true_counts: np.ndarray,
        epsilon: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Sample many aggregation outcomes at once from a count matrix.

        ``true_counts`` is a ``(B, d)`` matrix — one exact value
        histogram per round (rows may have different totals).  Returns
        the ``(B, d)`` matrix of unbiased frequency estimates, row ``b``
        distributed exactly as ``sample_aggregate(true_counts[b], ...)``.

        The base implementation loops row by row; OUE/SUE/GRR override
        it with single batched binomial/multinomial draws.  This is a
        standalone offline/replay API — e.g. for sampling estimates over
        whole count blocks in analysis or benchmarking code — the
        streaming engine itself still samples one collection round at a
        time, because mechanisms decide each round adaptively.
        """
        counts = self._check_batch_counts(true_counts)
        rng = ensure_rng(rng)
        return np.stack(
            [
                self.sample_aggregate(row, epsilon, rng=rng).frequencies
                for row in counts
            ]
        )

    def sample_aggregate_run(
        self,
        true_counts: np.ndarray,
        epsilon: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Sample a *run* of consecutive rounds, replaying the per-round
        draw order exactly.

        Like :meth:`sample_aggregate_batch`, ``true_counts`` is a
        ``(B, d)`` matrix of exact per-round value histograms and the
        result is the ``(B, d)`` matrix of unbiased frequency estimates.
        The contract is stronger, though: the output is **bit-identical**
        to calling :meth:`sample_aggregate` row by row on the same
        generator — the run consumes the generator's bitstream in the
        same element order the streaming engine's per-round loop would.
        This is what lets the chunked ingestion path
        (:meth:`repro.engine.session.StreamSession.observe_many`) batch
        whole spans of collection rounds without changing a single
        released float.

        The base implementation is literally the sequential loop.
        Subclasses whose per-round sampler has a fixed draw structure
        override it: OLH/HR delegate to their (already order-preserving)
        batch samplers, OUE/SUE interleave their two binomials into one
        ``(B, 2, d)`` element-ordered draw, and GRR hoists the per-round
        setup out of a tight loop (its binomial/multinomial interleaving
        cannot be merged across rounds).
        """
        counts = self._check_batch_counts(true_counts)
        rng = ensure_rng(rng)
        if counts.shape[0] == 0:
            return np.empty((0, counts.shape[1]), dtype=np.float64)
        return np.stack(
            [
                self.sample_aggregate(row, epsilon, rng=rng).frequencies
                for row in counts
            ]
        )

    def run_sampler(self, epsilon: float, domain_size: int):
        """Build a prepared *run* sampler for a fixed budget.

        Returns a callable ``sample(true_counts, rng) -> (B, d)`` that is
        **bit-identical** to
        ``sample_aggregate_run(true_counts, epsilon, rng=rng)`` — same
        generator draws in the same element order, same floating-point
        expressions — with every run-invariant (parameter validation,
        the ``(p, q)`` debias constants, probability planes, GRR's
        liar-spread matrix) hoisted out of the per-chunk path.  The
        collector memoizes one prepared sampler per budget
        (:meth:`repro.engine.collector.Collector.run_sampler`), so the
        oracle's affine setup runs once per session instead of once per
        chunk.
        """
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)

        def sample(true_counts: np.ndarray, rng) -> np.ndarray:
            return self.sample_aggregate_run(true_counts, epsilon, rng=rng)

        return sample

    def sample_aggregate_run_stacked(
        self,
        true_counts: np.ndarray,
        epsilons,
        rngs,
    ) -> np.ndarray:
        """Run-sample ``S`` private sessions over one shared count block.

        ``true_counts`` is the shared ``(B, d)`` block of exact per-round
        value histograms; ``epsilons[s]`` and ``rngs[s]`` are session
        ``s``'s per-round budget and **private** generator (``epsilons``
        may also be a scalar applied to every layer).  Returns an
        ``(S, B, d)`` stack whose layer ``s`` is **bit-identical** to
        ``sample_aggregate_run(true_counts, epsilons[s], rng=rngs[s])``:
        each layer's draws come from its own generator only, so stacking
        sessions shares *arrays* (the count block, trial stacks,
        probability planes) but never randomness.  This is the kernel the
        SoA scheduler (:mod:`repro.engine.soa`) drives a whole bucket of
        fused sessions through.

        The base implementation is the per-session loop; subclasses hoist
        the budget-independent draw scaffolding (OUE/SUE/OLH/HR build the
        ``(B, 2, d)`` trial stack once for every session, GRR builds its
        liar-spread matrix once) and cache per-distinct-budget constants.
        """
        counts = self._check_batch_counts(true_counts)
        rngs = list(rngs)
        epsilons = self._stack_epsilons(epsilons, len(rngs))
        out = np.empty(
            (len(rngs), counts.shape[0], counts.shape[1]), dtype=np.float64
        )
        for s, (eps, rng) in enumerate(zip(epsilons, rngs)):
            out[s] = self.sample_aggregate_run(counts, eps, rng=rng)
        return out

    @staticmethod
    def _stack_epsilons(epsilons, n_sessions: int) -> list:
        """Normalise a scalar-or-sequence budget spec to one per session."""
        if isinstance(epsilons, (int, float)):
            return [float(epsilons)] * n_sessions
        epsilons = [float(eps) for eps in epsilons]
        if len(epsilons) != n_sessions:
            raise InvalidParameterError(
                f"got {len(epsilons)} epsilons for {n_sessions} sessions"
            )
        return epsilons

    def round_sampler(self, epsilon: float, domain_size: int):
        """Build a prepared single-round sampler for a fixed budget.

        Returns a callable ``sample(true_counts, rng) -> frequencies``
        that is **bit-identical** to
        ``sample_aggregate(true_counts, epsilon, rng=rng).frequencies``
        — same generator draws in the same order, same floating-point
        expressions — with every round-invariant (parameter validation,
        probability constants, GRR's liar-spread matrix) hoisted out of
        the per-round path.  The adaptive population kernels (LPD/LPA)
        lean on this: their pool draws interleave with the oracle draws
        on the shared generator, so rounds cannot batch, and the per-call
        setup becomes the dominant cost worth hoisting.

        ``domain_size`` is the fixed domain every round will use; counts
        passed to the sampler must have exactly that length.
        """
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)

        def sample(true_counts: np.ndarray, rng) -> np.ndarray:
            return self.sample_aggregate(true_counts, epsilon, rng=rng).frequencies

        return sample

    @staticmethod
    def _check_batch_counts(true_counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(true_counts, dtype=np.int64)
        if counts.ndim != 2:
            raise InvalidParameterError(
                f"true_counts must be a (B, d) matrix, got shape {counts.shape}"
            )
        if counts.size and counts.min() < 0:
            raise InvalidParameterError("true_counts must be non-negative")
        return counts

    # ------------------------------------------------------------------
    # Closed-form error model
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def variance(self, epsilon: float, n: int, domain_size: int) -> float:
        """Mean per-cell estimation variance ``V(eps, n)``.

        This is the frequency-independent form of Eq. (2) (the ``f_k`` term
        enters with weight ``(1/d)·Σf_k = 1/d``), used to predict the
        *potential publication error* before any data is collected
        (Section 5.3.2).
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_epsilon(epsilon: float) -> float:
        if not (isinstance(epsilon, (int, float)) and math.isfinite(epsilon)):
            raise InvalidParameterError(f"epsilon must be finite, got {epsilon!r}")
        if epsilon <= 0:
            raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
        return float(epsilon)

    @staticmethod
    def _check_domain(domain_size: int) -> int:
        if domain_size < 2:
            raise InvalidParameterError(
                f"domain_size must be at least 2, got {domain_size}"
            )
        return int(domain_size)

    @staticmethod
    def _check_values(values: np.ndarray, domain_size: int) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise InvalidParameterError("values must be a 1-D integer array")
        if values.size and (values.min() < 0 or values.max() >= domain_size):
            raise InvalidParameterError(
                "values contain entries outside [0, domain_size)"
            )
        return values.astype(np.int64, copy=False)

    @staticmethod
    def _debias(
        perturbed_counts: np.ndarray, n: int, p: float, q: float
    ) -> np.ndarray:
        """Standard unbiased FO estimator ``(c'/n - q) / (p - q)``."""
        if n <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        return (perturbed_counts / n - q) / (p - q)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[FrequencyOracle]] = {}


def register_oracle(cls: Type[FrequencyOracle]) -> Type[FrequencyOracle]:
    """Class decorator adding an oracle to the by-name registry."""
    if not cls.name:
        raise InvalidParameterError(f"{cls.__name__} must define a name")
    _REGISTRY[cls.name] = cls
    return cls


def get_oracle(name_or_instance) -> FrequencyOracle:
    """Resolve an oracle by registry name, class, or pass an instance through."""
    if isinstance(name_or_instance, FrequencyOracle):
        return name_or_instance
    if isinstance(name_or_instance, type) and issubclass(
        name_or_instance, FrequencyOracle
    ):
        return name_or_instance()
    try:
        return _REGISTRY[str(name_or_instance).lower()]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown frequency oracle {name_or_instance!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def available_oracles() -> list[str]:
    """Names of all registered frequency oracles."""
    return sorted(_REGISTRY)
