"""Frequency-oracle (FO) abstraction.

A frequency oracle is the LDP building block used throughout the paper
(Section 3.4): each user holds a private value ``v`` in a categorical domain
of size ``d`` and sends a randomized report; the aggregator turns the set of
reports into an unbiased estimate of the value-frequency histogram.

Two execution paths are provided by every oracle:

``perturb``
    Per-user simulation: maps an array of true values to an array of
    reports.  This is the literal protocol and is used in unit and property
    tests, and anywhere per-user artefacts matter.

``sample_aggregate``
    Count-level simulation: directly samples the aggregator's *perturbed
    count vector* from its exact sampling distribution (sums of independent
    Bernoullis become binomials/multinomials).  Statistically identical to
    running ``perturb`` + counting, but orders of magnitude faster for the
    large populations in the paper's experiments.  Property tests in
    ``tests/property/test_fo_equivalence.py`` check the two paths agree.

Both paths end in :meth:`FrequencyOracle.estimate`, the standard unbiased
debiasing ``(c'/n - q) / (p - q)`` (Section 3.4).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, Type

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FOEstimate:
    """Result of one frequency-oracle aggregation round.

    Attributes
    ----------
    frequencies:
        Unbiased estimate of the *reporting group's* value frequencies, one
        entry per domain element.  Not clipped and not normalised; see
        :mod:`repro.freq_oracles.postprocess` for consistency steps.
    n_reports:
        Number of users that contributed a report.
    epsilon:
        Per-report LDP budget used for this round.
    variance:
        Closed-form per-cell estimation variance, averaged over the domain,
        using the frequency-independent approximation of Eq. (2).
    """

    frequencies: np.ndarray
    n_reports: int
    epsilon: float
    variance: float

    @property
    def domain_size(self) -> int:
        return int(self.frequencies.shape[0])


class FrequencyOracle(abc.ABC):
    """Abstract base class for LDP frequency oracles over ``{0, ..., d-1}``.

    Subclasses implement a specific randomized-response encoding.  Oracles
    are stateless with respect to data: domain size and budget are passed per
    call, so a single oracle instance can serve every round of a streaming
    session (where the budget varies between rounds under budget division).
    """

    #: Registry name, e.g. ``"grr"``; set by subclasses.
    name: str = ""

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def perturb(
        self,
        values: np.ndarray,
        domain_size: int,
        epsilon: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Perturb an integer array of true values; return per-user reports.

        The report representation is oracle specific (a value for GRR, a bit
        vector row for unary encodings) but is always consumable by
        :meth:`aggregate`.
        """

    @abc.abstractmethod
    def aggregate(
        self,
        reports: np.ndarray,
        domain_size: int,
        epsilon: float,
    ) -> FOEstimate:
        """Debias per-user reports into an unbiased frequency estimate."""

    @abc.abstractmethod
    def sample_aggregate(
        self,
        true_counts: np.ndarray,
        epsilon: float,
        rng: SeedLike = None,
    ) -> FOEstimate:
        """Sample an aggregation outcome directly from true per-value counts.

        ``true_counts`` is the exact histogram of the reporting group's
        values (length ``d``, sums to the group size).  The returned
        estimate is distributed exactly as ``aggregate(perturb(...))``.
        """

    def sample_aggregate_batch(
        self,
        true_counts: np.ndarray,
        epsilon: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Sample many aggregation outcomes at once from a count matrix.

        ``true_counts`` is a ``(B, d)`` matrix — one exact value
        histogram per round (rows may have different totals).  Returns
        the ``(B, d)`` matrix of unbiased frequency estimates, row ``b``
        distributed exactly as ``sample_aggregate(true_counts[b], ...)``.

        The base implementation loops row by row; OUE/SUE/GRR override
        it with single batched binomial/multinomial draws.  This is a
        standalone offline/replay API — e.g. for sampling estimates over
        whole count blocks in analysis or benchmarking code — the
        streaming engine itself still samples one collection round at a
        time, because mechanisms decide each round adaptively.
        """
        counts = self._check_batch_counts(true_counts)
        rng = ensure_rng(rng)
        return np.stack(
            [
                self.sample_aggregate(row, epsilon, rng=rng).frequencies
                for row in counts
            ]
        )

    def sample_aggregate_run(
        self,
        true_counts: np.ndarray,
        epsilon: float,
        rng: SeedLike = None,
    ) -> np.ndarray:
        """Sample a *run* of consecutive rounds, replaying the per-round
        draw order exactly.

        Like :meth:`sample_aggregate_batch`, ``true_counts`` is a
        ``(B, d)`` matrix of exact per-round value histograms and the
        result is the ``(B, d)`` matrix of unbiased frequency estimates.
        The contract is stronger, though: the output is **bit-identical**
        to calling :meth:`sample_aggregate` row by row on the same
        generator — the run consumes the generator's bitstream in the
        same element order the streaming engine's per-round loop would.
        This is what lets the chunked ingestion path
        (:meth:`repro.engine.session.StreamSession.observe_many`) batch
        whole spans of collection rounds without changing a single
        released float.

        The base implementation is literally the sequential loop.
        Subclasses whose per-round sampler has a fixed draw structure
        override it: OLH/HR delegate to their (already order-preserving)
        batch samplers, OUE/SUE interleave their two binomials into one
        ``(B, 2, d)`` element-ordered draw, and GRR hoists the per-round
        setup out of a tight loop (its binomial/multinomial interleaving
        cannot be merged across rounds).
        """
        counts = self._check_batch_counts(true_counts)
        rng = ensure_rng(rng)
        if counts.shape[0] == 0:
            return np.empty((0, counts.shape[1]), dtype=np.float64)
        return np.stack(
            [
                self.sample_aggregate(row, epsilon, rng=rng).frequencies
                for row in counts
            ]
        )

    def round_sampler(self, epsilon: float, domain_size: int):
        """Build a prepared single-round sampler for a fixed budget.

        Returns a callable ``sample(true_counts, rng) -> frequencies``
        that is **bit-identical** to
        ``sample_aggregate(true_counts, epsilon, rng=rng).frequencies``
        — same generator draws in the same order, same floating-point
        expressions — with every round-invariant (parameter validation,
        probability constants, GRR's liar-spread matrix) hoisted out of
        the per-round path.  The adaptive population kernels (LPD/LPA)
        lean on this: their pool draws interleave with the oracle draws
        on the shared generator, so rounds cannot batch, and the per-call
        setup becomes the dominant cost worth hoisting.

        ``domain_size`` is the fixed domain every round will use; counts
        passed to the sampler must have exactly that length.
        """
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)

        def sample(true_counts: np.ndarray, rng) -> np.ndarray:
            return self.sample_aggregate(true_counts, epsilon, rng=rng).frequencies

        return sample

    @staticmethod
    def _check_batch_counts(true_counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(true_counts, dtype=np.int64)
        if counts.ndim != 2:
            raise InvalidParameterError(
                f"true_counts must be a (B, d) matrix, got shape {counts.shape}"
            )
        if counts.size and counts.min() < 0:
            raise InvalidParameterError("true_counts must be non-negative")
        return counts

    # ------------------------------------------------------------------
    # Closed-form error model
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def variance(self, epsilon: float, n: int, domain_size: int) -> float:
        """Mean per-cell estimation variance ``V(eps, n)``.

        This is the frequency-independent form of Eq. (2) (the ``f_k`` term
        enters with weight ``(1/d)·Σf_k = 1/d``), used to predict the
        *potential publication error* before any data is collected
        (Section 5.3.2).
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_epsilon(epsilon: float) -> float:
        if not (isinstance(epsilon, (int, float)) and math.isfinite(epsilon)):
            raise InvalidParameterError(f"epsilon must be finite, got {epsilon!r}")
        if epsilon <= 0:
            raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
        return float(epsilon)

    @staticmethod
    def _check_domain(domain_size: int) -> int:
        if domain_size < 2:
            raise InvalidParameterError(
                f"domain_size must be at least 2, got {domain_size}"
            )
        return int(domain_size)

    @staticmethod
    def _check_values(values: np.ndarray, domain_size: int) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise InvalidParameterError("values must be a 1-D integer array")
        if values.size and (values.min() < 0 or values.max() >= domain_size):
            raise InvalidParameterError(
                "values contain entries outside [0, domain_size)"
            )
        return values.astype(np.int64, copy=False)

    @staticmethod
    def _debias(
        perturbed_counts: np.ndarray, n: int, p: float, q: float
    ) -> np.ndarray:
        """Standard unbiased FO estimator ``(c'/n - q) / (p - q)``."""
        if n <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        return (perturbed_counts / n - q) / (p - q)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[FrequencyOracle]] = {}


def register_oracle(cls: Type[FrequencyOracle]) -> Type[FrequencyOracle]:
    """Class decorator adding an oracle to the by-name registry."""
    if not cls.name:
        raise InvalidParameterError(f"{cls.__name__} must define a name")
    _REGISTRY[cls.name] = cls
    return cls


def get_oracle(name_or_instance) -> FrequencyOracle:
    """Resolve an oracle by registry name, class, or pass an instance through."""
    if isinstance(name_or_instance, FrequencyOracle):
        return name_or_instance
    if isinstance(name_or_instance, type) and issubclass(
        name_or_instance, FrequencyOracle
    ):
        return name_or_instance()
    try:
        return _REGISTRY[str(name_or_instance).lower()]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown frequency oracle {name_or_instance!r}; "
            f"available: {sorted(_REGISTRY)}"
        ) from None


def available_oracles() -> list[str]:
    """Names of all registered frequency oracles."""
    return sorted(_REGISTRY)
