"""Generalized Randomized Response (GRR) frequency oracle.

The paper's primary FO (Section 3.4, Eq. 1): a user with value ``v`` reports
``v`` with probability ``p = e^eps / (e^eps + d - 1)`` and each other value
with probability ``q = 1 / (e^eps + d - 1)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from .base import FOEstimate, FrequencyOracle, register_oracle
from .variance import grr_mean_variance


def grr_probabilities(epsilon: float, domain_size: int) -> tuple[float, float]:
    """Return GRR's ``(p, q)`` keep/flip probabilities (Eq. 1)."""
    e = math.exp(epsilon)
    p = e / (e + domain_size - 1)
    q = 1.0 / (e + domain_size - 1)
    return p, q


@register_oracle
class GRR(FrequencyOracle):
    """Generalized Randomized Response (a.k.a. k-RR / direct encoding)."""

    name = "grr"

    def perturb(self, values, domain_size, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        values = self._check_values(values, domain_size)
        rng = ensure_rng(rng)
        p, _ = grr_probabilities(epsilon, domain_size)
        n = values.shape[0]
        keep = rng.random(n) < p
        # A lying user reports uniformly among the d-1 *other* values: draw
        # from d-1 slots and shift slots >= v up by one to skip v itself.
        alternatives = rng.integers(0, domain_size - 1, size=n)
        alternatives += (alternatives >= values).astype(np.int64)
        return np.where(keep, values, alternatives)

    def support_probabilities(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        return grr_probabilities(epsilon, domain_size)

    def aggregate_supports(self, reports, domain_size, epsilon):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        reports = self._check_values(reports, domain_size)
        return np.bincount(reports, minlength=domain_size)

    def aggregate(self, reports, domain_size, epsilon) -> FOEstimate:
        supports = self.aggregate_supports(reports, domain_size, epsilon)
        n = np.asarray(reports).shape[0]
        return self.estimate_from_supports(supports, n, domain_size, epsilon)

    def sample_aggregate(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        domain_size = self._check_domain(true_counts.shape[0])
        rng = ensure_rng(rng)
        n = int(true_counts.sum())
        p, q = grr_probabilities(epsilon, domain_size)

        # Users with true value k keep it with prob p; the liars spread
        # uniformly over the other d-1 values.  Summing the liar multinomials
        # gives the exact distribution of the perturbed count vector.  One
        # batched multinomial draws all d spreads at once: row k of pvals is
        # uniform over the other values with a zero on the diagonal, so no
        # liar mass ever lands back on its own value.
        keepers = rng.binomial(true_counts, p)
        liars = true_counts - keepers
        perturbed = keepers.astype(np.float64)
        uniform_over_others = np.full(
            (domain_size, domain_size), 1.0 / (domain_size - 1)
        )
        np.fill_diagonal(uniform_over_others, 0.0)
        spread = rng.multinomial(liars, uniform_over_others)
        perturbed += spread.sum(axis=0)
        freqs = self._debias(perturbed, n, p, q)
        return FOEstimate(
            frequencies=freqs,
            n_reports=n,
            epsilon=epsilon,
            variance=self.variance(epsilon, n, domain_size),
            supports=perturbed,
        )

    def sample_aggregate_batch(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        domain_size = self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1, keepdims=True)
        if counts.size and int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        p, q = grr_probabilities(epsilon, domain_size)
        # Batched form of the single-round fast path: keeper binomials
        # over the whole (B, d) matrix, then one broadcast multinomial —
        # liars (B, d) against the (d, d) spread rows gives (B, d, d);
        # summing over the source axis yields each round's liar spread.
        keepers = rng.binomial(counts, p)
        liars = counts - keepers
        uniform_over_others = np.full(
            (domain_size, domain_size), 1.0 / (domain_size - 1)
        )
        np.fill_diagonal(uniform_over_others, 0.0)
        spread = rng.multinomial(liars, uniform_over_others)
        perturbed = keepers + spread.sum(axis=1)
        return (perturbed / n - q) / (p - q)

    def sample_aggregate_run(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        if counts.shape[0] == 0:
            return np.empty((0, counts.shape[1]), dtype=np.float64)
        domain_size = self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        p, q = grr_probabilities(epsilon, domain_size)
        uniform_over_others = np.full(
            (domain_size, domain_size), 1.0 / (domain_size - 1)
        )
        np.fill_diagonal(uniform_over_others, 0.0)
        # GRR's per-round sampler alternates a binomial with a multinomial,
        # so consecutive rounds cannot merge into one generator call
        # without reordering the bitstream.  Instead the loop stays — with
        # every round-invariant (probabilities, the liar-spread matrix,
        # parameter checks) hoisted out — and each iteration issues the
        # exact two draws sample_aggregate would, keeping the run
        # bit-identical to the per-round path.
        perturbed = np.empty(counts.shape, dtype=np.float64)
        for b, row in enumerate(counts):
            keepers = rng.binomial(row, p)
            liars = row - keepers
            spread = rng.multinomial(liars, uniform_over_others)
            perturbed[b] = keepers
            perturbed[b] += spread.sum(axis=0)
        return (perturbed / n[:, None] - q) / (p - q)

    def run_sampler(self, epsilon, domain_size):
        from ..engine.kernels_fast import debias_rows

        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        p, q = grr_probabilities(epsilon, domain_size)
        uniform_over_others = np.full(
            (domain_size, domain_size), 1.0 / (domain_size - 1)
        )
        np.fill_diagonal(uniform_over_others, 0.0)

        # Prepared sample_aggregate_run: the (d, d) liar-spread matrix and
        # probability setup build once per budget; the per-round draw loop
        # is unchanged, so the prepared run stays bit-identical.
        def sample(true_counts, rng):
            counts = self._check_batch_counts(true_counts)
            if counts.shape[0] == 0:
                return np.empty((0, counts.shape[1]), dtype=np.float64)
            n = counts.sum(axis=1)
            if int(n.min()) <= 0:
                raise InvalidParameterError("cannot aggregate zero reports")
            perturbed = np.empty(counts.shape, dtype=np.float64)
            for b, row in enumerate(counts):
                keepers = rng.binomial(row, p)
                liars = row - keepers
                spread = rng.multinomial(liars, uniform_over_others)
                perturbed[b] = keepers
                perturbed[b] += spread.sum(axis=0)
            return debias_rows(perturbed, n.astype(np.float64), p, q)

        return sample

    def sample_aggregate_run_stacked(self, true_counts, epsilons, rngs):
        from ..engine.kernels_fast import debias_rows

        counts = self._check_batch_counts(true_counts)
        rngs = list(rngs)
        epsilons = [
            self._check_epsilon(eps)
            for eps in self._stack_epsilons(epsilons, len(rngs))
        ]
        n_sessions = len(rngs)
        rounds, d = counts.shape
        if rounds == 0:
            return np.empty((n_sessions, 0, d), dtype=np.float64)
        domain_size = self._check_domain(d)
        n = counts.sum(axis=1)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        # One liar-spread matrix serves every session; probabilities are
        # cached per distinct budget.  Each layer replays the per-round
        # binomial/multinomial interleave on its own generator only —
        # draw for draw what sample_aggregate_run does solo.
        uniform_over_others = np.full(
            (domain_size, domain_size), 1.0 / (domain_size - 1)
        )
        np.fill_diagonal(uniform_over_others, 0.0)
        n_rows = n.astype(np.float64)
        pq_cache: dict = {}
        out = np.empty((n_sessions, rounds, d), dtype=np.float64)
        perturbed = np.empty((rounds, d), dtype=np.float64)
        for s, (eps, rng) in enumerate(zip(epsilons, rngs)):
            pq = pq_cache.get(eps)
            if pq is None:
                pq = pq_cache[eps] = grr_probabilities(eps, domain_size)
            p, q = pq
            for b, row in enumerate(counts):
                keepers = rng.binomial(row, p)
                liars = row - keepers
                spread = rng.multinomial(liars, uniform_over_others)
                perturbed[b] = keepers
                perturbed[b] += spread.sum(axis=0)
            out[s] = debias_rows(perturbed, n_rows, p, q)
        return out

    def round_sampler(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        p, q = grr_probabilities(epsilon, domain_size)
        uniform_over_others = np.full(
            (domain_size, domain_size), 1.0 / (domain_size - 1)
        )
        np.fill_diagonal(uniform_over_others, 0.0)

        # Building the (d, d) liar-spread matrix dominates GRR's per-call
        # cost; hoisting it (plus the probability setup) leaves exactly
        # the two draws sample_aggregate issues — bit-identical per round.
        def sample(true_counts, rng):
            n = int(true_counts.sum())
            keepers = rng.binomial(true_counts, p)
            liars = true_counts - keepers
            perturbed = keepers.astype(np.float64)
            spread = rng.multinomial(liars, uniform_over_others)
            perturbed += spread.sum(axis=0)
            return (perturbed / n - q) / (p - q)

        return sample

    def variance(self, epsilon: float, n: int, domain_size: int) -> float:
        return grr_mean_variance(epsilon, n, domain_size)
