"""Hadamard Response (HR) frequency oracle.

Acharya et al. (2019): communication-optimal for large domains — each user
sends a single index into a Hadamard matrix of order ``K`` (the smallest
power of two above ``d``).  A user whose value maps to matrix row ``r``
reports an index from the +1 support of that row with probability
``p = e^eps / (e^eps + 1)``, else from the complement.  By orthogonality,
rows other than ``r`` split any support set evenly, so the debiasing
baseline is exactly 1/2:

    f_hat[v] = (support_count[v]/n - 1/2) / (p - 1/2).

The count-level sampler is cell-wise exact (each support count is a sum of
independent Bernoullis with per-user probability ``p`` or ``1/2``);
cross-cell correlations of the true protocol are not reproduced, which is
irrelevant for every per-cell mean/variance analysis in this library and
is documented here for honesty.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from .base import FOEstimate, FrequencyOracle, register_oracle


def hadamard_order(domain_size: int) -> int:
    """Smallest power of two strictly greater than ``domain_size``.

    Strictly greater because row 0 (all ones) cannot encode a value — its
    support is the whole index set and carries no signal.
    """
    order = 1
    while order <= domain_size:
        order *= 2
    return order


def hadamard_entry(row: np.ndarray, col: np.ndarray) -> np.ndarray:
    """Sylvester Hadamard entries ``(-1)^popcount(row & col)`` as ±1."""
    conjunction = np.bitwise_and(
        np.asarray(row, dtype=np.uint64), np.asarray(col, dtype=np.uint64)
    )
    parity = np.zeros_like(conjunction)
    value = conjunction.copy()
    while np.any(value):
        parity ^= value & 1
        value >>= 1
    return 1 - 2 * parity.astype(np.int64)


def hr_probability(epsilon: float) -> float:
    """Probability of reporting from the value's +1 support set."""
    e = math.exp(epsilon)
    return e / (e + 1.0)


@register_oracle
class HadamardResponse(FrequencyOracle):
    """Hadamard Response: one log2(K)-bit report per user."""

    name = "hr"

    def perturb(self, values, domain_size, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        values = self._check_values(values, domain_size)
        rng = ensure_rng(rng)
        order = hadamard_order(domain_size)
        rows = values + 1  # row 0 is the uninformative all-ones row
        p = hr_probability(epsilon)
        n = values.shape[0]
        in_support = rng.random(n) < p
        # Sample an index with the requested sign for each user's row.  For
        # any row r >= 1 exactly half the K indices carry each sign, and
        # flipping the lowest set bit of r in the column toggles the sign,
        # so we can sample uniformly and correct the sign cheaply.
        columns = rng.integers(0, order, size=n, dtype=np.uint64)
        signs = hadamard_entry(rows, columns)
        want = np.where(in_support, 1, -1)
        wrong = signs != want
        lowest_bit = (rows & -rows).astype(np.uint64)
        columns[wrong] = np.bitwise_xor(columns[wrong], lowest_bit[wrong])
        return columns.astype(np.int64)

    def support_probabilities(self, epsilon, domain_size):
        """HR's ``(p, 1/2)``: the off-value baseline is exactly 1/2 by
        Hadamard orthogonality, so the generic support debias reproduces
        the module docstring's estimator verbatim."""
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        return hr_probability(epsilon), 0.5

    def aggregate_supports(self, reports, domain_size, epsilon):
        self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        reports = np.asarray(reports, dtype=np.int64)
        if reports.ndim != 1:
            raise ValueError("HR reports must be a 1-D index array")
        supports = np.empty(domain_size, dtype=np.int64)
        for v in range(domain_size):
            signs = hadamard_entry(np.int64(v + 1), reports)
            supports[v] = np.count_nonzero(signs == 1)
        return supports

    def aggregate(self, reports, domain_size, epsilon) -> FOEstimate:
        supports = self.aggregate_supports(reports, domain_size, epsilon)
        n = np.asarray(reports).shape[0]
        return self.estimate_from_supports(supports, n, domain_size, epsilon)

    def sample_aggregate(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        domain_size = self._check_domain(true_counts.shape[0])
        rng = ensure_rng(rng)
        n = int(true_counts.sum())
        p = hr_probability(epsilon)
        # A report supports its owner's value with probability p and any
        # other value with probability 1/2 (orthogonality) — cell-wise
        # exact, cross-cell correlations dropped (see module docstring).
        own = rng.binomial(true_counts, p)
        other = rng.binomial(n - true_counts, 0.5)
        supports = (own + other).astype(np.float64)
        freqs = (supports / n - 0.5) / (p - 0.5)
        return FOEstimate(
            frequencies=freqs,
            n_reports=n,
            epsilon=epsilon,
            variance=self.variance(epsilon, n, domain_size),
            supports=supports,
        )

    def sample_aggregate_batch(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1, keepdims=True)
        if counts.size and int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        p = hr_probability(epsilon)
        # Interleaved (B, 2, d) stack replays the single-round draw order
        # (own-support p-draws, then other-support 1/2-draws, per row in
        # C order), making the batch bit-identical to sequential
        # sample_aggregate calls on the same generator — same trick as
        # OLH.sample_aggregate_batch.
        trials = np.stack([counts, n - counts], axis=1)
        probs = np.broadcast_to(
            np.array([p, 0.5]).reshape(1, 2, 1), trials.shape
        )
        draws = rng.binomial(trials, probs)
        supports = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
        return (supports / n - 0.5) / (p - 0.5)

    def sample_aggregate_run(self, true_counts, epsilon, rng: SeedLike = None):
        # The batch sampler already replays the per-round draw order
        # exactly (see its docstring), so it doubles as the run kernel.
        return self.sample_aggregate_batch(true_counts, epsilon, rng=rng)

    def run_sampler(self, epsilon, domain_size):
        from ..engine.kernels_fast import debias_rows

        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        p = hr_probability(epsilon)
        pq_plane = np.array([p, 0.5]).reshape(1, 2, 1)

        # Prepared sample_aggregate_run (= the batch sampler) with the
        # probability setup hoisted per budget; same (B, 2, d)
        # element-ordered draw, bit-identical output.
        def sample(true_counts, rng):
            counts = self._check_batch_counts(true_counts)
            if counts.shape[0] == 0:
                return np.empty((0, counts.shape[1]), dtype=np.float64)
            n = counts.sum(axis=1, keepdims=True)
            if int(n.min()) <= 0:
                raise InvalidParameterError("cannot aggregate zero reports")
            trials = np.stack([counts, n - counts], axis=1)
            probs = np.broadcast_to(pq_plane, trials.shape)
            draws = rng.binomial(trials, probs)
            supports = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            return debias_rows(supports, n[:, 0].astype(np.float64), p, 0.5)

        return sample

    def sample_aggregate_run_stacked(self, true_counts, epsilons, rngs):
        from ..engine.kernels_fast import debias_rows

        counts = self._check_batch_counts(true_counts)
        rngs = list(rngs)
        epsilons = [
            self._check_epsilon(eps)
            for eps in self._stack_epsilons(epsilons, len(rngs))
        ]
        n_sessions = len(rngs)
        rounds, d = counts.shape
        if rounds == 0:
            return np.empty((n_sessions, 0, d), dtype=np.float64)
        self._check_domain(d)
        n = counts.sum(axis=1, keepdims=True)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        # Shared budget-independent (B, 2, d) trial stack; probability
        # planes cached per distinct budget; strictly private generators
        # per layer (see OUE).
        trials = np.stack([counts, n - counts], axis=1)
        n_rows = n[:, 0].astype(np.float64)
        setup_cache: dict = {}
        out = np.empty((n_sessions, rounds, d), dtype=np.float64)
        for s, (eps, rng) in enumerate(zip(epsilons, rngs)):
            setup = setup_cache.get(eps)
            if setup is None:
                p = hr_probability(eps)
                probs = np.broadcast_to(
                    np.array([p, 0.5]).reshape(1, 2, 1), trials.shape
                )
                setup = setup_cache[eps] = (p, probs)
            p, probs = setup
            draws = rng.binomial(trials, probs)
            supports = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            out[s] = debias_rows(supports, n_rows, p, 0.5)
        return out

    def round_sampler(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        p = hr_probability(epsilon)
        probs = np.empty((2, domain_size))
        probs[0] = p
        probs[1] = 0.5
        trials = np.empty((2, domain_size), dtype=np.int64)

        # One stacked (2, d) binomial replaying sample_aggregate's
        # own/other binomials bit-for-bit (C-order element fill, the
        # run-kernel property) with one call's fixed overhead.
        def sample(true_counts, rng):
            n = int(true_counts.sum())
            trials[0] = true_counts
            np.subtract(n, true_counts, out=trials[1])
            draws = rng.binomial(trials, probs)
            supports = (draws[0] + draws[1]).astype(np.float64)
            return (supports / n - 0.5) / (p - 0.5)

        return sample

    def variance(self, epsilon: float, n: int, domain_size: int) -> float:
        p = hr_probability(epsilon)
        if p == 0.5:  # epsilon below float resolution: no information
            return math.inf
        # Leading term: support count variance 1/4 per user at f ~ 0.
        return 0.25 / (n * (p - 0.5) ** 2)
