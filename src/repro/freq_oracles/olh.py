"""Optimal Local Hashing (OLH) frequency oracle.

Wang et al. (USENIX Security 2017): each user hashes their value into a
small range ``g = round(e^eps) + 1`` with a personal universal hash function
and then runs GRR over the hashed domain.  Communication is O(log g) instead
of O(d) while matching OUE's variance, which is why it is the standard
choice for large domains.

Reports are ``(a, b, y)`` rows: the user's hash coefficients plus the
GRR-perturbed hash value.  The aggregator counts, for every domain value
``k``, the users whose report *supports* ``k`` (``y == H_{a,b}(k)``).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from .base import FOEstimate, FrequencyOracle, register_oracle
from .variance import olh_mean_variance

#: Mersenne prime for the pairwise-independent hash family.
_PRIME = (1 << 61) - 1


def olh_hash_range(epsilon: float) -> int:
    """Optimal hash range ``g = round(e^eps) + 1`` (at least 2)."""
    return max(2, int(round(math.exp(epsilon))) + 1)


def _hash(a: np.ndarray, b: np.ndarray, value: np.ndarray, g: int) -> np.ndarray:
    """Vectorised ``((a·(v+1) + b) mod P) mod g`` universal hash."""
    return ((a * (np.asarray(value, dtype=np.uint64) + 1) + b) % _PRIME % g).astype(
        np.int64
    )


@register_oracle
class OLH(FrequencyOracle):
    """Optimal Local Hashing."""

    name = "olh"

    def perturb(self, values, domain_size, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        values = self._check_values(values, domain_size)
        rng = ensure_rng(rng)
        g = olh_hash_range(epsilon)
        n = values.shape[0]
        a = rng.integers(1, _PRIME, size=n, dtype=np.uint64)
        b = rng.integers(0, _PRIME, size=n, dtype=np.uint64)
        hashed = _hash(a, b, values, g)
        # GRR over the hashed domain of size g.
        e = math.exp(epsilon)
        p = e / (e + g - 1)
        keep = rng.random(n) < p
        alternatives = rng.integers(0, g - 1, size=n)
        alternatives += (alternatives >= hashed).astype(np.int64)
        y = np.where(keep, hashed, alternatives)
        return np.column_stack(
            [a.astype(np.int64), b.astype(np.int64), y.astype(np.int64)]
        )

    def support_probabilities(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        g = olh_hash_range(epsilon)
        e = math.exp(epsilon)
        return e / (e + g - 1), 1.0 / g

    def aggregate_supports(self, reports, domain_size, epsilon):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        reports = np.asarray(reports)
        if reports.ndim != 2 or reports.shape[1] != 3:
            raise ValueError("OLH reports must be (n, 3) rows of (a, b, y)")
        g = olh_hash_range(epsilon)
        a = reports[:, 0].astype(np.uint64)
        b = reports[:, 1].astype(np.uint64)
        y = reports[:, 2].astype(np.int64)
        supports = np.empty(domain_size, dtype=np.int64)
        for k in range(domain_size):
            supports[k] = np.count_nonzero(_hash(a, b, np.uint64(k), g) == y)
        return supports

    def aggregate(self, reports, domain_size, epsilon) -> FOEstimate:
        supports = self.aggregate_supports(reports, domain_size, epsilon)
        n = np.asarray(reports).shape[0]
        return self.estimate_from_supports(supports, n, domain_size, epsilon)

    def sample_aggregate(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        domain_size = self._check_domain(true_counts.shape[0])
        rng = ensure_rng(rng)
        n = int(true_counts.sum())
        g = olh_hash_range(epsilon)
        e = math.exp(epsilon)
        p = e / (e + g - 1)
        q = 1.0 / g
        # A report supports its owner's value with probability p, and (over
        # the hash randomness) any other value with probability 1/g.
        supports_own = rng.binomial(true_counts, p)
        supports_other = rng.binomial(n - true_counts, q)
        supports = (supports_own + supports_other).astype(np.float64)
        freqs = self._debias(supports, n, p, q)
        return FOEstimate(
            frequencies=freqs,
            n_reports=n,
            epsilon=epsilon,
            variance=self.variance(epsilon, n, domain_size),
            supports=supports,
        )

    def sample_aggregate_batch(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1, keepdims=True)
        if counts.size and int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        g = olh_hash_range(epsilon)
        e = math.exp(epsilon)
        p = e / (e + g - 1)
        q = 1.0 / g
        # One element-wise binomial over a (B, 2, d) stack replays the
        # single-round sampler's draw order exactly — row b's own-support
        # draws (prob p) come right before its other-support draws
        # (prob q), in C order — so this is *bit-identical* to calling
        # sample_aggregate per row on the same generator, not merely
        # distributionally equal.
        trials = np.stack([counts, n - counts], axis=1)
        probs = np.broadcast_to(
            np.array([p, q]).reshape(1, 2, 1), trials.shape
        )
        draws = rng.binomial(trials, probs)
        supports = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
        return (supports / n - q) / (p - q)

    def sample_aggregate_run(self, true_counts, epsilon, rng: SeedLike = None):
        # The batch sampler already replays the per-round draw order
        # exactly (see its docstring), so it doubles as the run kernel.
        return self.sample_aggregate_batch(true_counts, epsilon, rng=rng)

    def run_sampler(self, epsilon, domain_size):
        from ..engine.kernels_fast import debias_rows

        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        g = olh_hash_range(epsilon)
        e = math.exp(epsilon)
        p = e / (e + g - 1)
        q = 1.0 / g
        pq_plane = np.array([p, q]).reshape(1, 2, 1)

        # Prepared sample_aggregate_run (= the batch sampler) with the
        # hash-range/probability setup hoisted per budget; same (B, 2, d)
        # element-ordered draw, bit-identical output.
        def sample(true_counts, rng):
            counts = self._check_batch_counts(true_counts)
            if counts.shape[0] == 0:
                return np.empty((0, counts.shape[1]), dtype=np.float64)
            n = counts.sum(axis=1, keepdims=True)
            if int(n.min()) <= 0:
                raise InvalidParameterError("cannot aggregate zero reports")
            trials = np.stack([counts, n - counts], axis=1)
            probs = np.broadcast_to(pq_plane, trials.shape)
            draws = rng.binomial(trials, probs)
            supports = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            return debias_rows(supports, n[:, 0].astype(np.float64), p, q)

        return sample

    def sample_aggregate_run_stacked(self, true_counts, epsilons, rngs):
        from ..engine.kernels_fast import debias_rows

        counts = self._check_batch_counts(true_counts)
        rngs = list(rngs)
        epsilons = [
            self._check_epsilon(eps)
            for eps in self._stack_epsilons(epsilons, len(rngs))
        ]
        n_sessions = len(rngs)
        rounds, d = counts.shape
        if rounds == 0:
            return np.empty((n_sessions, 0, d), dtype=np.float64)
        self._check_domain(d)
        n = counts.sum(axis=1, keepdims=True)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        # Shared budget-independent (B, 2, d) trial stack; the hash range
        # (and so the probability plane) is cached per distinct budget.
        # Each layer consumes only its own generator (see OUE).
        trials = np.stack([counts, n - counts], axis=1)
        n_rows = n[:, 0].astype(np.float64)
        setup_cache: dict = {}
        out = np.empty((n_sessions, rounds, d), dtype=np.float64)
        for s, (eps, rng) in enumerate(zip(epsilons, rngs)):
            setup = setup_cache.get(eps)
            if setup is None:
                g = olh_hash_range(eps)
                e = math.exp(eps)
                p = e / (e + g - 1)
                q = 1.0 / g
                probs = np.broadcast_to(
                    np.array([p, q]).reshape(1, 2, 1), trials.shape
                )
                setup = setup_cache[eps] = (p, q, probs)
            p, q, probs = setup
            draws = rng.binomial(trials, probs)
            supports = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            out[s] = debias_rows(supports, n_rows, p, q)
        return out

    def round_sampler(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        g = olh_hash_range(epsilon)
        e = math.exp(epsilon)
        p = e / (e + g - 1)
        q = 1.0 / g
        probs = np.empty((2, domain_size))
        probs[0] = p
        probs[1] = q
        trials = np.empty((2, domain_size), dtype=np.int64)

        # One stacked (2, d) binomial replaying sample_aggregate's two
        # sequential binomials bit-for-bit (C-order element fill, the
        # run-kernel property) with hash-range/probability setup hoisted
        # and a single call's fixed overhead.
        def sample(true_counts, rng):
            n = int(true_counts.sum())
            trials[0] = true_counts
            np.subtract(n, true_counts, out=trials[1])
            draws = rng.binomial(trials, probs)
            supports = (draws[0] + draws[1]).astype(np.float64)
            return (supports / n - q) / (p - q)

        return sample

    def variance(self, epsilon: float, n: int, domain_size: int) -> float:
        return olh_mean_variance(epsilon, n, domain_size)
