"""Optimized Unary Encoding (OUE) frequency oracle.

Wang et al. (USENIX Security 2017): each user encodes their value as a
one-hot bit vector and flips each bit independently — the 1-bit is kept with
probability ``p = 1/2`` and every 0-bit becomes 1 with probability
``q = 1/(e^eps + 1)``.  The asymmetric probabilities minimise estimation
variance, which becomes independent of the domain size.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from .base import FOEstimate, FrequencyOracle, register_oracle
from .variance import oue_mean_variance


def oue_probabilities(epsilon: float) -> tuple[float, float]:
    """Return OUE's ``(p, q)``: 1-bit keep probability and 0-bit flip rate."""
    return 0.5, 1.0 / (math.exp(epsilon) + 1.0)


@register_oracle
class OUE(FrequencyOracle):
    """Optimized Unary Encoding."""

    name = "oue"

    def perturb(self, values, domain_size, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        values = self._check_values(values, domain_size)
        rng = ensure_rng(rng)
        p, q = oue_probabilities(epsilon)
        n = values.shape[0]
        # Start from background q-noise on every bit, then overwrite each
        # user's own bit with a p-coin.
        bits = rng.random((n, domain_size)) < q
        bits[np.arange(n), values] = rng.random(n) < p
        return bits

    def support_probabilities(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        return oue_probabilities(epsilon)

    def aggregate_supports(self, reports, domain_size, epsilon):
        self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        reports = np.asarray(reports, dtype=bool)
        if reports.ndim != 2 or reports.shape[1] != domain_size:
            raise ValueError("OUE reports must be an (n, d) bit matrix")
        return reports.sum(axis=0, dtype=np.int64)

    def aggregate(self, reports, domain_size, epsilon) -> FOEstimate:
        supports = self.aggregate_supports(reports, domain_size, epsilon)
        n = np.asarray(reports).shape[0]
        return self.estimate_from_supports(supports, n, domain_size, epsilon)

    def sample_aggregate(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        domain_size = self._check_domain(true_counts.shape[0])
        rng = ensure_rng(rng)
        n = int(true_counts.sum())
        p, q = oue_probabilities(epsilon)
        # Per cell k: Binomial(n_k, p) ones from owners + Binomial(n-n_k, q)
        # from everyone else — bits are independent so this is exact.
        ones_from_owners = rng.binomial(true_counts, p)
        ones_from_others = rng.binomial(n - true_counts, q)
        counts = (ones_from_owners + ones_from_others).astype(np.float64)
        freqs = self._debias(counts, n, p, q)
        return FOEstimate(
            frequencies=freqs,
            n_reports=n,
            epsilon=epsilon,
            variance=self.variance(epsilon, n, domain_size),
            supports=counts,
        )

    def sample_aggregate_batch(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1, keepdims=True)
        if counts.size and int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        p, q = oue_probabilities(epsilon)
        # The single-round sampler is two binomials per histogram; bits
        # are independent across rounds too, so one batched draw over the
        # whole (B, d) matrix is exact.
        ones = rng.binomial(counts, p) + rng.binomial(n - counts, q)
        return (ones / n - q) / (p - q)

    def sample_aggregate_run(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        if counts.shape[0] == 0:
            return np.empty((0, counts.shape[1]), dtype=np.float64)
        self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1, keepdims=True)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        p, q = oue_probabilities(epsilon)
        # Interleaved (B, 2, d) stack: row b's owner draws (prob p) come
        # immediately before its background draws (prob q), in C order —
        # exactly the order sample_aggregate's two binomials consume the
        # generator round by round, so the run is bit-identical to the
        # per-round path (the same trick OLH/HR use in their batch
        # samplers).
        trials = np.stack([counts, n - counts], axis=1)
        probs = np.broadcast_to(
            np.array([p, q]).reshape(1, 2, 1), trials.shape
        )
        draws = rng.binomial(trials, probs)
        ones = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
        return (ones / n - q) / (p - q)

    def run_sampler(self, epsilon, domain_size):
        from ..engine.kernels_fast import debias_rows

        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        p, q = oue_probabilities(epsilon)
        pq_plane = np.array([p, q]).reshape(1, 2, 1)

        # Prepared form of sample_aggregate_run with the probability
        # constants and debias map hoisted per budget.  Draw order and
        # floating-point expressions are unchanged, so the prepared
        # sampler stays bit-identical to the unprepared run.
        def sample(true_counts, rng):
            counts = self._check_batch_counts(true_counts)
            if counts.shape[0] == 0:
                return np.empty((0, counts.shape[1]), dtype=np.float64)
            n = counts.sum(axis=1, keepdims=True)
            if int(n.min()) <= 0:
                raise InvalidParameterError("cannot aggregate zero reports")
            trials = np.stack([counts, n - counts], axis=1)
            probs = np.broadcast_to(pq_plane, trials.shape)
            draws = rng.binomial(trials, probs)
            ones = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            return debias_rows(ones, n[:, 0].astype(np.float64), p, q)

        return sample

    def sample_aggregate_run_stacked(self, true_counts, epsilons, rngs):
        from ..engine.kernels_fast import debias_rows

        counts = self._check_batch_counts(true_counts)
        rngs = list(rngs)
        epsilons = [
            self._check_epsilon(eps)
            for eps in self._stack_epsilons(epsilons, len(rngs))
        ]
        n_sessions = len(rngs)
        rounds, d = counts.shape
        if rounds == 0:
            return np.empty((n_sessions, 0, d), dtype=np.float64)
        self._check_domain(d)
        n = counts.sum(axis=1, keepdims=True)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        # The (B, 2, d) trial stack is budget-independent, so one build
        # serves every session; the probability plane is built once per
        # distinct budget.  Each layer then consumes only its own
        # generator, exactly as sample_aggregate_run would — stacking
        # shares arrays, never randomness.
        trials = np.stack([counts, n - counts], axis=1)
        n_rows = n[:, 0].astype(np.float64)
        probs_cache: dict = {}
        out = np.empty((n_sessions, rounds, d), dtype=np.float64)
        for s, (eps, rng) in enumerate(zip(epsilons, rngs)):
            p, q = oue_probabilities(eps)
            probs = probs_cache.get(eps)
            if probs is None:
                probs = np.broadcast_to(
                    np.array([p, q]).reshape(1, 2, 1), trials.shape
                )
                probs_cache[eps] = probs
            draws = rng.binomial(trials, probs)
            ones = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            out[s] = debias_rows(ones, n_rows, p, q)
        return out

    def round_sampler(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        p, q = oue_probabilities(epsilon)
        probs = np.empty((2, domain_size))
        probs[0] = p
        probs[1] = q
        trials = np.empty((2, domain_size), dtype=np.int64)

        # One stacked (2, d) binomial call: numpy fills it element-wise in
        # C order (owner row, then background row), consuming the exact
        # bitstream of sample_aggregate's two sequential binomials — same
        # property the (B, 2, d) run kernel relies on — while paying one
        # call's fixed overhead instead of two.
        def sample(true_counts, rng):
            n = int(true_counts.sum())
            trials[0] = true_counts
            np.subtract(n, true_counts, out=trials[1])
            draws = rng.binomial(trials, probs)
            counts = (draws[0] + draws[1]).astype(np.float64)
            return (counts / n - q) / (p - q)

        return sample

    def variance(self, epsilon: float, n: int, domain_size: int) -> float:
        return oue_mean_variance(epsilon, n, domain_size)
