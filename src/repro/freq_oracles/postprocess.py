"""Post-processing for LDP frequency estimates.

Raw FO estimates are unbiased but unconstrained: cells can be negative and
the vector need not sum to one.  Post-processing never costs privacy
(post-processing theorem, Section 3.3), and the paper releases histograms,
so the harness offers the standard consistency steps from the LDP
literature (Wang et al., "Consistent frequency estimates"):

``clip``            clamp to [0, 1] (biased but simple)
``normalize``       clip then rescale to sum one
``norm_sub``        additive shift + clamp so the result sums to one — the
                    least-squares projection onto the simplex restricted to
                    the support it keeps; the recommended default
``project_simplex`` exact Euclidean projection onto the probability simplex
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError


def clip(frequencies: np.ndarray) -> np.ndarray:
    """Clamp estimated frequencies into [0, 1]."""
    return np.clip(np.asarray(frequencies, dtype=np.float64), 0.0, 1.0)


def normalize(frequencies: np.ndarray) -> np.ndarray:
    """Clip to non-negative and rescale so the cells sum to one.

    Falls back to the uniform distribution if everything clips to zero.
    """
    clipped = np.clip(np.asarray(frequencies, dtype=np.float64), 0.0, None)
    total = clipped.sum()
    if total <= 0:
        return np.full_like(clipped, 1.0 / clipped.shape[0])
    return clipped / total


def norm_sub(frequencies: np.ndarray, max_iterations: int = 100) -> np.ndarray:
    """Norm-sub consistency: shift all cells by a constant, clamp negatives
    to zero, and repeat until the positive cells sum to one.

    Converges in at most ``d`` iterations because each round only ever
    removes cells from the positive support.
    """
    est = np.asarray(frequencies, dtype=np.float64).copy()
    for _ in range(max_iterations):
        positive = est > 0
        n_pos = int(np.count_nonzero(positive))
        if n_pos == 0:
            return np.full_like(est, 1.0 / est.shape[0])
        shift = (1.0 - est[positive].sum()) / n_pos
        est = np.where(positive, est + shift, 0.0)
        if (est >= 0).all():
            break
        est = np.clip(est, 0.0, None)
    # Final tidy-up for floating point residue.
    est = np.clip(est, 0.0, None)
    total = est.sum()
    return est / total if total > 0 else np.full_like(est, 1.0 / est.shape[0])


def project_simplex(frequencies: np.ndarray) -> np.ndarray:
    """Exact Euclidean projection onto the probability simplex.

    Standard sort-based algorithm (Duchi et al. 2008); O(d log d).
    """
    v = np.asarray(frequencies, dtype=np.float64)
    d = v.shape[0]
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - 1.0
    rho_candidates = u - css / np.arange(1, d + 1)
    rho = int(np.nonzero(rho_candidates > 0)[0][-1])
    theta = css[rho] / (rho + 1)
    return np.clip(v - theta, 0.0, None)


_POSTPROCESSORS = {
    "none": lambda f: np.asarray(f, dtype=np.float64),
    "clip": clip,
    "normalize": normalize,
    "norm_sub": norm_sub,
    "project_simplex": project_simplex,
}


def get_postprocessor(name: str):
    """Look up a post-processor by name (``none``, ``clip``, ``normalize``,
    ``norm_sub``, ``project_simplex``)."""
    try:
        return _POSTPROCESSORS[name]
    except KeyError:
        # InvalidParameterError subclasses ValueError, so existing
        # ``except ValueError`` callers keep working while the CLI's
        # ReproError handler reports it gracefully.
        raise InvalidParameterError(
            f"unknown postprocessor {name!r}; available: {sorted(_POSTPROCESSORS)}"
        ) from None
