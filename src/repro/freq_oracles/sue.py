"""Symmetric Unary Encoding (SUE, a.k.a. basic one-time RAPPOR).

One-hot encode, then flip every bit symmetrically: a bit keeps its value
with probability ``p = e^{eps/2} / (e^{eps/2} + 1)``.  Included as the
classic deployed baseline (Erlingsson et al., CCS 2014); OUE strictly
dominates it in variance.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from .base import FOEstimate, FrequencyOracle, register_oracle
from .variance import sue_mean_variance


def sue_probabilities(epsilon: float) -> tuple[float, float]:
    """Return SUE's ``(p, q)``: 1-bit keep probability and 0-bit flip rate."""
    s = math.exp(epsilon / 2.0)
    return s / (s + 1.0), 1.0 / (s + 1.0)


@register_oracle
class SUE(FrequencyOracle):
    """Symmetric Unary Encoding (basic RAPPOR)."""

    name = "sue"

    def perturb(self, values, domain_size, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        values = self._check_values(values, domain_size)
        rng = ensure_rng(rng)
        p, q = sue_probabilities(epsilon)
        n = values.shape[0]
        bits = rng.random((n, domain_size)) < q
        bits[np.arange(n), values] = rng.random(n) < p
        return bits

    def support_probabilities(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        return sue_probabilities(epsilon)

    def aggregate_supports(self, reports, domain_size, epsilon):
        self._check_epsilon(epsilon)
        domain_size = self._check_domain(domain_size)
        reports = np.asarray(reports, dtype=bool)
        if reports.ndim != 2 or reports.shape[1] != domain_size:
            raise ValueError("SUE reports must be an (n, d) bit matrix")
        return reports.sum(axis=0, dtype=np.int64)

    def aggregate(self, reports, domain_size, epsilon) -> FOEstimate:
        supports = self.aggregate_supports(reports, domain_size, epsilon)
        n = np.asarray(reports).shape[0]
        return self.estimate_from_supports(supports, n, domain_size, epsilon)

    def sample_aggregate(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        domain_size = self._check_domain(true_counts.shape[0])
        rng = ensure_rng(rng)
        n = int(true_counts.sum())
        p, q = sue_probabilities(epsilon)
        ones_from_owners = rng.binomial(true_counts, p)
        ones_from_others = rng.binomial(n - true_counts, q)
        counts = (ones_from_owners + ones_from_others).astype(np.float64)
        freqs = self._debias(counts, n, p, q)
        return FOEstimate(
            frequencies=freqs,
            n_reports=n,
            epsilon=epsilon,
            variance=self.variance(epsilon, n, domain_size),
            supports=counts,
        )

    def sample_aggregate_batch(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1, keepdims=True)
        if counts.size and int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        p, q = sue_probabilities(epsilon)
        ones = rng.binomial(counts, p) + rng.binomial(n - counts, q)
        return (ones / n - q) / (p - q)

    def sample_aggregate_run(self, true_counts, epsilon, rng: SeedLike = None):
        epsilon = self._check_epsilon(epsilon)
        counts = self._check_batch_counts(true_counts)
        if counts.shape[0] == 0:
            return np.empty((0, counts.shape[1]), dtype=np.float64)
        self._check_domain(counts.shape[1])
        rng = ensure_rng(rng)
        n = counts.sum(axis=1, keepdims=True)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        p, q = sue_probabilities(epsilon)
        # Same interleaved (B, 2, d) element-ordered draw as OUE: keeps
        # the run bit-identical to per-round sample_aggregate calls.
        trials = np.stack([counts, n - counts], axis=1)
        probs = np.broadcast_to(
            np.array([p, q]).reshape(1, 2, 1), trials.shape
        )
        draws = rng.binomial(trials, probs)
        ones = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
        return (ones / n - q) / (p - q)

    def run_sampler(self, epsilon, domain_size):
        from ..engine.kernels_fast import debias_rows

        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        p, q = sue_probabilities(epsilon)
        pq_plane = np.array([p, q]).reshape(1, 2, 1)

        # Prepared sample_aggregate_run with the per-budget setup hoisted;
        # same draws, same expressions, bit-identical output (see OUE).
        def sample(true_counts, rng):
            counts = self._check_batch_counts(true_counts)
            if counts.shape[0] == 0:
                return np.empty((0, counts.shape[1]), dtype=np.float64)
            n = counts.sum(axis=1, keepdims=True)
            if int(n.min()) <= 0:
                raise InvalidParameterError("cannot aggregate zero reports")
            trials = np.stack([counts, n - counts], axis=1)
            probs = np.broadcast_to(pq_plane, trials.shape)
            draws = rng.binomial(trials, probs)
            ones = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            return debias_rows(ones, n[:, 0].astype(np.float64), p, q)

        return sample

    def sample_aggregate_run_stacked(self, true_counts, epsilons, rngs):
        from ..engine.kernels_fast import debias_rows

        counts = self._check_batch_counts(true_counts)
        rngs = list(rngs)
        epsilons = [
            self._check_epsilon(eps)
            for eps in self._stack_epsilons(epsilons, len(rngs))
        ]
        n_sessions = len(rngs)
        rounds, d = counts.shape
        if rounds == 0:
            return np.empty((n_sessions, 0, d), dtype=np.float64)
        self._check_domain(d)
        n = counts.sum(axis=1, keepdims=True)
        if int(n.min()) <= 0:
            raise InvalidParameterError("cannot aggregate zero reports")
        # Shared budget-independent (B, 2, d) trial stack, per-budget
        # probability planes, strictly private generators (see OUE).
        trials = np.stack([counts, n - counts], axis=1)
        n_rows = n[:, 0].astype(np.float64)
        probs_cache: dict = {}
        out = np.empty((n_sessions, rounds, d), dtype=np.float64)
        for s, (eps, rng) in enumerate(zip(epsilons, rngs)):
            p, q = sue_probabilities(eps)
            probs = probs_cache.get(eps)
            if probs is None:
                probs = np.broadcast_to(
                    np.array([p, q]).reshape(1, 2, 1), trials.shape
                )
                probs_cache[eps] = probs
            draws = rng.binomial(trials, probs)
            ones = (draws[:, 0, :] + draws[:, 1, :]).astype(np.float64)
            out[s] = debias_rows(ones, n_rows, p, q)
        return out

    def round_sampler(self, epsilon, domain_size):
        epsilon = self._check_epsilon(epsilon)
        self._check_domain(domain_size)
        p, q = sue_probabilities(epsilon)
        probs = np.empty((2, domain_size))
        probs[0] = p
        probs[1] = q
        trials = np.empty((2, domain_size), dtype=np.int64)

        # One stacked (2, d) binomial replaying sample_aggregate's two
        # sequential binomials bit-for-bit (same C-order element fill the
        # run kernel relies on) at half the fixed call overhead — same
        # shape as OUE.round_sampler, SUE probabilities.
        def sample(true_counts, rng):
            n = int(true_counts.sum())
            trials[0] = true_counts
            np.subtract(n, true_counts, out=trials[1])
            draws = rng.binomial(trials, probs)
            counts = (draws[0] + draws[1]).astype(np.float64)
            return (counts / n - q) / (p - q)

        return sample

    def variance(self, epsilon: float, n: int, domain_size: int) -> float:
        return sue_mean_variance(epsilon, n, domain_size)
