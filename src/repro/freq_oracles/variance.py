"""Closed-form estimation variances for LDP frequency oracles.

These are the ``V(eps, n)`` functions that drive every utility analysis in
the paper: the potential publication error of Section 5.3.2, the MSE
expressions of Sections 5.4.2 / 6.3.2, and the LPU-vs-LBU ordering of
Theorem 6.1.

All functions return the variance of a *single cell* of the estimated
histogram, averaged over the domain.  Eq. (2) of the paper gives, for GRR,

    Var[c[k]] = (d - 2 + e^eps) / (n (e^eps - 1)^2)
              + f_k (d - 2) / (n (e^eps - 1)),

and since the true frequencies sum to one, the mean over the ``d`` cells is
the frequency-independent quantity implemented here (the second term enters
with weight ``1/d``).
"""

from __future__ import annotations

import math

from ..exceptions import InvalidParameterError


def _check(epsilon: float, n: int, domain_size: int) -> None:
    if epsilon <= 0 or not math.isfinite(epsilon):
        raise InvalidParameterError(f"epsilon must be positive/finite, got {epsilon}")
    if n <= 0:
        raise InvalidParameterError(f"population n must be positive, got {n}")
    if domain_size < 2:
        raise InvalidParameterError(f"domain_size must be >= 2, got {domain_size}")


def _degenerate(e: float) -> bool:
    """Budget below float resolution: ``exp(eps) == 1.0`` exactly.

    The adaptive mechanisms can shave a publication budget down to
    ``~1e-17`` (absorption arithmetic cancels almost exactly), where the
    closed forms would divide by ``(e^eps - 1)^2 == 0``.  An
    epsilon this small carries no information, so the variance is
    reported as infinite — which makes ``err = inf`` and the mechanism
    approximates, exactly the "unusable budget" semantics.
    """
    return e == 1.0


def grr_cell_variance(
    epsilon: float, n: int, domain_size: int, frequency: float = 0.0
) -> float:
    """Exact Eq. (2) variance of one GRR-estimated cell with true ``frequency``."""
    _check(epsilon, n, domain_size)
    e = math.exp(epsilon)
    if _degenerate(e):
        return math.inf
    lead = (domain_size - 2 + e) / (n * (e - 1) ** 2)
    data = frequency * (domain_size - 2) / (n * (e - 1))
    return lead + data


def grr_mean_variance(epsilon: float, n: int, domain_size: int) -> float:
    """Mean GRR cell variance over the domain (frequencies sum to one)."""
    _check(epsilon, n, domain_size)
    e = math.exp(epsilon)
    if _degenerate(e):
        return math.inf
    lead = (domain_size - 2 + e) / (n * (e - 1) ** 2)
    data = (domain_size - 2) / (domain_size * n * (e - 1))
    return lead + data


def oue_mean_variance(epsilon: float, n: int, domain_size: int) -> float:
    """OUE variance ``4 e^eps / (n (e^eps - 1)^2)`` (Wang et al. 2017).

    Frequency independent up to the (dropped) small ``f_k`` term; note it
    does not grow with ``d``, which is why OUE wins for large domains.
    """
    _check(epsilon, n, domain_size)
    e = math.exp(epsilon)
    if _degenerate(e):
        return math.inf
    return 4.0 * e / (n * (e - 1) ** 2)


def sue_mean_variance(epsilon: float, n: int, domain_size: int) -> float:
    """Symmetric unary encoding (basic RAPPOR) variance.

    With ``p = e^{eps/2} / (e^{eps/2} + 1)`` and ``q = 1 - p`` the
    per-cell variance is ``q(1-q) / (n (p-q)^2)`` at ``f_k = 0``; we use the
    frequency-independent leading term.
    """
    _check(epsilon, n, domain_size)
    s = math.exp(epsilon / 2.0)
    if _degenerate(s):
        return math.inf
    p = s / (s + 1.0)
    q = 1.0 / (s + 1.0)
    return q * (1.0 - q) / (n * (p - q) ** 2)


def olh_mean_variance(epsilon: float, n: int, domain_size: int) -> float:
    """Optimal Local Hashing variance, identical leading term to OUE."""
    return oue_mean_variance(epsilon, n, domain_size)


def laplace_mean_variance(epsilon: float, n: int, sensitivity: float = 2.0) -> float:
    """CDP Laplace-mechanism variance of a released *frequency* cell.

    A count histogram with neighbouring databases differing in one user's
    value has L1 sensitivity 2 (one count down, another up); adding
    ``Lap(sensitivity/eps)`` to counts and dividing by ``n`` gives a
    frequency variance of ``2 (sensitivity/eps)^2 / n^2``.  Used by the CDP
    substrate (Section 3.2) for the BD/BA baselines.
    """
    if epsilon <= 0 or n <= 0:
        raise InvalidParameterError("epsilon and n must be positive")
    scale = sensitivity / epsilon
    return 2.0 * scale * scale / (n * n)
