"""Serialization of session results and experiment series.

Long experiment campaigns want artifacts on disk: :func:`save_session` /
:func:`load_session` round-trip a :class:`~repro.engine.records.SessionResult`
through JSON (arrays as nested lists — portable and diff-able), and
:func:`session_to_csv` / :func:`series_to_csv` export flat tables for
external plotting tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Union

import numpy as np

from .engine.records import SessionResult, StepRecord
from .exceptions import InvalidParameterError

PathLike = Union[str, Path]

#: Schema version written into every artifact.
FORMAT_VERSION = 1


def session_to_dict(result: SessionResult) -> dict:
    """Convert a session result to a JSON-serialisable dict."""
    return {
        "format_version": FORMAT_VERSION,
        "mechanism": result.mechanism,
        "oracle": result.oracle,
        "epsilon": result.epsilon,
        "window": result.window,
        "n_users": result.n_users,
        "domain_size": result.domain_size,
        "total_reports": result.total_reports,
        "max_window_spend": result.max_window_spend,
        "releases": result.releases.tolist(),
        "true_frequencies": result.true_frequencies.tolist(),
        "records": [
            {
                "t": r.t,
                "strategy": r.strategy,
                "publication_epsilon": r.publication_epsilon,
                "publication_users": r.publication_users,
                "dissimilarity_users": r.dissimilarity_users,
                "reports": r.reports,
                "dis": None if np.isnan(r.dis) else r.dis,
                "err": None if np.isnan(r.err) else r.err,
            }
            for r in result.records
        ],
    }


def session_from_dict(payload: Mapping) -> SessionResult:
    """Inverse of :func:`session_to_dict`.

    Validates the artifact before trusting it: a missing or skewed
    ``format_version`` (legacy artifacts predate the field) and any
    missing or ill-typed field raise
    :class:`~repro.exceptions.InvalidParameterError` with the offending
    key — never a bare ``KeyError``.
    """
    if not isinstance(payload, Mapping):
        raise InvalidParameterError(
            f"session artifact must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise InvalidParameterError(
            f"unsupported session format version {version!r} "
            f"(this build reads version {FORMAT_VERSION}; re-save the "
            f"run with the current library)"
        )
    try:
        releases = np.asarray(payload["releases"], dtype=np.float64)
        records = [
            StepRecord(
                t=int(r["t"]),
                release=releases[int(r["t"])],
                strategy=str(r["strategy"]),
                publication_epsilon=float(r["publication_epsilon"]),
                publication_users=int(r["publication_users"]),
                dissimilarity_users=int(r["dissimilarity_users"]),
                reports=int(r["reports"]),
                dis=float("nan") if r["dis"] is None else float(r["dis"]),
                err=float("nan") if r["err"] is None else float(r["err"]),
            )
            for r in payload["records"]
        ]
        return SessionResult(
            mechanism=str(payload["mechanism"]),
            oracle=str(payload["oracle"]),
            epsilon=float(payload["epsilon"]),
            window=int(payload["window"]),
            n_users=int(payload["n_users"]),
            domain_size=int(payload["domain_size"]),
            releases=releases,
            true_frequencies=np.asarray(
                payload["true_frequencies"], dtype=np.float64
            ),
            records=records,
            total_reports=int(payload["total_reports"]),
            max_window_spend=float(payload["max_window_spend"]),
        )
    except KeyError as error:
        raise InvalidParameterError(
            f"session artifact is missing field {error.args[0]!r} "
            f"(truncated or corrupt file?)"
        ) from error
    except (TypeError, ValueError, IndexError) as error:
        raise InvalidParameterError(
            f"session artifact has a malformed field: {error}"
        ) from error


def save_session(result: SessionResult, path: PathLike) -> None:
    """Write a session result to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(session_to_dict(result), handle)


def load_session(path: PathLike) -> SessionResult:
    """Read a session result saved by :func:`save_session`.

    Raises :class:`~repro.exceptions.InvalidParameterError` on files
    that are not valid JSON (e.g. truncated by a crashed writer) or
    whose schema fails :func:`session_from_dict` validation.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise InvalidParameterError(
                f"{path} is not valid JSON (truncated save?): {error}"
            ) from error
    return session_from_dict(payload)


def session_to_csv(result: SessionResult, path: PathLike) -> None:
    """Export a per-timestamp flat table (releases + truth + metadata)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    d = result.domain_size
    header = (
        ["t", "strategy", "publication_epsilon", "publication_users", "reports"]
        + [f"release_{k}" for k in range(d)]
        + [f"true_{k}" for k in range(d)]
    )
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for record in result.records:
            t = record.t
            writer.writerow(
                [
                    t,
                    record.strategy,
                    record.publication_epsilon,
                    record.publication_users,
                    record.reports,
                ]
                + [f"{v:.8g}" for v in result.releases[t]]
                + [f"{v:.8g}" for v in result.true_frequencies[t]]
            )


def series_to_csv(
    series: Mapping[str, Mapping[str, Mapping[float, float]]], path: PathLike
) -> None:
    """Export a figure-series dict (``panel -> method -> x -> value``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["panel", "method", "x", "value"])
        for panel, methods in series.items():
            for method, values in methods.items():
                for x, value in sorted(values.items()):
                    writer.writerow([panel, method, x, f"{value:.8g}"])
