"""``w``-event LDP stream-release mechanisms.

The seven methods evaluated in the paper (Section 7.1.3):

========  ============  ===========  =============
Name      Framework     Allocation   Reference
========  ============  ===========  =============
LBU       budget        uniform      Section 5.2.1
LSP       budget/pop.   sampling     Section 5.2.2
LBD       budget        distribution Algorithm 1
LBA       budget        absorption   Algorithm 2
LPU       population    uniform      Section 6.1
LPD       population    distribution Algorithm 3
LPA       population    absorption   Algorithm 4
========  ============  ===========  =============
"""

from .base import (
    StreamMechanism,
    available_mechanisms,
    get_mechanism,
    register_mechanism,
)
from .budget import LBA, LBD, LBU, LSP
from .common import estimate_dissimilarity, true_dissimilarity
from .population import LPA, LPD, LPU

#: Paper ordering of all seven methods.
ALL_METHODS = ("LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA")
#: Budget-division family (Section 5).
BUDGET_METHODS = ("LBU", "LSP", "LBD", "LBA")
#: Population-division family as plotted in the paper (Figures 4-5).
POPULATION_METHODS = ("LSP", "LPU", "LPD", "LPA")

__all__ = [
    "StreamMechanism",
    "get_mechanism",
    "register_mechanism",
    "available_mechanisms",
    "estimate_dissimilarity",
    "true_dissimilarity",
    "LBU",
    "LSP",
    "LBD",
    "LBA",
    "LPU",
    "LPD",
    "LPA",
    "ALL_METHODS",
    "BUDGET_METHODS",
    "POPULATION_METHODS",
]
