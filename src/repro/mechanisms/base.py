"""Mechanism interface for ``w``-event LDP stream release.

A mechanism is a server-side strategy: at every timestamp it receives a
:class:`~repro.engine.collector.TimestepContext` and must return a
:class:`~repro.engine.records.StepRecord` containing the released histogram
``r_t`` and metadata about how it was produced.  All data access goes
through ``ctx.collect`` so the engine's accountant and communication meter
see everything.

Mechanisms are stateful across timestamps (last release, remaining budget
or users, publication history) but are re-initialised per session via
:meth:`StreamMechanism.setup`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Type

import numpy as np

from ..engine.collector import ChunkContext, TimestepContext
from ..engine.records import StepRecord
from ..exceptions import InvalidParameterError
from ..freq_oracles import FrequencyOracle, get_oracle
from ..rng import SeedLike, ensure_rng


class StreamMechanism(abc.ABC):
    """Base class for all LDP stream-release mechanisms."""

    #: Registry/display name, e.g. ``"LBD"``.
    name: str = ""
    #: Whether the method adapts to stream dissimilarity (LBD/LBA/LPD/LPA).
    adaptive: bool = False
    #: Which framework the method belongs to: ``"budget"`` or ``"population"``.
    framework: str = ""
    #: Whether :meth:`step_many` overrides the per-step fallback with a
    #: chunk kernel whose data access goes exclusively through the
    #: :class:`~repro.engine.collector.ChunkContext` run primitives.
    #: All seven core mechanisms set this.  The non-adaptive ones
    #: (LBU/LSP/LPU) batch a whole chunk's rounds through
    #: :meth:`~repro.engine.collector.ChunkContext.collect_run`, since
    #: their collection schedule is a pure function of the timestamp.
    #: The adaptive budget methods (LBD/LBA) *speculate*: batch-draw a
    #: lookahead of M1 rounds, scan the publish decisions closed-form,
    #: and rewind/replay the generator when a publication invalidates
    #: the speculated tail.  The adaptive population methods (LPD/LPA)
    #: run a streamlined sequential loop over
    #: :meth:`~repro.engine.collector.ChunkContext.round_collector`
    #: (pool draws interleave with oracle draws, so rounds cannot be
    #: batched — the win is hoisted dispatch).  Every kernel is
    #: bit-identical to its ``step()`` loop.  Third-party subclasses
    #: that leave this ``False`` fall back to per-step execution; the
    #: engine only builds chunk contexts for kernels.
    chunk_kernel: bool = False

    def __init__(self) -> None:
        self.n_users = 0
        self.domain_size = 0
        self.epsilon = 0.0
        self.window = 0
        self.oracle: Optional[FrequencyOracle] = None
        self.rng = ensure_rng(None)
        self.last_release: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def setup(
        self,
        *,
        n_users: int,
        domain_size: int,
        epsilon: float,
        window: int,
        oracle: FrequencyOracle,
        rng: SeedLike = None,
    ) -> None:
        """Initialise per-session state.  Subclasses extend via ``_setup``."""
        if n_users <= 0:
            raise InvalidParameterError(f"n_users must be positive, got {n_users}")
        if domain_size < 2:
            raise InvalidParameterError(f"domain_size must be >= 2, got {domain_size}")
        if epsilon <= 0:
            raise InvalidParameterError(f"epsilon must be positive, got {epsilon}")
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.n_users = int(n_users)
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)
        self.window = int(window)
        self.oracle = get_oracle(oracle)
        self.rng = ensure_rng(rng)
        # r_0 = <0, ..., 0> (Algorithms 1-4, line 1).
        self.last_release = np.zeros(self.domain_size, dtype=np.float64)
        self._setup()

    def _setup(self) -> None:
        """Hook for subclass state; called at the end of :meth:`setup`."""

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def step(self, ctx: TimestepContext) -> StepRecord:
        """Process one timestamp and return the release record."""

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        """Process a contiguous chunk of timestamps; one record per step.

        Must be bit-identical to calling :meth:`step` per timestamp —
        same RNG draws in the same order, same records, same final
        mechanism state.  The base implementation *is* that loop.
        Mechanisms with ``chunk_kernel = True`` override it with a
        vectorized kernel that batches the chunk's collection rounds
        through :meth:`ChunkContext.collect_run`.
        """
        return [self.step(step_ctx) for step_ctx in ctx.timesteps()]

    # ------------------------------------------------------------------
    # SoA fusion protocol
    # ------------------------------------------------------------------
    def uniform_run_epsilon(self) -> Optional[float]:
        """SoA fusion hook: the fixed per-step all-user budget, if any.

        Mechanisms whose chunk is always *one all-user FO round per
        timestamp at one fixed budget* (LBU's ``eps/w``) return that
        budget; the SoA scheduler (:mod:`repro.engine.soa`) then fuses a
        whole bucket of such sessions into a single stacked oracle call
        per chunk, pairing it with :meth:`absorb_run` to rebuild each
        session's records.  ``None`` (the default) means no such fusion
        applies and the session runs through its ordinary chunk kernel.
        """
        return None

    def absorb_run(self, t0, frequencies, n_reports) -> List[StepRecord]:
        """Build a chunk's records from already-collected FO rounds.

        Counterpart of :meth:`uniform_run_epsilon`: ``frequencies`` /
        ``n_reports`` are exactly what the mechanism's own
        ``collect_run`` call would have returned for the chunk starting
        at ``t0``, already charged and metered by the caller.  Must
        update mechanism state (``last_release``) exactly as
        :meth:`step_many` would.  Only meaningful on mechanisms that
        return a budget from :meth:`uniform_run_epsilon`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support fused runs"
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable per-session state for :mod:`repro.persist`.

        Covers the base-class state (``last_release``) plus whatever the
        subclass reports via :meth:`_state`.  Constructor *configuration*
        (e.g. LSP's ``offset``) belongs in :meth:`_state` too: restore
        builds the mechanism from the registry with default arguments
        and :meth:`load_state` must put every knob back.
        """
        return {
            "name": self.name,
            "last_release": (
                None if self.last_release is None else self.last_release.copy()
            ),
            "extra": self._state(),
        }

    def load_state(self, state: dict) -> None:
        """Install state captured by :meth:`state_dict` (post-``setup``)."""
        if state.get("name") != self.name:
            raise InvalidParameterError(
                f"cannot load {state.get('name')!r} state into {self.name}"
            )
        last = state["last_release"]
        self.last_release = (
            None if last is None else np.asarray(last, dtype=np.float64).copy()
        )
        self._load_state(state["extra"])

    def _state(self) -> dict:
        """Hook: subclass-owned state (empty for memoryless mechanisms)."""
        return {}

    def _load_state(self, state: dict) -> None:
        """Hook: install subclass state captured by :meth:`_state`."""

    # ------------------------------------------------------------------
    def predicted_error(self, epsilon: float, n: int) -> float:
        """Closed-form potential publication error ``V(eps, n)`` for the
        session's oracle and domain (Section 5.3.2, Eq. 6)."""
        assert self.oracle is not None, "setup() must run before predicted_error"
        return self.oracle.variance(epsilon, n, self.domain_size)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[StreamMechanism]] = {}


def register_mechanism(cls: Type[StreamMechanism]) -> Type[StreamMechanism]:
    """Class decorator adding a mechanism to the by-name registry."""
    if not cls.name:
        raise InvalidParameterError(f"{cls.__name__} must define a name")
    _REGISTRY[cls.name.lower()] = cls
    return cls


def get_mechanism(name_or_instance, **kwargs) -> StreamMechanism:
    """Resolve a mechanism by name/class/instance (names as in the paper:
    LBU, LSP, LBD, LBA, LPU, LPD, LPA)."""
    if isinstance(name_or_instance, StreamMechanism):
        return name_or_instance
    if isinstance(name_or_instance, type) and issubclass(
        name_or_instance, StreamMechanism
    ):
        return name_or_instance(**kwargs)
    try:
        return _REGISTRY[str(name_or_instance).lower()](**kwargs)
    except KeyError:
        raise InvalidParameterError(
            f"unknown mechanism {name_or_instance!r}; available: "
            f"{sorted(_REGISTRY)}"
        ) from None


def available_mechanisms() -> list[str]:
    """Registered mechanism names (lower-case)."""
    return sorted(_REGISTRY)
