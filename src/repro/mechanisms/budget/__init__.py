"""Budget-division mechanisms (Section 5): LBU, LSP, LBD, LBA."""

from .lba import LBA
from .lbd import LBD
from .lbu import LBU
from .lsp import LSP

__all__ = ["LBU", "LSP", "LBD", "LBA"]
