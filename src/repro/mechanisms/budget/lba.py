"""LBA — LDP Budget Absorption (Algorithm 2).

Adaptive budget division with uniform pre-allocation: every timestamp
notionally owns ``eps/(2w)`` of publication budget.  A publication absorbs
the unused budget of the timestamps skipped since the last publication
(capped at ``w``), and afterwards an equal number of timestamps are
*nullified* — forced to approximate — so that no window ever exceeds its
publication half-budget (Theorem 5.3, Appendix A.3).

M1 (dissimilarity with ``eps/(2w)``) runs at every timestamp, including
nullified ones, exactly as in Algorithm 2 line 3.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.kernels_fast import first_exceed
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_NULLIFIED,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ..base import StreamMechanism, register_mechanism
from ..common import estimate_dissimilarity

#: Quiet steps (no publish) before the kernel switches from sequential
#: rounds to speculative batching (see :mod:`repro.mechanisms.budget.lbd`).
_QUIET_TRIGGER = 24

#: Don't speculate into a chunk remainder shorter than this (see LBD).
_SPECULATION_MIN = 8

#: Largest speculative sub-batch (see :mod:`repro.mechanisms.budget.lbd`).
_SUB_BATCH_MAX = 64


@register_mechanism
class LBA(StreamMechanism):
    """LDP Budget Absorption (Algorithm 2)."""

    name = "LBA"
    adaptive = True
    framework = "budget"
    chunk_kernel = True

    def _setup(self) -> None:
        # Last publication timestamp and its budget (line 1).  With 0-based
        # timestamps the "no publication yet" state is l = -1, eps_l2 = 0,
        # matching the paper's (l = 0, eps_l2 = 0) at 1-based t = 1.
        self._last_publication_t = -1
        self._last_publication_epsilon = 0.0
        # Perf-only speculation hint (steps since the last publication);
        # deliberately not checkpointed — it never affects the output.
        self._quiet_run = 0

    def _state(self) -> dict:
        return {
            "last_publication_t": self._last_publication_t,
            "last_publication_epsilon": self._last_publication_epsilon,
        }

    def _load_state(self, state: dict) -> None:
        self._last_publication_t = int(state["last_publication_t"])
        self._last_publication_epsilon = float(
            state["last_publication_epsilon"]
        )

    def step(self, ctx: TimestepContext) -> StepRecord:
        # --- Sub-mechanism M1 (same as LBD) ------------------------------
        unit = self.epsilon / (2.0 * self.window)
        estimate_m1 = ctx.collect(unit)
        dis = estimate_dissimilarity(estimate_m1, self.last_release)
        reports = estimate_m1.n_reports

        # --- Nullification check (lines 4-6) ------------------------------
        to_nullify = self._last_publication_epsilon / unit - 1.0
        if ctx.t - self._last_publication_t <= to_nullify:
            return StepRecord(
                t=ctx.t,
                release=self.last_release,
                strategy=STRATEGY_NULLIFIED,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
            )

        # --- Absorption and strategy determination (lines 8-16) ----------
        absorbable = ctx.t - (self._last_publication_t + to_nullify)
        publication_epsilon = unit * min(absorbable, float(self.window))
        if publication_epsilon > 0:
            err = self.predicted_error(publication_epsilon, ctx.n_users)
        else:
            err = math.inf

        if dis > err:
            estimate_m2 = ctx.collect(publication_epsilon)
            self.last_release = estimate_m2.frequencies
            self._last_publication_t = ctx.t
            self._last_publication_epsilon = publication_epsilon
            reports += estimate_m2.n_reports
            return StepRecord(
                t=ctx.t,
                release=estimate_m2.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=publication_epsilon,
                publication_users=estimate_m2.n_reports,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
                err=err,
            )

        return StepRecord(
            t=ctx.t,
            release=self.last_release,
            strategy=STRATEGY_APPROXIMATE,
            dissimilarity_users=estimate_m1.n_reports,
            reports=reports,
            dis=dis,
            err=err,
        )

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        """Hybrid chunk kernel, bit-identical to the :meth:`step` loop.

        Same hybrid sequential/speculative scheme as :meth:`LBD.step_many
        <repro.mechanisms.budget.lbd.LBD.step_many>`; LBA's decision
        scan is even simpler because between publications the
        nullification window and the absorbable budget are closed-form
        functions of the timestamp alone (the last-publication state is
        frozen until the next publish ends the segment).
        """
        length = ctx.length
        if length == 0:
            return []
        records: List[StepRecord] = []
        n_users = ctx.n_users
        t0 = ctx.t0
        w = self.window
        unit = self.epsilon / (2.0 * w)
        # Same float as every per-step estimate_m1.variance this chunk.
        var_m1 = self.predicted_error(unit, n_users)
        err_cache: dict = {}
        run = None
        pos = 0
        while pos < length:
            if (
                self._quiet_run < _QUIET_TRIGGER
                or length - pos < _SPECULATION_MIN
            ):
                # --- Sequential mode: publication expected soon -------
                if run is None:
                    run = ctx.budget_round_runner()
                t = t0 + pos
                est = run(pos, unit)
                diff = est - self.last_release
                dis = float(np.mean(diff * diff)) - var_m1
                to_nullify = self._last_publication_epsilon / unit - 1.0
                if t - self._last_publication_t <= to_nullify:
                    records.append(
                        StepRecord(
                            t=t,
                            release=self.last_release,
                            strategy=STRATEGY_NULLIFIED,
                            dissimilarity_users=n_users,
                            reports=n_users,
                            dis=dis,
                        )
                    )
                    self._quiet_run += 1
                    pos += 1
                    continue
                absorbable = t - (self._last_publication_t + to_nullify)
                publication_epsilon = unit * min(absorbable, float(w))
                if publication_epsilon > 0:
                    err = err_cache.get(publication_epsilon)
                    if err is None:
                        err = self.predicted_error(
                            publication_epsilon, n_users
                        )
                        err_cache[publication_epsilon] = err
                else:
                    err = math.inf
                if dis > err:
                    release = run(pos, publication_epsilon)
                    self.last_release = release
                    self._last_publication_t = t
                    self._last_publication_epsilon = publication_epsilon
                    records.append(
                        StepRecord(
                            t=t,
                            release=release,
                            strategy=STRATEGY_PUBLISH,
                            publication_epsilon=publication_epsilon,
                            publication_users=n_users,
                            dissimilarity_users=n_users,
                            reports=2 * n_users,
                            dis=dis,
                            err=err,
                        )
                    )
                    self._quiet_run = 0
                else:
                    records.append(
                        StepRecord(
                            t=t,
                            release=self.last_release,
                            strategy=STRATEGY_APPROXIMATE,
                            dissimilarity_users=n_users,
                            reports=n_users,
                            dis=dis,
                            err=err,
                        )
                    )
                    self._quiet_run += 1
                pos += 1
                continue
            # --- Speculative mode: long quiet segments ----------------
            # Growing sub-batches with a checkpoint before each: a
            # mid-batch publish discards and replays at most one
            # sub-batch (see LBD.step_many).  The last-publication state
            # is frozen until the publish that ends the segment, so the
            # whole scan is closed-form in the timestamp.
            last_t = self._last_publication_t
            to_nullify = self._last_publication_epsilon / unit - 1.0
            scan: List[tuple] = []  # (dis, err, nullified) per offset
            publish_at = -1
            publish_eps = 0.0
            release = None
            scanned = 0
            sub = _SPECULATION_MIN
            while pos + scanned < length and publish_at < 0:
                count = min(sub, length - pos - scanned)
                base = pos + scanned
                state0 = ctx.rng_checkpoint()
                spec = ctx.speculate_run(unit, range(base, base + count))
                diff = spec - self.last_release
                # Row-wise mean: bit-identical to per-row np.mean (same
                # pairwise summation per row), one vectorized call.
                sq_means = (diff * diff).mean(axis=1)
                # Elementwise subtraction: each entry is the same float64
                # op as the per-step ``float(sq_means[i]) - var_m1``.
                dis_arr = sq_means - var_m1
                err_arr = np.empty(count, dtype=np.float64)
                nullified_arr = []
                for i in range(count):
                    t = t0 + base + i
                    if t - last_t <= to_nullify:
                        # NaN never exceeds: ``dis > nan`` is False in
                        # both the numpy and compiled comparison kernels,
                        # so nullified rounds can never be the hit.
                        err_arr[i] = math.nan
                        nullified_arr.append(True)
                        continue
                    absorbable = t - (last_t + to_nullify)
                    publication_epsilon = unit * min(absorbable, float(w))
                    if publication_epsilon > 0:
                        err = err_cache.get(publication_epsilon)
                        if err is None:
                            err = self.predicted_error(
                                publication_epsilon, n_users
                            )
                            err_cache[publication_epsilon] = err
                    else:
                        err = math.inf
                    err_arr[i] = err
                    nullified_arr.append(False)
                # Decision scan through the (compiled-capable) comparison
                # kernel; records only read scan entries up to the
                # committed prefix, so filling the whole sub-batch is
                # record-identical to the old break-at-hit loop.
                hit = first_exceed(dis_arr, err_arr)
                scan.extend(
                    zip(dis_arr.tolist(), err_arr.tolist(), nullified_arr)
                )
                if hit >= 0:
                    t_hit = t0 + base + hit
                    absorbable = t_hit - (last_t + to_nullify)
                    publish_eps = unit * min(absorbable, float(w))
                if hit < 0:
                    ctx.commit_run(unit, range(base, base + count))
                    scanned += count
                    sub = min(sub * 2, _SUB_BATCH_MAX)
                    continue
                publish_at = scanned + hit
                keep = hit + 1
                if keep < count:
                    ctx.rng_restore(state0)
                ctx.commit_run(
                    [unit] * keep + [publish_eps],
                    list(range(base, base + keep)) + [base + hit],
                )
                if keep < count:
                    ctx.speculate_run(unit, range(base, base + keep))
                release = ctx.speculate_run(publish_eps, [base + hit])[0]
                scanned += keep
            committed = scanned
            if publish_at < 0:
                self._quiet_run += committed
            else:
                # Back to sequential mode: right after a publication the
                # next one tends to follow within a few steps.
                self._quiet_run = 0
            for i in range(committed):
                t = t0 + pos + i
                dis, err, nullified = scan[i]
                if i == publish_at:
                    self.last_release = release
                    self._last_publication_t = t
                    self._last_publication_epsilon = publish_eps
                    records.append(
                        StepRecord(
                            t=t,
                            release=release,
                            strategy=STRATEGY_PUBLISH,
                            publication_epsilon=publish_eps,
                            publication_users=n_users,
                            dissimilarity_users=n_users,
                            reports=2 * n_users,
                            dis=dis,
                            err=err,
                        )
                    )
                elif nullified:
                    records.append(
                        StepRecord(
                            t=t,
                            release=self.last_release,
                            strategy=STRATEGY_NULLIFIED,
                            dissimilarity_users=n_users,
                            reports=n_users,
                            dis=dis,
                        )
                    )
                else:
                    records.append(
                        StepRecord(
                            t=t,
                            release=self.last_release,
                            strategy=STRATEGY_APPROXIMATE,
                            dissimilarity_users=n_users,
                            reports=n_users,
                            dis=dis,
                            err=err,
                        )
                    )
            pos += committed
        return records
