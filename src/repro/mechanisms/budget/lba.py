"""LBA — LDP Budget Absorption (Algorithm 2).

Adaptive budget division with uniform pre-allocation: every timestamp
notionally owns ``eps/(2w)`` of publication budget.  A publication absorbs
the unused budget of the timestamps skipped since the last publication
(capped at ``w``), and afterwards an equal number of timestamps are
*nullified* — forced to approximate — so that no window ever exceeds its
publication half-budget (Theorem 5.3, Appendix A.3).

M1 (dissimilarity with ``eps/(2w)``) runs at every timestamp, including
nullified ones, exactly as in Algorithm 2 line 3.
"""

from __future__ import annotations

import math

from ...engine.collector import TimestepContext
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_NULLIFIED,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ..base import StreamMechanism, register_mechanism
from ..common import estimate_dissimilarity


@register_mechanism
class LBA(StreamMechanism):
    """LDP Budget Absorption (Algorithm 2)."""

    name = "LBA"
    adaptive = True
    framework = "budget"

    def _setup(self) -> None:
        # Last publication timestamp and its budget (line 1).  With 0-based
        # timestamps the "no publication yet" state is l = -1, eps_l2 = 0,
        # matching the paper's (l = 0, eps_l2 = 0) at 1-based t = 1.
        self._last_publication_t = -1
        self._last_publication_epsilon = 0.0

    def _state(self) -> dict:
        return {
            "last_publication_t": self._last_publication_t,
            "last_publication_epsilon": self._last_publication_epsilon,
        }

    def _load_state(self, state: dict) -> None:
        self._last_publication_t = int(state["last_publication_t"])
        self._last_publication_epsilon = float(
            state["last_publication_epsilon"]
        )

    def step(self, ctx: TimestepContext) -> StepRecord:
        # --- Sub-mechanism M1 (same as LBD) ------------------------------
        unit = self.epsilon / (2.0 * self.window)
        estimate_m1 = ctx.collect(unit)
        dis = estimate_dissimilarity(estimate_m1, self.last_release)
        reports = estimate_m1.n_reports

        # --- Nullification check (lines 4-6) ------------------------------
        to_nullify = self._last_publication_epsilon / unit - 1.0
        if ctx.t - self._last_publication_t <= to_nullify:
            return StepRecord(
                t=ctx.t,
                release=self.last_release,
                strategy=STRATEGY_NULLIFIED,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
            )

        # --- Absorption and strategy determination (lines 8-16) ----------
        absorbable = ctx.t - (self._last_publication_t + to_nullify)
        publication_epsilon = unit * min(absorbable, float(self.window))
        if publication_epsilon > 0:
            err = self.predicted_error(publication_epsilon, ctx.n_users)
        else:
            err = math.inf

        if dis > err:
            estimate_m2 = ctx.collect(publication_epsilon)
            self.last_release = estimate_m2.frequencies
            self._last_publication_t = ctx.t
            self._last_publication_epsilon = publication_epsilon
            reports += estimate_m2.n_reports
            return StepRecord(
                t=ctx.t,
                release=estimate_m2.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=publication_epsilon,
                publication_users=estimate_m2.n_reports,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
                err=err,
            )

        return StepRecord(
            t=ctx.t,
            release=self.last_release,
            strategy=STRATEGY_APPROXIMATE,
            dissimilarity_users=estimate_m1.n_reports,
            reports=reports,
            dis=dis,
            err=err,
        )
