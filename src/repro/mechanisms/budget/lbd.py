"""LBD — LDP Budget Distribution (Algorithm 1).

Adaptive budget division.  Each timestamp runs two sub-mechanisms:

* **M1** (lines 3-6): every user reports with the fixed dissimilarity
  budget ``eps/(2w)``; the server computes the unbiased dissimilarity
  ``dis`` of Theorem 5.2 against the last release.
* **M2** (lines 7-16): half of the *remaining* publication budget in the
  sliding window is pre-assigned (exponential decay across publications,
  like BD in the centralized setting); its closed-form error ``err`` is
  compared with ``dis``; publication happens only if the fresh estimate
  would beat the approximation.

The total spend per window is eps/2 (M1) + at most eps/2 (M2, geometric
series), so the mechanism is ``w``-event eps-LDP (Theorem 5.3).
"""

from __future__ import annotations

import math

from ...engine.collector import TimestepContext
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ...streams.windows import SlidingWindowSum
from ..base import StreamMechanism, register_mechanism
from ..common import estimate_dissimilarity

#: Budgets below this are treated as unusable (publication error ~ infinite).
_MIN_USABLE_EPSILON = 1e-4


@register_mechanism
class LBD(StreamMechanism):
    """LDP Budget Distribution (Algorithm 1)."""

    name = "LBD"
    adaptive = True
    framework = "budget"

    def _setup(self) -> None:
        self._spent_publication = SlidingWindowSum(self.window)

    def _state(self) -> dict:
        return {"spent_publication": self._spent_publication.state_dict()}

    def _load_state(self, state: dict) -> None:
        self._spent_publication.load_state(state["spent_publication"])

    def step(self, ctx: TimestepContext) -> StepRecord:
        # --- Sub-mechanism M1: private dissimilarity estimation ---------
        dissim_epsilon = self.epsilon / (2.0 * self.window)
        estimate_m1 = ctx.collect(dissim_epsilon)
        dis = estimate_dissimilarity(estimate_m1, self.last_release)
        reports = estimate_m1.n_reports

        # --- Sub-mechanism M2: strategy determination (lines 7-16) ------
        remaining = self.epsilon / 2.0 - self._spent_publication.window_sum(ctx.t)
        remaining = max(0.0, remaining)
        publication_epsilon = remaining / 2.0
        if publication_epsilon >= _MIN_USABLE_EPSILON:
            err = self.predicted_error(publication_epsilon, ctx.n_users)
        else:
            err = math.inf

        if dis > err:
            estimate_m2 = ctx.collect(publication_epsilon)
            self.last_release = estimate_m2.frequencies
            self._spent_publication.record(ctx.t, publication_epsilon)
            reports += estimate_m2.n_reports
            return StepRecord(
                t=ctx.t,
                release=estimate_m2.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=publication_epsilon,
                publication_users=estimate_m2.n_reports,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
                err=err,
            )

        self._spent_publication.record(ctx.t, 0.0)
        return StepRecord(
            t=ctx.t,
            release=self.last_release,
            strategy=STRATEGY_APPROXIMATE,
            dissimilarity_users=estimate_m1.n_reports,
            reports=reports,
            dis=dis,
            err=err,
        )
