"""LBD — LDP Budget Distribution (Algorithm 1).

Adaptive budget division.  Each timestamp runs two sub-mechanisms:

* **M1** (lines 3-6): every user reports with the fixed dissimilarity
  budget ``eps/(2w)``; the server computes the unbiased dissimilarity
  ``dis`` of Theorem 5.2 against the last release.
* **M2** (lines 7-16): half of the *remaining* publication budget in the
  sliding window is pre-assigned (exponential decay across publications,
  like BD in the centralized setting); its closed-form error ``err`` is
  compared with ``dis``; publication happens only if the fresh estimate
  would beat the approximation.

The total spend per window is eps/2 (M1) + at most eps/2 (M2, geometric
series), so the mechanism is ``w``-event eps-LDP (Theorem 5.3).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.kernels_fast import first_exceed
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ...streams.windows import SlidingWindowSum
from ..base import StreamMechanism, register_mechanism
from ..common import estimate_dissimilarity

#: Budgets below this are treated as unusable (publication error ~ infinite).
_MIN_USABLE_EPSILON = 1e-4

#: Quiet steps (no publish) before the kernel switches from sequential
#: rounds to speculative batching.  Right after a publication the next one
#: is usually only a few steps away — speculating there discards and
#: redraws most of its lookahead — while a stretch this long signals a
#: genuinely stable segment where batched lookahead draws will stand.
_QUIET_TRIGGER = 24

#: Don't bother speculating into a chunk remainder shorter than this:
#: a tiny batch pays the batched-sampler setup without amortizing it.
_SPECULATION_MIN = 8

#: Largest speculative sub-batch.  Batched draws are near their asymptotic
#: per-round cost by this size, and a mid-batch publish wastes at most one
#: sub-batch of draws (discarded tail plus replayed prefix).
_SUB_BATCH_MAX = 64


@register_mechanism
class LBD(StreamMechanism):
    """LDP Budget Distribution (Algorithm 1)."""

    name = "LBD"
    adaptive = True
    framework = "budget"
    chunk_kernel = True

    def _setup(self) -> None:
        self._spent_publication = SlidingWindowSum(self.window)
        # Perf-only speculation hint (steps since the last publication);
        # deliberately not checkpointed — it never affects the output.
        self._quiet_run = 0

    def _state(self) -> dict:
        return {"spent_publication": self._spent_publication.state_dict()}

    def _load_state(self, state: dict) -> None:
        self._spent_publication.load_state(state["spent_publication"])

    def step(self, ctx: TimestepContext) -> StepRecord:
        # --- Sub-mechanism M1: private dissimilarity estimation ---------
        dissim_epsilon = self.epsilon / (2.0 * self.window)
        estimate_m1 = ctx.collect(dissim_epsilon)
        dis = estimate_dissimilarity(estimate_m1, self.last_release)
        reports = estimate_m1.n_reports

        # --- Sub-mechanism M2: strategy determination (lines 7-16) ------
        remaining = self.epsilon / 2.0 - self._spent_publication.window_sum(ctx.t)
        remaining = max(0.0, remaining)
        publication_epsilon = remaining / 2.0
        if publication_epsilon >= _MIN_USABLE_EPSILON:
            err = self.predicted_error(publication_epsilon, ctx.n_users)
        else:
            err = math.inf

        if dis > err:
            estimate_m2 = ctx.collect(publication_epsilon)
            self.last_release = estimate_m2.frequencies
            self._spent_publication.record(ctx.t, publication_epsilon)
            reports += estimate_m2.n_reports
            return StepRecord(
                t=ctx.t,
                release=estimate_m2.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=publication_epsilon,
                publication_users=estimate_m2.n_reports,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
                err=err,
            )

        self._spent_publication.record(ctx.t, 0.0)
        return StepRecord(
            t=ctx.t,
            release=self.last_release,
            strategy=STRATEGY_APPROXIMATE,
            dissimilarity_users=estimate_m1.n_reports,
            reports=reports,
            dis=dis,
            err=err,
        )

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        """Hybrid chunk kernel, bit-identical to the :meth:`step` loop.

        Between two publications every round is a fixed-``eps/(2w)`` M1
        run, so when the observed publication cadence is long the kernel
        speculatively batch-draws M1 estimates for a lookahead of
        timestamps, scans the ``dis``/``err`` decisions (previewing the
        remaining-budget window without mutating it), and commits whole
        no-publish segments at once.  On the first publish decision it
        rewinds the generator to the segment start, redraws the valid M1
        prefix (bit-identical values — the run samplers are
        prefix-stable), performs the M2 draw from the
        now-correctly-positioned generator, and discards the speculated
        tail.  When a publication is likely near — right after one, when
        short segments would discard most of their lookahead — it
        instead runs rounds one at a time through the prepared
        :meth:`~repro.engine.collector.ChunkContext.budget_round_runner`
        (zero wasted draws, oracle setup hoisted), and only returns to
        speculation after a sustained publish-free quiet run.  See
        ``docs/ARCHITECTURE.md`` ("Bulk ingestion") for the RNG-order
        argument.
        """
        length = ctx.length
        if length == 0:
            return []
        records: List[StepRecord] = []
        n_users = ctx.n_users
        t0 = ctx.t0
        window = self._spent_publication
        eps_m1 = self.epsilon / (2.0 * self.window)
        half = self.epsilon / 2.0
        # Same float as every per-step estimate_m1.variance this chunk.
        var_m1 = self.predicted_error(eps_m1, n_users)
        err_cache: dict = {}
        run = None
        pos = 0
        while pos < length:
            if (
                self._quiet_run < _QUIET_TRIGGER
                or length - pos < _SPECULATION_MIN
            ):
                # --- Sequential mode: publication expected soon -------
                if run is None:
                    run = ctx.budget_round_runner()
                t = t0 + pos
                est = run(pos, eps_m1)
                diff = est - self.last_release
                dis = float(np.mean(diff * diff)) - var_m1
                remaining = half - window.window_sum(t)
                remaining = max(0.0, remaining)
                publication_epsilon = remaining / 2.0
                if publication_epsilon >= _MIN_USABLE_EPSILON:
                    err = err_cache.get(publication_epsilon)
                    if err is None:
                        err = self.predicted_error(
                            publication_epsilon, n_users
                        )
                        err_cache[publication_epsilon] = err
                else:
                    err = math.inf
                if dis > err:
                    release = run(pos, publication_epsilon)
                    self.last_release = release
                    window.record(t, publication_epsilon)
                    records.append(
                        StepRecord(
                            t=t,
                            release=release,
                            strategy=STRATEGY_PUBLISH,
                            publication_epsilon=publication_epsilon,
                            publication_users=n_users,
                            dissimilarity_users=n_users,
                            reports=2 * n_users,
                            dis=dis,
                            err=err,
                        )
                    )
                    self._quiet_run = 0
                else:
                    window.record(t, 0.0)
                    records.append(
                        StepRecord(
                            t=t,
                            release=self.last_release,
                            strategy=STRATEGY_APPROXIMATE,
                            dissimilarity_users=n_users,
                            reports=n_users,
                            dis=dis,
                            err=err,
                        )
                    )
                    self._quiet_run += 1
                pos += 1
                continue
            # --- Speculative mode: long quiet segments ----------------
            # The lookahead is drawn in growing sub-batches with a
            # generator checkpoint before each, so a mid-batch publish
            # discards and replays at most one sub-batch (bounded waste)
            # while long no-publish stretches still amortize the batched
            # draws.
            dis_scan: List[float] = []
            err_scan: List[float] = []
            publish_at = -1
            publish_eps = 0.0
            release = None
            scanned = 0
            sub = _SPECULATION_MIN
            while pos + scanned < length and publish_at < 0:
                count = min(sub, length - pos - scanned)
                base = pos + scanned
                state0 = ctx.rng_checkpoint()
                spec = ctx.speculate_run(eps_m1, range(base, base + count))
                diff = spec - self.last_release
                # Row-wise mean reduces each row with the same pairwise
                # summation as np.mean on the row view — bit-identical to
                # the per-step dissimilarity, one vectorized call.
                sq_means = (diff * diff).mean(axis=1)
                sums = window.preview(range(t0 + base, t0 + base + count))
                # Elementwise subtraction: each entry is the same float64
                # op as the per-step ``float(sq_means[i]) - var_m1``.
                dis_arr = sq_means - var_m1
                err_arr = np.empty(count, dtype=np.float64)
                for i in range(count):
                    remaining = half - sums[i]
                    remaining = max(0.0, remaining)
                    publication_epsilon = remaining / 2.0
                    if publication_epsilon >= _MIN_USABLE_EPSILON:
                        err = err_cache.get(publication_epsilon)
                        if err is None:
                            err = self.predicted_error(
                                publication_epsilon, n_users
                            )
                            err_cache[publication_epsilon] = err
                    else:
                        err = math.inf
                    err_arr[i] = err
                # Decision scan through the (compiled-capable) comparison
                # kernel; records only ever read scan entries up to the
                # committed prefix, so filling the whole sub-batch is
                # record-identical to the old break-at-hit loop.
                hit = first_exceed(dis_arr, err_arr)
                dis_scan.extend(dis_arr.tolist())
                err_scan.extend(err_arr.tolist())
                if hit >= 0:
                    publish_eps = max(0.0, half - sums[hit]) / 2.0
                if hit < 0:
                    # The whole sub-batch approximates: every speculative
                    # draw stands; commit its M1 charges in bulk and keep
                    # scanning with a doubled lookahead.
                    ctx.commit_run(eps_m1, range(base, base + count))
                    scanned += count
                    sub = min(sub * 2, _SUB_BATCH_MAX)
                    continue
                publish_at = scanned + hit
                keep = hit + 1
                if keep < count:
                    # Discard-and-replay: the tail draws are invalid.
                    # Rewinding to the sub-batch checkpoint and redrawing
                    # the prefix reproduces the exact speculated values
                    # while advancing the generator to where the per-step
                    # path would stand before the M2 draw.
                    ctx.rng_restore(state0)
                # One non-uniform bulk charge covers the committed M1
                # rounds plus the publication round at the same final
                # timestamp — the exact per-step ledger order.
                ctx.commit_run(
                    [eps_m1] * keep + [publish_eps],
                    list(range(base, base + keep)) + [base + hit],
                )
                if keep < count:
                    ctx.speculate_run(eps_m1, range(base, base + keep))
                release = ctx.speculate_run(publish_eps, [base + hit])[0]
                scanned += keep
            committed = scanned
            if publish_at < 0:
                self._quiet_run += committed
            else:
                # Back to sequential mode: right after a publication the
                # next one tends to follow within a few steps.
                self._quiet_run = 0
            for i in range(committed):
                t = t0 + pos + i
                publishing = i == publish_at
                # Replay the per-step eviction/append order exactly:
                # window_sum(t) evicts before the step's record lands.
                window.window_sum(t)
                if publishing:
                    self.last_release = release
                    window.record(t, publish_eps)
                    records.append(
                        StepRecord(
                            t=t,
                            release=release,
                            strategy=STRATEGY_PUBLISH,
                            publication_epsilon=publish_eps,
                            publication_users=n_users,
                            dissimilarity_users=n_users,
                            reports=2 * n_users,
                            dis=dis_scan[i],
                            err=err_scan[i],
                        )
                    )
                else:
                    window.record(t, 0.0)
                    records.append(
                        StepRecord(
                            t=t,
                            release=self.last_release,
                            strategy=STRATEGY_APPROXIMATE,
                            dissimilarity_users=n_users,
                            reports=n_users,
                            dis=dis_scan[i],
                            err=err_scan[i],
                        )
                    )
            pos += committed
        return records
