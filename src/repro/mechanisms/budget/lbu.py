"""LBU — LDP Budget Uniform method (Section 5.2.1).

The straightforward baseline: the window budget ``eps`` is split evenly
over the ``w`` timestamps, and *every* user reports through the FO with
``eps / w`` at *every* timestamp.  MSE is ``V(eps/w, N)`` which blows up
quickly with ``w`` because LDP noise is exponential in the inverse budget.
"""

from __future__ import annotations

from ...engine.collector import TimestepContext
from ...engine.records import STRATEGY_PUBLISH, StepRecord
from ..base import StreamMechanism, register_mechanism


@register_mechanism
class LBU(StreamMechanism):
    """LDP Budget Uniform: ``eps/w`` per timestamp, all users report."""

    name = "LBU"
    adaptive = False
    framework = "budget"

    def step(self, ctx: TimestepContext) -> StepRecord:
        per_step_epsilon = self.epsilon / self.window
        estimate = ctx.collect(per_step_epsilon)
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=per_step_epsilon,
            publication_users=estimate.n_reports,
            reports=estimate.n_reports,
        )
