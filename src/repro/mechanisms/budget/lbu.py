"""LBU — LDP Budget Uniform method (Section 5.2.1).

The straightforward baseline: the window budget ``eps`` is split evenly
over the ``w`` timestamps, and *every* user reports through the FO with
``eps / w`` at *every* timestamp.  MSE is ``V(eps/w, N)`` which blows up
quickly with ``w`` because LDP noise is exponential in the inverse budget.
"""

from __future__ import annotations

from typing import List

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.records import STRATEGY_PUBLISH, StepRecord
from ..base import StreamMechanism, register_mechanism


@register_mechanism
class LBU(StreamMechanism):
    """LDP Budget Uniform: ``eps/w`` per timestamp, all users report."""

    name = "LBU"
    adaptive = False
    framework = "budget"
    chunk_kernel = True

    def step(self, ctx: TimestepContext) -> StepRecord:
        per_step_epsilon = self.epsilon / self.window
        estimate = ctx.collect(per_step_epsilon)
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=per_step_epsilon,
            publication_users=estimate.n_reports,
            reports=estimate.n_reports,
        )

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        # Every timestamp collects from everyone with the same budget, so
        # the whole chunk is one batched run of FO rounds.
        per_step_epsilon = self.epsilon / self.window
        frequencies, n_reports = ctx.collect_run(per_step_epsilon)
        records = []
        for i in range(ctx.length):
            release = frequencies[i]
            reports = int(n_reports[i])
            records.append(
                StepRecord(
                    t=ctx.t0 + i,
                    release=release,
                    strategy=STRATEGY_PUBLISH,
                    publication_epsilon=per_step_epsilon,
                    publication_users=reports,
                    reports=reports,
                )
            )
        if ctx.length:
            self.last_release = records[-1].release
        return records
