"""LBU — LDP Budget Uniform method (Section 5.2.1).

The straightforward baseline: the window budget ``eps`` is split evenly
over the ``w`` timestamps, and *every* user reports through the FO with
``eps / w`` at *every* timestamp.  MSE is ``V(eps/w, N)`` which blows up
quickly with ``w`` because LDP noise is exponential in the inverse budget.
"""

from __future__ import annotations

from typing import List

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.records import STRATEGY_PUBLISH, StepRecord
from ..base import StreamMechanism, register_mechanism


@register_mechanism
class LBU(StreamMechanism):
    """LDP Budget Uniform: ``eps/w`` per timestamp, all users report."""

    name = "LBU"
    adaptive = False
    framework = "budget"
    chunk_kernel = True

    def step(self, ctx: TimestepContext) -> StepRecord:
        per_step_epsilon = self.epsilon / self.window
        estimate = ctx.collect(per_step_epsilon)
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=per_step_epsilon,
            publication_users=estimate.n_reports,
            reports=estimate.n_reports,
        )

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        # Every timestamp collects from everyone with the same budget, so
        # the whole chunk is one batched run of FO rounds.
        frequencies, n_reports = ctx.collect_run(self.epsilon / self.window)
        return self.absorb_run(ctx.t0, frequencies, n_reports)

    def uniform_run_epsilon(self) -> float:
        # One all-user round at eps/w every timestamp: the shape the SoA
        # scheduler can fuse across a whole bucket of sessions.
        return self.epsilon / self.window

    def absorb_run(self, t0, frequencies, n_reports) -> List[StepRecord]:
        per_step_epsilon = self.epsilon / self.window
        records = []
        for i in range(frequencies.shape[0]):
            release = frequencies[i]
            reports = int(n_reports[i])
            records.append(
                StepRecord(
                    t=t0 + i,
                    release=release,
                    strategy=STRATEGY_PUBLISH,
                    publication_epsilon=per_step_epsilon,
                    publication_users=reports,
                    reports=reports,
                )
            )
        if records:
            self.last_release = records[-1].release
        return records
