"""LSP — LDP Sampling method (Section 5.2.2).

Invest the whole window budget ``eps`` at a single *sampling* timestamp
per window and approximate the following ``w - 1`` timestamps with that
release.  Excellent on static streams (fresh estimates use the full
budget), terrible at tracking changes — the approximation error
``(c_t - c_l)^2`` is unbounded by design.

Section 6.1 points out LSP is equally a degenerate population-division
method (one group holds everyone, the rest are empty), which is why the
paper plots it with the population family; its CFPU is ``1/w`` either way.
"""

from __future__ import annotations

from ...engine.collector import TimestepContext
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ..base import StreamMechanism, register_mechanism


@register_mechanism
class LSP(StreamMechanism):
    """LDP Sampling: full ``eps`` every ``w`` timestamps, approximate between.

    Parameters
    ----------
    offset:
        Position of the sampling timestamp inside each window (default 0,
        i.e. publish at t = 0, w, 2w, ...).
    """

    name = "LSP"
    adaptive = False
    framework = "budget"

    def __init__(self, offset: int = 0):
        super().__init__()
        self.offset = int(offset)

    def step(self, ctx: TimestepContext) -> StepRecord:
        if ctx.t % self.window == self.offset % self.window:
            estimate = ctx.collect(self.epsilon)
            self.last_release = estimate.frequencies
            return StepRecord(
                t=ctx.t,
                release=estimate.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=self.epsilon,
                publication_users=estimate.n_reports,
                reports=estimate.n_reports,
            )
        return StepRecord(
            t=ctx.t,
            release=self.last_release,
            strategy=STRATEGY_APPROXIMATE,
        )
