"""LSP — LDP Sampling method (Section 5.2.2).

Invest the whole window budget ``eps`` at a single *sampling* timestamp
per window and approximate the following ``w - 1`` timestamps with that
release.  Excellent on static streams (fresh estimates use the full
budget), terrible at tracking changes — the approximation error
``(c_t - c_l)^2`` is unbounded by design.

Section 6.1 points out LSP is equally a degenerate population-division
method (one group holds everyone, the rest are empty), which is why the
paper plots it with the population family; its CFPU is ``1/w`` either way.
"""

from __future__ import annotations

from typing import List

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ..base import StreamMechanism, register_mechanism


@register_mechanism
class LSP(StreamMechanism):
    """LDP Sampling: full ``eps`` every ``w`` timestamps, approximate between.

    Parameters
    ----------
    offset:
        Position of the sampling timestamp inside each window (default 0,
        i.e. publish at t = 0, w, 2w, ...).
    """

    name = "LSP"
    adaptive = False
    framework = "budget"
    chunk_kernel = True

    def __init__(self, offset: int = 0):
        super().__init__()
        self.offset = int(offset)

    def _state(self) -> dict:
        # The sampling phase is constructor configuration, not derived
        # state — restore rebuilds LSP() with the default offset, so the
        # checkpoint must carry it.
        return {"offset": self.offset}

    def _load_state(self, state: dict) -> None:
        self.offset = int(state["offset"])

    def step(self, ctx: TimestepContext) -> StepRecord:
        if ctx.t % self.window == self.offset % self.window:
            estimate = ctx.collect(self.epsilon)
            self.last_release = estimate.frequencies
            return StepRecord(
                t=ctx.t,
                release=estimate.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=self.epsilon,
                publication_users=estimate.n_reports,
                reports=estimate.n_reports,
            )
        return StepRecord(
            t=ctx.t,
            release=self.last_release,
            strategy=STRATEGY_APPROXIMATE,
        )

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        # The sampling schedule is a pure function of t, so the chunk's
        # publish timestamps are known up front; only they draw, in order.
        phase = self.offset % self.window
        publish_offsets = [
            i
            for i in range(ctx.length)
            if (ctx.t0 + i) % self.window == phase
        ]
        frequencies, n_reports = ctx.collect_run(
            self.epsilon, offsets=publish_offsets
        )
        records: List[StepRecord] = []
        cursor = 0
        for i in range(ctx.length):
            if cursor < len(publish_offsets) and publish_offsets[cursor] == i:
                release = frequencies[cursor]
                reports = int(n_reports[cursor])
                cursor += 1
                self.last_release = release
                records.append(
                    StepRecord(
                        t=ctx.t0 + i,
                        release=release,
                        strategy=STRATEGY_PUBLISH,
                        publication_epsilon=self.epsilon,
                        publication_users=reports,
                        reports=reports,
                    )
                )
            else:
                records.append(
                    StepRecord(
                        t=ctx.t0 + i,
                        release=self.last_release,
                        strategy=STRATEGY_APPROXIMATE,
                    )
                )
        return records
