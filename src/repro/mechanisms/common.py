"""Shared pieces of the adaptive mechanisms (Sections 5.3 / 6.2).

All four adaptive methods (LBD, LBA, LPD, LPA) share the same M1 logic:
estimate the dissimilarity between the current true histogram and the last
release from LDP reports, using the bias-corrected estimator of
Theorem 5.2:

    dis = (1/d) * sum_k (c_t1[k] - r_l[k])^2  -  (1/d) * sum_k Var(c_t1[k])

The second term removes the inflation the LDP noise adds to the squared
distance, making ``dis`` an unbiased estimate of the true square error
``dis* = (1/d) Σ (c_t[k] - r_l[k])^2`` — at the price of occasionally
going negative, which is harmless because it is only *compared* against a
positive potential publication error.
"""

from __future__ import annotations

import numpy as np

from ..freq_oracles import FOEstimate


def estimate_dissimilarity(estimate: FOEstimate, last_release: np.ndarray) -> float:
    """Unbiased dissimilarity estimate of Theorem 5.2 / Eq. (4)."""
    diff = estimate.frequencies - np.asarray(last_release, dtype=np.float64)
    raw = float(np.mean(diff * diff))
    return raw - estimate.variance


def true_dissimilarity(
    true_frequencies: np.ndarray, last_release: np.ndarray
) -> float:
    """The estimand ``dis*`` of Eq. (3) — used only by tests/analysis."""
    diff = np.asarray(true_frequencies, dtype=np.float64) - np.asarray(
        last_release, dtype=np.float64
    )
    return float(np.mean(diff * diff))
