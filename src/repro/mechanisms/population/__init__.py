"""Population-division mechanisms (Section 6): LPU, LPD, LPA."""

from .lpa import LPA
from .lpd import LPD
from .lpu import LPU

__all__ = ["LPU", "LPD", "LPA"]
