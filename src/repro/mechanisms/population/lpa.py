"""LPA — LDP Population Absorption (Algorithm 4).

The population-division analogue of LBA: every timestamp notionally owns a
publication group of ``⌊N/(2w)⌋`` users; a publication absorbs the unused
groups of the timestamps skipped since the last publication (capped at
``w``) and afterwards an equal number of timestamps are nullified so that
the publication population inside any window never exceeds ``N/2``
(Theorem 6.2, Appendix A.5).

M1 — a fresh ``⌊N/(2w)⌋``-user dissimilarity round with the full budget —
runs at every timestamp, including nullified ones (Alg. 4 line 3).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.population import UserPool
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_NULLIFIED,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ...exceptions import InvalidParameterError
from ..base import StreamMechanism, register_mechanism
from ..common import estimate_dissimilarity

_EMPTY = np.empty(0, dtype=np.int64)


@register_mechanism
class LPA(StreamMechanism):
    """LDP Population Absorption (Algorithm 4)."""

    name = "LPA"
    adaptive = True
    framework = "population"
    chunk_kernel = True

    def _setup(self) -> None:
        self._m1_size = self.n_users // (2 * self.window)
        if self._m1_size < 1:
            raise InvalidParameterError(
                f"population division needs N >= 2w users "
                f"(N={self.n_users}, w={self.window})"
            )
        self._pool = UserPool(self.n_users, seed=self.rng)
        self._history: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # "No publication yet": l = -1 with an empty publication group.
        self._last_publication_t = -1
        self._last_publication_size = 0

    def _state(self) -> dict:
        return {
            "pool": self._pool.state_dict(),
            "history": [
                (t, m1.copy(), m2.copy())
                for t, (m1, m2) in sorted(self._history.items())
            ],
            "last_publication_t": self._last_publication_t,
            "last_publication_size": self._last_publication_size,
        }

    def _load_state(self, state: dict) -> None:
        self._pool.load_state(state["pool"])
        self._history = {
            int(t): (
                np.asarray(m1, dtype=np.int64),
                np.asarray(m2, dtype=np.int64),
            )
            for t, m1, m2 in state["history"]
        }
        self._last_publication_t = int(state["last_publication_t"])
        self._last_publication_size = int(state["last_publication_size"])

    def step(self, ctx: TimestepContext) -> StepRecord:
        # --- Sub-mechanism M1 (same as LPD) -------------------------------
        users_m1 = self._pool.sample(self._m1_size)
        estimate_m1 = ctx.collect(self.epsilon, user_ids=users_m1)
        dis = estimate_dissimilarity(estimate_m1, self.last_release)
        reports = estimate_m1.n_reports

        users_m2 = _EMPTY
        # --- Nullification check (lines 4-6) -------------------------------
        to_nullify = self._last_publication_size / self._m1_size - 1.0
        if ctx.t - self._last_publication_t <= to_nullify:
            record = StepRecord(
                t=ctx.t,
                release=self.last_release,
                strategy=STRATEGY_NULLIFIED,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
            )
        else:
            # --- Absorption & strategy determination (lines 8-18) ---------
            absorbable = ctx.t - (self._last_publication_t + to_nullify)
            n_potential = int(self._m1_size * min(absorbable, float(self.window)))
            if n_potential >= 1:
                err = self.predicted_error(self.epsilon, n_potential)
            else:
                err = math.inf

            if dis > err:
                users_m2 = self._pool.sample(n_potential)
                estimate_m2 = ctx.collect(self.epsilon, user_ids=users_m2)
                self.last_release = estimate_m2.frequencies
                self._last_publication_t = ctx.t
                self._last_publication_size = n_potential
                record = StepRecord(
                    t=ctx.t,
                    release=estimate_m2.frequencies,
                    strategy=STRATEGY_PUBLISH,
                    publication_epsilon=self.epsilon,
                    publication_users=estimate_m2.n_reports,
                    dissimilarity_users=estimate_m1.n_reports,
                    reports=reports + estimate_m2.n_reports,
                    dis=dis,
                    err=err,
                )
            else:
                record = StepRecord(
                    t=ctx.t,
                    release=self.last_release,
                    strategy=STRATEGY_APPROXIMATE,
                    dissimilarity_users=estimate_m1.n_reports,
                    reports=reports,
                    dis=dis,
                    err=err,
                )

        self._history[ctx.t] = (users_m1, users_m2)

        # --- Recycling (lines 20-22) --------------------------------------
        expired = ctx.t - self.window + 1
        if expired >= 0:
            m1_old, m2_old = self._history.pop(expired)
            self._pool.recycle(m1_old)
            self._pool.recycle(m2_old)
        return record

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        """Streamlined chunk kernel, bit-identical to the :meth:`step` loop.

        Same sequential shape as :meth:`LPD.step_many
        <repro.mechanisms.population.lpd.LPD.step_many>` — population
        draws interleave on the shared generator, so the kernel issues
        exactly the per-step draws and wins by hoisting the round
        collector and the pool/recycling fast paths.  The nullification
        and absorption state is carried in locals and written back once.
        """
        if ctx.length == 0:
            return []
        records: List[StepRecord] = []
        eps = self.epsilon
        w = self.window
        t0 = ctx.t0
        m1_size = self._m1_size
        pool = self._pool
        history = self._history
        collect = ctx.round_collector(eps)
        # Same float as every per-step estimate_m1.variance this chunk.
        var_m1 = self.predicted_error(eps, m1_size)
        err_cache: dict = {}
        last_release = self.last_release
        last_t = self._last_publication_t
        last_size = self._last_publication_size
        for i in range(ctx.length):
            t = t0 + i
            users_m1 = pool.sample_run(m1_size)
            frequencies = collect(i, users_m1)
            diff = frequencies - last_release
            dis = float(np.mean(diff * diff)) - var_m1

            users_m2 = _EMPTY
            to_nullify = last_size / m1_size - 1.0
            if t - last_t <= to_nullify:
                records.append(
                    StepRecord(
                        t=t,
                        release=last_release,
                        strategy=STRATEGY_NULLIFIED,
                        dissimilarity_users=m1_size,
                        reports=m1_size,
                        dis=dis,
                    )
                )
            else:
                absorbable = t - (last_t + to_nullify)
                n_potential = int(m1_size * min(absorbable, float(w)))
                if n_potential >= 1:
                    err = err_cache.get(n_potential)
                    if err is None:
                        err = self.predicted_error(eps, n_potential)
                        err_cache[n_potential] = err
                else:
                    err = math.inf

                if dis > err:
                    users_m2 = pool.sample_run(n_potential)
                    last_release = collect(i, users_m2)
                    last_t = t
                    last_size = n_potential
                    records.append(
                        StepRecord(
                            t=t,
                            release=last_release,
                            strategy=STRATEGY_PUBLISH,
                            publication_epsilon=eps,
                            publication_users=n_potential,
                            dissimilarity_users=m1_size,
                            reports=m1_size + n_potential,
                            dis=dis,
                            err=err,
                        )
                    )
                else:
                    records.append(
                        StepRecord(
                            t=t,
                            release=last_release,
                            strategy=STRATEGY_APPROXIMATE,
                            dissimilarity_users=m1_size,
                            reports=m1_size,
                            dis=dis,
                            err=err,
                        )
                    )

            history[t] = (users_m1, users_m2)
            expired = t - w + 1
            if expired >= 0:
                pool.recycle_run(*history.pop(expired))
        self.last_release = last_release
        self._last_publication_t = last_t
        self._last_publication_size = last_size
        return records
