"""LPD — LDP Population Distribution (Algorithm 3).

The population-division analogue of LBD: instead of halving the remaining
*budget* for each publication, halve the remaining *publication users*.
Every report — dissimilarity or publication — uses the entire budget
``eps``; privacy comes from each user reporting at most once per window
(Theorem 6.2).

Per timestamp:

* **M1** (lines 3-6): sample ``⌊N/(2w)⌋`` dissimilarity users from the
  available pool ``U_A``; they report with full ``eps``; compute ``dis``.
* **M2** (lines 7-17): the remaining publication population in the window
  is ``N/2 - Σ|U_i,2|``; pre-assign half of it, predict the publication
  error ``V(eps, N_pp)``, and publish only if ``dis > err`` and the group
  is at least ``u_min`` users.
* **Recycling** (lines 18-20): users consumed at ``t - w + 1`` leave the
  active window and return to ``U_A``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.population import UserPool
from ...engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ...exceptions import InvalidParameterError
from ...streams.windows import SlidingWindowSum
from ..base import StreamMechanism, register_mechanism
from ..common import estimate_dissimilarity

_EMPTY = np.empty(0, dtype=np.int64)


@register_mechanism
class LPD(StreamMechanism):
    """LDP Population Distribution (Algorithm 3).

    Parameters
    ----------
    u_min:
        Minimum viable publication group size (Alg. 3 line 10); protects
        against the exponentially decaying group size collapsing to a
        handful of users whose estimate would be pure noise.
    """

    name = "LPD"
    adaptive = True
    framework = "population"
    chunk_kernel = True

    def __init__(self, u_min: int = 1):
        super().__init__()
        if u_min < 1:
            raise InvalidParameterError(f"u_min must be >= 1, got {u_min}")
        self.u_min = int(u_min)

    def _setup(self) -> None:
        self._m1_size = self.n_users // (2 * self.window)
        if self._m1_size < 1:
            raise InvalidParameterError(
                f"population division needs N >= 2w users "
                f"(N={self.n_users}, w={self.window})"
            )
        self._pool = UserPool(self.n_users, seed=self.rng)
        self._used_publication = SlidingWindowSum(self.window)
        self._history: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def _state(self) -> dict:
        return {
            "u_min": self.u_min,
            "pool": self._pool.state_dict(),
            "used_publication": self._used_publication.state_dict(),
            "history": [
                (t, m1.copy(), m2.copy())
                for t, (m1, m2) in sorted(self._history.items())
            ],
        }

    def _load_state(self, state: dict) -> None:
        self.u_min = int(state["u_min"])
        self._pool.load_state(state["pool"])
        self._used_publication.load_state(state["used_publication"])
        self._history = {
            int(t): (
                np.asarray(m1, dtype=np.int64),
                np.asarray(m2, dtype=np.int64),
            )
            for t, m1, m2 in state["history"]
        }

    def step(self, ctx: TimestepContext) -> StepRecord:
        # --- Sub-mechanism M1: dissimilarity from fresh users (lines 3-6)
        users_m1 = self._pool.sample(self._m1_size)
        estimate_m1 = ctx.collect(self.epsilon, user_ids=users_m1)
        dis = estimate_dissimilarity(estimate_m1, self.last_release)
        reports = estimate_m1.n_reports

        # --- Sub-mechanism M2: users allocation & strategy (lines 7-17)
        remaining = self.n_users // 2 - int(
            self._used_publication.window_sum(ctx.t)
        )
        n_potential = max(0, remaining // 2)
        if n_potential >= self.u_min:
            err = self.predicted_error(self.epsilon, n_potential)
        else:
            err = math.inf

        if dis > err and n_potential >= self.u_min:
            users_m2 = self._pool.sample(n_potential)
            estimate_m2 = ctx.collect(self.epsilon, user_ids=users_m2)
            self.last_release = estimate_m2.frequencies
            record = StepRecord(
                t=ctx.t,
                release=estimate_m2.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=self.epsilon,
                publication_users=estimate_m2.n_reports,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports + estimate_m2.n_reports,
                dis=dis,
                err=err,
            )
        else:
            users_m2 = _EMPTY
            record = StepRecord(
                t=ctx.t,
                release=self.last_release,
                strategy=STRATEGY_APPROXIMATE,
                dissimilarity_users=estimate_m1.n_reports,
                reports=reports,
                dis=dis,
                err=err,
            )

        self._used_publication.record(ctx.t, float(users_m2.size))
        self._history[ctx.t] = (users_m1, users_m2)

        # --- Recycling (lines 18-20): t-w+1 exits the next active window.
        expired = ctx.t - self.window + 1
        if expired >= 0:
            m1_old, m2_old = self._history.pop(expired)
            self._pool.recycle(m1_old)
            self._pool.recycle(m2_old)
        return record

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        """Streamlined chunk kernel, bit-identical to the :meth:`step` loop.

        Population division cannot batch rounds: every timestamp's pool
        draw and oracle draw interleave on the shared generator, and the
        group sizes feed the next decision.  But the publish decision is
        computable immediately after each M1 round, so this kernel is the
        degenerate (exact-lookahead) case of speculation — a sequential
        loop that issues exactly the per-step draws with zero discards —
        and its win is hoisting the per-step dispatch: one prepared
        round collector (validation and oracle setup hoisted) plus the
        pool/recycling fast paths.
        """
        if ctx.length == 0:
            return []
        records: List[StepRecord] = []
        eps = self.epsilon
        w = self.window
        t0 = ctx.t0
        m1_size = self._m1_size
        u_min = self.u_min
        half_users = self.n_users // 2
        pool = self._pool
        used = self._used_publication
        history = self._history
        collect = ctx.round_collector(eps)
        # Same float as every per-step estimate_m1.variance this chunk.
        var_m1 = self.predicted_error(eps, m1_size)
        err_cache: dict = {}
        last_release = self.last_release
        for i in range(ctx.length):
            t = t0 + i
            users_m1 = pool.sample_run(m1_size)
            frequencies = collect(i, users_m1)
            diff = frequencies - last_release
            dis = float(np.mean(diff * diff)) - var_m1

            remaining = half_users - int(used.window_sum(t))
            n_potential = max(0, remaining // 2)
            if n_potential >= u_min:
                err = err_cache.get(n_potential)
                if err is None:
                    err = self.predicted_error(eps, n_potential)
                    err_cache[n_potential] = err
            else:
                err = math.inf

            if dis > err and n_potential >= u_min:
                users_m2 = pool.sample_run(n_potential)
                last_release = collect(i, users_m2)
                records.append(
                    StepRecord(
                        t=t,
                        release=last_release,
                        strategy=STRATEGY_PUBLISH,
                        publication_epsilon=eps,
                        publication_users=n_potential,
                        dissimilarity_users=m1_size,
                        reports=m1_size + n_potential,
                        dis=dis,
                        err=err,
                    )
                )
            else:
                users_m2 = _EMPTY
                records.append(
                    StepRecord(
                        t=t,
                        release=last_release,
                        strategy=STRATEGY_APPROXIMATE,
                        dissimilarity_users=m1_size,
                        reports=m1_size,
                        dis=dis,
                        err=err,
                    )
                )

            used.record(t, float(users_m2.size))
            history[t] = (users_m1, users_m2)
            expired = t - w + 1
            if expired >= 0:
                pool.recycle_run(*history.pop(expired))
        self.last_release = last_release
        return records
