"""LPU — LDP Population Uniform method (Section 6.1).

The population-division counterpart of LBU: users are split once into
``w`` disjoint groups of roughly ``N/w``; at each timestamp the next group
(round-robin) reports with the *entire* budget ``eps``.  Every user reports
at most once per window, so ``w``-event LDP holds by parallel composition,
and Theorem 6.1 proves MSE(LPU) < MSE(LBU) for GRR/OUE: ``V(eps, N/w)``
grows only linearly in ``w`` while ``V(eps/w, N)`` grows near-exponentially.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...engine.collector import ChunkContext, TimestepContext
from ...engine.records import STRATEGY_PUBLISH, StepRecord
from ..base import StreamMechanism, register_mechanism


@register_mechanism
class LPU(StreamMechanism):
    """LDP Population Uniform: round-robin groups of ``N/w``, full budget."""

    name = "LPU"
    adaptive = False
    framework = "population"
    chunk_kernel = True

    def _setup(self) -> None:
        permutation = self.rng.permutation(self.n_users)
        # Nearly equal groups: sizes differ by at most one (footnote 4).
        self._groups = [
            group.astype(np.int64)
            for group in np.array_split(permutation, self.window)
        ]

    def _state(self) -> dict:
        # The group split is a one-time random draw at setup; a restored
        # session must reuse the original partition, not redraw it.
        return {"groups": [group.copy() for group in self._groups]}

    def _load_state(self, state: dict) -> None:
        self._groups = [
            np.asarray(group, dtype=np.int64) for group in state["groups"]
        ]

    def step(self, ctx: TimestepContext) -> StepRecord:
        group = self._groups[ctx.t % self.window]
        estimate = ctx.collect(self.epsilon, user_ids=group)
        self.last_release = estimate.frequencies
        return StepRecord(
            t=ctx.t,
            release=estimate.frequencies,
            strategy=STRATEGY_PUBLISH,
            publication_epsilon=self.epsilon,
            publication_users=estimate.n_reports,
            reports=estimate.n_reports,
        )

    def step_many(self, ctx: ChunkContext) -> List[StepRecord]:
        # The round-robin group schedule is a pure function of t, so the
        # chunk's rounds batch directly.
        groups = [
            self._groups[(ctx.t0 + i) % self.window]
            for i in range(ctx.length)
        ]
        frequencies, n_reports = ctx.collect_run(
            self.epsilon, user_ids=groups
        )
        records = []
        for i in range(ctx.length):
            release = frequencies[i]
            reports = int(n_reports[i])
            records.append(
                StepRecord(
                    t=ctx.t0 + i,
                    release=release,
                    strategy=STRATEGY_PUBLISH,
                    publication_epsilon=self.epsilon,
                    publication_users=reports,
                    reports=reports,
                )
            )
        if ctx.length:
            self.last_release = records[-1].release
        return records
