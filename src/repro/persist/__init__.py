"""Durable sessions: checkpoint/restore and write-ahead release logs.

A production stream server must survive restarts.  This package is the
durability layer under ``repro serve --state-dir`` and the programmatic
:meth:`repro.engine.session.StreamSession.snapshot` /
:meth:`~repro.engine.session.StreamSession.restore` API:

* :mod:`repro.persist.checkpoint` — versioned, JSON-serializable
  snapshots of a live session (mechanism state, collector sufficient
  statistics, accountant ledger, NumPy bit-generator state, attached
  release store, optional trace) that restore **bit-identically**: the
  resumed session performs the same draws in the same order as an
  uninterrupted one;
* :mod:`repro.persist.wal` — an append-only JSONL write-ahead log of
  released estimates with per-chunk commit markers and fsync, so
  releases survive a crash at finer granularity than checkpoints;
* :mod:`repro.persist.statedir` — the on-disk layout
  (``checkpoint.json`` + ``releases.wal``) the CLI resumes from, with
  the exactly-once truncation rule applied on every restore.

The exactly-once contract and the crash-injection harness that proves it
(``tools/crashtest.py``, ``tests/persist/``) are documented in
``docs/PERSISTENCE.md``.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    capture_group,
    capture_session,
    restore_group,
    restore_session,
)
from .statedir import StateDir
from .wal import ReleaseWAL, replay_wal, truncate_wal

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "capture_group",
    "capture_session",
    "restore_group",
    "restore_session",
    "ReleaseWAL",
    "replay_wal",
    "truncate_wal",
    "StateDir",
]
