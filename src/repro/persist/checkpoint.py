"""Versioned checkpoints of live streaming sessions.

A checkpoint is a JSON-serializable snapshot of everything a
:class:`~repro.engine.session.StreamSession` needs to continue
**bit-identically**: the mechanism's internal state, the collector's
sufficient statistics, the accountant's ledger, the NumPy bit-generator
state, the attached :class:`~repro.query.ReleaseStore` (if any) and the
recorded trace (if enabled).  "Bit-identically" is the contract the test
suite enforces: a session restored at timestamp ``t`` and advanced to
``T`` produces byte-for-byte the same releases, records, accountant
spend and query answers as a session that ran ``0..T`` uninterrupted.

The restore ordering is load-bearing.  A session is reconstructed by
running the normal constructor + :meth:`~StreamSession.start` first —
``start()`` may *draw from the RNG* (LPU's ``_setup`` permutes the
population) — then loading every component's state, and only **then**
installing the checkpointed bit-generator state.  Installing the RNG
earlier would let the setup draws corrupt it.

Checkpoints are written atomically (temp file + fsync + rename), so a
crash mid-write leaves the previous checkpoint intact.  Payloads carry a
``format`` marker and an integer ``version``; anything unrecognised
raises :class:`~repro.exceptions.CheckpointError` instead of
misinterpreting bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..engine.records import StepRecord
from ..exceptions import CheckpointError
from ..query.store import ReleaseStore
from ..rng import capture_rng_state, restore_rng_state
from ..streams.base import GenerativeStream, StreamDataset
from ..streams.online import OnlineStream
from .codec import decode, encode

PathLike = Union[str, Path]

#: Current checkpoint schema version.  Bump on any incompatible change
#: to the payload layout; :func:`restore_session` refuses other versions.
CHECKPOINT_VERSION = 1

_SESSION_FORMAT = "repro-checkpoint"
_GROUP_FORMAT = "repro-group-checkpoint"

_RECORD_FIELDS = (
    "t",
    "strategy",
    "publication_epsilon",
    "publication_users",
    "dissimilarity_users",
    "reports",
    "dis",
    "err",
)


# ----------------------------------------------------------------------
# Session capture / restore
# ----------------------------------------------------------------------
def capture_session(session) -> dict:
    """Snapshot a started, unfinalized session into a JSON-safe payload.

    The payload is self-describing (format marker, version, full
    configuration) and contains only JSON-native values — arrays ship
    through :mod:`repro.persist.codec`'s exact tagged-base64 encoding.
    """
    if not getattr(session, "_started", False):
        raise CheckpointError(
            "cannot checkpoint a session before start()"
        )
    if getattr(session, "_finalized", False):
        raise CheckpointError("cannot checkpoint a finalized session")
    d = session.dataset.domain_size
    trace = None
    if session.record_trace:
        if session._releases:
            releases = np.stack(session._releases)
            truths = np.stack(session._true_frequencies)
            record_releases = np.stack(
                [
                    np.asarray(r.release, dtype=np.float64)
                    for r in session._records
                ]
            )
        else:
            releases = np.empty((0, d), dtype=np.float64)
            truths = np.empty((0, d), dtype=np.float64)
            record_releases = np.empty((0, d), dtype=np.float64)
        trace = {
            "releases": releases,
            "true_frequencies": truths,
            "record_releases": record_releases,
            "records": [
                {field: getattr(r, field) for field in _RECORD_FIELDS}
                for r in session._records
            ],
        }
    payload = {
        "format": _SESSION_FORMAT,
        "version": CHECKPOINT_VERSION,
        "config": {
            "mechanism": session.mechanism.name,
            "oracle": session.oracle.name,
            "postprocess": session.postprocess_name,
            "epsilon": session.epsilon,
            "window": session.window,
            "horizon": session.horizon,
            "fast": session.fast,
            "enforce_privacy": session.enforce_privacy,
            "record_trace": session.record_trace,
            "n_users": session.dataset.n_users,
            "domain_size": d,
        },
        "state": {
            "next_t": session._next_t,
            "publications": session._publications,
            "release_variance": session._release_variance,
            "rng": capture_rng_state(session.rng),
            "mechanism": session.mechanism.state_dict(),
            "accountant": session.accountant.state_dict(),
            "collector": session.collector.state_dict(),
            "store": (
                None if session.store is None else session.store.state_dict()
            ),
            "trace": trace,
        },
    }
    return encode(payload)


def restore_session(
    payload: dict, dataset: StreamDataset, *, position: bool = True
):
    """Rebuild a live session from a :func:`capture_session` payload.

    ``dataset`` replaces the original stream (streams are not part of
    the checkpoint — a resumed server re-attaches its input source); it
    must match the checkpointed population and domain.  With
    ``position=True`` (default) the dataset is also repositioned so the
    next :meth:`~StreamSession.observe` reads the right timestamp:
    random-access streams need nothing, online streams fast-forward,
    and generative simulators replay — regenerating timestamps
    ``0..t-1`` reproduces their internal state exactly because their
    values are a pure function of the dataset seed and the cursor.
    """
    from ..engine.session import StreamSession

    _check_payload(payload, _SESSION_FORMAT)
    config = _section(payload, "config")
    state = _section(payload, "state")
    try:
        if int(config["n_users"]) != dataset.n_users:
            raise CheckpointError(
                f"checkpoint was taken over {config['n_users']} users but "
                f"the dataset has {dataset.n_users}"
            )
        if int(config["domain_size"]) != dataset.domain_size:
            raise CheckpointError(
                f"checkpoint domain size {config['domain_size']} != dataset "
                f"domain size {dataset.domain_size}"
            )
        store_state = state["store"]
        store = (
            None
            if store_state is None
            else ReleaseStore.from_state(decode(store_state))
        )
        # The seed is a placeholder: the real generator state is
        # installed below, *after* start() has taken its setup draws.
        session = StreamSession(
            config["mechanism"],
            dataset,
            float(config["epsilon"]),
            int(config["window"]),
            horizon=(
                None if config["horizon"] is None else int(config["horizon"])
            ),
            oracle=config["oracle"],
            seed=0,
            fast=bool(config["fast"]),
            postprocess=str(config["postprocess"]),
            enforce_privacy=bool(config["enforce_privacy"]),
            record_trace=bool(config["record_trace"]),
            store=store,
        )
        session.start()
        session.mechanism.load_state(decode(state["mechanism"]))
        session.accountant.load_state(decode(state["accountant"]))
        session.collector.load_state(decode(state["collector"]))
        session._next_t = int(state["next_t"])
        session._publications = int(state["publications"])
        session._release_variance = float(state["release_variance"])
        if session.record_trace:
            _load_trace(session, decode(state["trace"]))
        restore_rng_state(session.rng, state["rng"])
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"corrupt checkpoint payload: {error}"
        ) from error
    if position:
        position_dataset(dataset, session._next_t)
    return session


def _load_trace(session, trace: Optional[dict]) -> None:
    if trace is None:
        raise CheckpointError(
            "checkpoint was taken with record_trace=True but carries no "
            "trace section"
        )
    releases = np.asarray(trace["releases"], dtype=np.float64)
    truths = np.asarray(trace["true_frequencies"], dtype=np.float64)
    record_releases = np.asarray(trace["record_releases"], dtype=np.float64)
    rows = trace["records"]
    if not (
        releases.shape[0] == truths.shape[0] == record_releases.shape[0] == len(rows)
    ):
        raise CheckpointError("checkpoint trace sections disagree in length")
    session._releases = [row.copy() for row in releases]
    session._true_frequencies = [row.copy() for row in truths]
    session._records = [
        StepRecord(
            t=int(row["t"]),
            release=record_releases[i].copy(),
            strategy=str(row["strategy"]),
            publication_epsilon=float(row["publication_epsilon"]),
            publication_users=int(row["publication_users"]),
            dissimilarity_users=int(row["dissimilarity_users"]),
            reports=int(row["reports"]),
            dis=float(row["dis"]),
            err=float(row["err"]),
        )
        for i, row in enumerate(rows)
    ]


def position_dataset(dataset: StreamDataset, t: int) -> None:
    """Reposition ``dataset`` so the next read is timestamp ``t``.

    Random-access datasets need nothing.  Online streams fast-forward
    their push cursor.  Generative simulators replay timestamps
    ``0..t-1`` to regenerate their sequential state — bit-identical to
    the original pass, since generation is a pure function of the
    dataset seed and the cursor.
    """
    if t == 0 or getattr(dataset, "random_access", False):
        return
    if isinstance(dataset, OnlineStream):
        dataset.fast_forward(t)
        return
    if isinstance(dataset, GenerativeStream):
        dataset.reset()
        for step in range(t):
            dataset.values(step)
        return
    raise CheckpointError(
        f"cannot reposition a {type(dataset).__name__} to timestamp {t}; "
        f"pass position=False and seek the stream yourself"
    )


# ----------------------------------------------------------------------
# Group capture / restore
# ----------------------------------------------------------------------
def capture_group(group) -> dict:
    """Snapshot a mid-pass :class:`~repro.engine.group.SessionGroup`."""
    if not getattr(group, "_started", False):
        raise CheckpointError(
            "cannot checkpoint a session group before start_pass()"
        )
    return {
        "format": _GROUP_FORMAT,
        "version": CHECKPOINT_VERSION,
        "horizon": group.horizon,
        "truth_chunk": group.truth_chunk,
        "soa": group.soa,
        "cursor": group.cursor,
        "sessions": [capture_session(s) for s in group.sessions],
    }


def restore_group(
    payload: dict, dataset: StreamDataset, *, position: bool = True
):
    """Rebuild a mid-pass session group from :func:`capture_group`.

    Member sessions are restored individually (``position=False`` — a
    shared dataset must not be replayed once per member), then the
    dataset is positioned once to the group cursor.
    """
    from ..engine.group import SessionGroup

    _check_payload(payload, _GROUP_FORMAT)
    try:
        group = SessionGroup(
            dataset,
            horizon=(
                None
                if payload["horizon"] is None
                else int(payload["horizon"])
            ),
            truth_chunk=int(payload["truth_chunk"]),
            # Pre-SoA checkpoints carry no setting: resolve as "auto".
            soa=payload.get("soa", "auto"),
        )
        sessions = [
            restore_session(entry, dataset, position=False)
            for entry in payload["sessions"]
        ]
        cursor = int(payload["cursor"])
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"corrupt group checkpoint payload: {error}"
        ) from error
    group._adopt(sessions, cursor)
    if position:
        position_dataset(dataset, cursor)
    return group


# ----------------------------------------------------------------------
# Payload plumbing
# ----------------------------------------------------------------------
def _check_payload(payload, expected_format: str) -> None:
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    found = payload.get("format")
    if found != expected_format:
        raise CheckpointError(
            f"not a {expected_format} payload (format={found!r})"
        )
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )


def _section(payload: dict, key: str) -> dict:
    section = payload.get(key)
    if not isinstance(section, dict):
        raise CheckpointError(f"checkpoint payload has no {key!r} section")
    return section


class Checkpoint:
    """A captured payload plus file round-trip helpers.

    Thin wrapper tying the functional capture/restore API to atomic disk
    persistence::

        Checkpoint.capture(session).save(path)
        session = Checkpoint.load(path).restore(dataset)
    """

    def __init__(self, payload: dict):
        if not isinstance(payload, dict) or payload.get("format") not in (
            _SESSION_FORMAT,
            _GROUP_FORMAT,
        ):
            raise CheckpointError(
                "not a checkpoint payload (missing/unknown format marker)"
            )
        self.payload = payload

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return int(self.payload.get("version", -1))

    @property
    def kind(self) -> str:
        """``"session"`` or ``"group"``."""
        return (
            "session"
            if self.payload["format"] == _SESSION_FORMAT
            else "group"
        )

    @property
    def watermark(self) -> int:
        """Ingest position the checkpoint was taken at."""
        if self.kind == "session":
            return int(_section(self.payload, "state")["next_t"])
        return int(self.payload["cursor"])

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, target) -> "Checkpoint":
        """Snapshot a session or a session group."""
        from ..engine.group import SessionGroup

        if isinstance(target, SessionGroup):
            return cls(capture_group(target))
        return cls(capture_session(target))

    def restore(self, dataset: StreamDataset, *, position: bool = True):
        """Rebuild the captured session / group over ``dataset``."""
        if self.kind == "group":
            return restore_group(self.payload, dataset, position=position)
        return restore_session(self.payload, dataset, position=position)

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Atomically write the payload (temp file + fsync + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: PathLike) -> "Checkpoint":
        """Read a payload written by :meth:`save`."""
        try:
            with Path(path).open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"{path} is not valid JSON: {error}"
            ) from error
        return cls(payload)
