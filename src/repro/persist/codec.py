"""Exact JSON codec for checkpoint payloads.

Checkpoints must round-trip **bit-identically**: a single ULP of drift in
a release vector or an accountant ledger would break the restored
session's equivalence with an uninterrupted run.  Plain ``tolist()``
round-trips Python floats exactly (``json`` serialises them via
``repr``), but it is slow and bulky for the large arrays a trace-enabled
session carries, and it loses dtypes.  Arrays are therefore encoded as
tagged base64 of their raw little-endian bytes:

``{"__nd__": "<base64>", "dtype": "<f8", "shape": [T, d]}``

:func:`encode` walks an arbitrary nesting of dicts / lists / tuples and
replaces every :class:`numpy.ndarray` (and numpy scalar) with a
JSON-safe form; :func:`decode` is its exact inverse.  Everything else —
ints (arbitrary precision), floats (including NaN/inf, which Python's
``json`` reads back), strings, booleans, ``None`` — passes through
untouched.
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

from ..exceptions import CheckpointError

_ND_TAG = "__nd__"

#: Dtypes a checkpoint may legally carry; anything else is a bug in a
#: ``state_dict`` implementation and fails loudly at capture time.
_ALLOWED_DTYPES = {"<f8", "<i8", "|b1"}


def encode(value: Any) -> Any:
    """Recursively convert ``value`` into a JSON-serializable structure."""
    if isinstance(value, np.ndarray):
        return _encode_array(value)
    if isinstance(value, dict):
        return {str(k): encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode(v) for v in value]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CheckpointError(
        f"cannot encode {type(value).__name__!r} into a checkpoint"
    )


def decode(value: Any) -> Any:
    """Exact inverse of :func:`encode`."""
    if isinstance(value, dict):
        if _ND_TAG in value:
            return _decode_array(value)
        return {k: decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode(v) for v in value]
    return value


def _encode_array(array: np.ndarray) -> dict:
    # Normalise to little-endian so payloads are portable across hosts.
    canonical = array.astype(array.dtype.newbyteorder("<"), copy=False)
    dtype = canonical.dtype.str
    if dtype not in _ALLOWED_DTYPES:
        raise CheckpointError(
            f"checkpoint arrays must be float64/int64/bool, got {dtype}"
        )
    return {
        _ND_TAG: base64.b64encode(np.ascontiguousarray(canonical).tobytes()).decode(
            "ascii"
        ),
        "dtype": dtype,
        "shape": list(canonical.shape),
    }


def _decode_array(payload: dict) -> np.ndarray:
    try:
        dtype = str(payload["dtype"])
        if dtype not in _ALLOWED_DTYPES:
            raise CheckpointError(
                f"unsupported checkpoint array dtype {dtype!r}"
            )
        raw = base64.b64decode(payload[_ND_TAG], validate=True)
        array = np.frombuffer(raw, dtype=np.dtype(dtype))
        return array.reshape([int(n) for n in payload["shape"]]).copy()
    except CheckpointError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        raise CheckpointError(
            f"corrupt array payload in checkpoint: {error}"
        ) from error
