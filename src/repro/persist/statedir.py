"""On-disk state directory for durable serve/stream sessions.

A ``--state-dir`` holds exactly two artifacts::

    state/
      checkpoint.json   # latest full session snapshot (atomic rename)
      releases.wal      # append-only committed release log (fsync'd)

The two cooperate under one invariant: **the checkpoint's watermark is
always <= the WAL's**.  The server commits the WAL after every flushed
chunk and writes a checkpoint less often, so after a crash the WAL may
run ahead of the checkpoint — never behind.  :meth:`StateDir.prepare_resume`
re-establishes the exactly-once contract by truncating the WAL back to
the checkpoint's watermark; the resumed session then re-ingests the
truncated span and, being deterministic, regenerates byte-for-byte the
rows that were cut.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..exceptions import CheckpointError
from .checkpoint import Checkpoint
from .wal import ReleaseWAL, replay_wal, truncate_wal

PathLike = Union[str, Path]

CHECKPOINT_FILE = "checkpoint.json"
WAL_FILE = "releases.wal"


class StateDir:
    """Handle on a durable session's state directory."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise CheckpointError(
                f"state dir {self.root} exists and is not a directory"
            )
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Path:
        return self.root / CHECKPOINT_FILE

    @property
    def wal_path(self) -> Path:
        return self.root / WAL_FILE

    def has_checkpoint(self) -> bool:
        return self.checkpoint_path.exists()

    # ------------------------------------------------------------------
    def save_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Atomically replace the directory's checkpoint."""
        checkpoint.save(self.checkpoint_path)

    def load_checkpoint(self) -> Optional[Checkpoint]:
        """The latest checkpoint, or ``None`` on a fresh directory."""
        if not self.has_checkpoint():
            return None
        return Checkpoint.load(self.checkpoint_path)

    def open_wal(self) -> ReleaseWAL:
        """Open the release log for appending."""
        return ReleaseWAL(self.wal_path)

    def committed_releases(self) -> Tuple[List[dict], int]:
        """Validated committed WAL rows and their watermark."""
        return replay_wal(self.wal_path)

    # ------------------------------------------------------------------
    def prepare_resume(self) -> Tuple[Optional[Checkpoint], int]:
        """Make the directory consistent for resumption.

        Loads the checkpoint (``None`` on a fresh directory), validates
        the WAL's committed prefix, and truncates the WAL back to the
        checkpoint's watermark — the rows cut here are regenerated
        bit-identically by the resumed session, which is what makes
        ingestion exactly-once across crashes.  Returns
        ``(checkpoint, watermark)`` where ``watermark`` is the number of
        timestamps the resumed session has already ingested.
        """
        checkpoint = self.load_checkpoint()
        watermark = 0 if checkpoint is None else checkpoint.watermark
        _, wal_mark = replay_wal(self.wal_path)  # validates the prefix
        if wal_mark < watermark:
            raise CheckpointError(
                f"{self.wal_path} is behind the checkpoint (WAL watermark "
                f"{wal_mark} < checkpoint watermark {watermark}); the "
                f"state dir has been tampered with or mixes two runs"
            )
        truncate_wal(self.wal_path, watermark)
        return checkpoint, watermark
