"""Append-only write-ahead log of released estimates.

The WAL is the fine-grained durability channel of a persisted session:
every flushed ingest chunk appends one JSONL row per released timestamp
followed by a *commit marker* carrying the ingest watermark (the number
of timestamps durably ingested), then flushes and fsyncs.  A crash can
therefore only ever produce a **torn uncommitted tail** — rows (or a
partial line) after the last commit marker — never a corrupt committed
prefix.

Row layout (one JSON object per line)::

    {"op": "release", "t": 17, "strategy": "publish",
     "release": [0.21, ...], "variance": 3.1e-05}
    {"op": "commit", "watermark": 18}

Replay (:func:`replay_wal`) returns the committed prefix only and
validates it: timestamps strictly increasing from the previous watermark,
commit watermarks consistent with their rows.  Anything malformed
*inside* the committed prefix raises
:class:`~repro.exceptions.WALError`; a torn tail is silently dropped —
it belongs to work the checkpoint/replay machinery will redo
exactly-once.

On resume, :func:`truncate_wal` rewrites the log down to the restored
checkpoint's watermark: rows beyond it are discarded because the resumed
session will regenerate them bit-identically, which is precisely what
makes the log duplicate-free.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..exceptions import WALError

PathLike = Union[str, Path]

_OP_RELEASE = "release"
_OP_COMMIT = "commit"


class ReleaseWAL:
    """Writer handle for an append-only release log.

    Rows buffer in memory until :meth:`commit` writes them together with
    their commit marker and fsyncs — so the on-disk committed prefix
    always ends at a chunk boundary, and a crash mid-chunk loses only
    work that will be redone deterministically.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self._pending: List[dict] = []

    # ------------------------------------------------------------------
    def append(
        self,
        t: int,
        release,
        strategy: str,
        variance: Optional[float] = None,
    ) -> None:
        """Buffer one released estimate for the next :meth:`commit`."""
        row = {
            "op": _OP_RELEASE,
            "t": int(t),
            "strategy": str(strategy),
            "release": [float(v) for v in np.asarray(release).ravel()],
        }
        if variance is not None:
            row["variance"] = float(variance)
        self._pending.append(row)

    def commit(self, watermark: int) -> None:
        """Write buffered rows + a commit marker; flush and fsync.

        ``watermark`` is the ingest high-water mark: the number of
        timestamps whose effects are durable once this commit returns.
        """
        for row in self._pending:
            self._handle.write(json.dumps(row) + "\n")
        self._pending.clear()
        self._handle.write(
            json.dumps({"op": _OP_COMMIT, "watermark": int(watermark)}) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file (pending uncommitted rows are lost)."""
        self._pending.clear()
        self._handle.close()

    def __enter__(self) -> "ReleaseWAL":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_wal(path: PathLike) -> Tuple[List[dict], int]:
    """Read the committed prefix of a WAL; return ``(rows, watermark)``.

    ``rows`` are the release rows covered by the last commit marker, in
    timestamp order; ``watermark`` is that marker's value (0 for a
    missing or empty log).  The committed prefix is validated —
    undecodable lines, out-of-order timestamps, or a commit marker that
    disagrees with its rows raise :class:`~repro.exceptions.WALError`.
    Rows after the last commit marker (including a torn partial line)
    are uncommitted and dropped.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    committed: List[dict] = []
    watermark = 0
    tail: List[dict] = []
    last_t = -1
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                if not isinstance(row, dict):
                    raise ValueError("row is not a JSON object")
            except ValueError as error:
                # Only the *uncommitted* tail may be torn.  Remember the
                # damage: if a later commit marker claims this region,
                # the prefix is genuinely corrupt.
                tail.append({"__malformed__": lineno, "error": str(error)})
                continue
            op = row.get("op")
            if op == _OP_COMMIT:
                try:
                    mark = int(row["watermark"])
                except (KeyError, TypeError, ValueError) as error:
                    raise WALError(
                        f"{path}: commit marker on line {lineno} lacks a "
                        f"valid watermark"
                    ) from error
                for pending in tail:
                    if "__malformed__" in pending:
                        raise WALError(
                            f"{path}: undecodable line "
                            f"{pending['__malformed__']} inside the "
                            f"committed prefix: {pending['error']}"
                        )
                if mark < watermark:
                    raise WALError(
                        f"{path}: commit watermark went backwards on line "
                        f"{lineno} ({watermark} -> {mark})"
                    )
                if tail and tail[-1]["t"] >= mark:
                    raise WALError(
                        f"{path}: release row t={tail[-1]['t']} is not "
                        f"covered by its commit watermark {mark} "
                        f"(line {lineno})"
                    )
                committed.extend(tail)
                tail = []
                watermark = mark
            elif op == _OP_RELEASE:
                t = row.get("t")
                if not isinstance(t, int):
                    tail.append({"__malformed__": lineno, "error": "no t"})
                    continue
                if t <= last_t:
                    raise WALError(
                        f"{path}: out-of-order release row t={t} after "
                        f"t={last_t} (line {lineno})"
                    )
                last_t = t
                tail.append(row)
            else:
                tail.append(
                    {"__malformed__": lineno, "error": f"unknown op {op!r}"}
                )
    return committed, watermark


def truncate_wal(path: PathLike, watermark: int) -> int:
    """Drop committed rows at or beyond ``watermark``; return rows kept.

    Called on resume when the restored checkpoint is *older* than the
    log (crash between a WAL commit and the next checkpoint write): the
    session will re-ingest and re-release those timestamps
    bit-identically, so keeping the old rows would duplicate them.  The
    rewrite is atomic (temp file + rename) and ends with a commit marker
    at ``watermark``.
    """
    path = Path(path)
    rows, _ = replay_wal(path)
    kept = [row for row in rows if row["t"] < watermark]
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name, suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for row in kept:
                handle.write(json.dumps(row) + "\n")
            handle.write(
                json.dumps({"op": _OP_COMMIT, "watermark": int(watermark)})
                + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(kept)
