"""Other query types over LDP streams (paper footnote 2).

* :mod:`~repro.queries.numeric` — bounded-value mean-estimation
  mechanisms (Duchi, Piecewise, Hybrid);
* :mod:`~repro.queries.stream_mean` — ``w``-event LDP mean release over
  infinite streams via population division (MPU / MPA).
"""

from .numeric import (
    DuchiMechanism,
    HybridMechanism,
    NumericMechanism,
    PiecewiseMechanism,
    get_numeric_mechanism,
)
from .stream_mean import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    MeanSessionResult,
    MeanStepRecord,
    NumericStream,
    make_sine_numeric_stream,
)

__all__ = [
    "NumericMechanism",
    "DuchiMechanism",
    "PiecewiseMechanism",
    "HybridMechanism",
    "get_numeric_mechanism",
    "NumericStream",
    "make_sine_numeric_stream",
    "MeanPopulationUniform",
    "MeanPopulationAbsorption",
    "MeanSessionResult",
    "MeanStepRecord",
]
