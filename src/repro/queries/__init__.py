"""Deprecated alias package: use :mod:`repro.query` instead.

The numeric-stream estimators moved into the main query namespace —
``repro.queries.numeric`` is now :mod:`repro.query.numeric` and
``repro.queries.stream_mean`` is :mod:`repro.query.stream_mean`.  These
shims keep old imports working (with a :class:`DeprecationWarning`);
they will be removed in a future release.
"""

import warnings

from ..query.numeric import (
    DuchiMechanism,
    HybridMechanism,
    NumericMechanism,
    PiecewiseMechanism,
    get_numeric_mechanism,
)
from ..query.stream_mean import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    MeanSessionResult,
    MeanStepRecord,
    NumericStream,
    make_sine_numeric_stream,
)

warnings.warn(
    "repro.queries is deprecated: the numeric-stream estimators moved "
    "into repro.query (repro.query.numeric / repro.query.stream_mean)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "NumericMechanism",
    "DuchiMechanism",
    "PiecewiseMechanism",
    "HybridMechanism",
    "get_numeric_mechanism",
    "NumericStream",
    "make_sine_numeric_stream",
    "MeanPopulationUniform",
    "MeanPopulationAbsorption",
    "MeanSessionResult",
    "MeanStepRecord",
]
