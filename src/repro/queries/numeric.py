"""Deprecated alias: moved to :mod:`repro.query.numeric`."""

import warnings

from ..query.numeric import (
    DuchiMechanism,
    HybridMechanism,
    NumericMechanism,
    PiecewiseMechanism,
    get_numeric_mechanism,
)

warnings.warn(
    "repro.queries.numeric is deprecated: import repro.query.numeric "
    "instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "NumericMechanism",
    "DuchiMechanism",
    "PiecewiseMechanism",
    "HybridMechanism",
    "get_numeric_mechanism",
]
