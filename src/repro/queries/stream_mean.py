"""Deprecated alias: moved to :mod:`repro.query.stream_mean`."""

import warnings

from ..query.stream_mean import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    MeanSessionResult,
    MeanStepRecord,
    NumericStream,
    make_sine_numeric_stream,
)

warnings.warn(
    "repro.queries.stream_mean is deprecated: import "
    "repro.query.stream_mean instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "NumericStream",
    "make_sine_numeric_stream",
    "MeanPopulationUniform",
    "MeanPopulationAbsorption",
    "MeanSessionResult",
    "MeanStepRecord",
]
