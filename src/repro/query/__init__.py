"""Online query layer over released estimates.

The mechanisms exist to *answer queries* over private streams; this
package is the serving surface that makes that real:

* :class:`ReleaseStore` — memory-bounded ring buffer of released
  histograms that sessions publish into (prefix sums, publication-group
  correlation tracking, optional full-history retention);
* :class:`QueryEngine` — point frequency, top-k heavy hitters,
  categorical range counts, and sliding-window aggregates, each with a
  variance-propagated confidence interval from the closed-form oracle
  variances;
* the **query DSL** (:mod:`repro.query.dsl`) — a typed AST over those
  verbs plus filters, group-bys, two-source joins, and
  changepoint/threshold alert predicates, expressible as JSON wire
  objects or a one-line text syntax;
* :class:`QueryPlanner` (:mod:`repro.query.planner`) — lowers the AST
  onto engine/store primitives, bit-identical to hand-composed calls;
* :class:`StandingRegistry` (:mod:`repro.query.standing`) — alert
  predicates evaluated incrementally per ingest chunk inside
  ``repro serve`` (solo and sharded).

Attach a store to a live :class:`~repro.engine.session.StreamSession`
(``store=`` argument, or ``SessionGroup.add_session(..., store=...)``)
or rebuild one from a finalized run with
:meth:`QueryEngine.from_result`.  The ``repro serve`` and ``repro
query`` CLI commands expose both paths; see ``docs/QUERIES.md``.

The numeric-stream estimators (mean-oriented mechanisms over bounded
numeric values) live here too: :mod:`repro.query.numeric` and
:mod:`repro.query.stream_mean`, formerly the separate ``repro.queries``
package (old import paths still work, with a ``DeprecationWarning``).
"""

from .dsl import (
    Changepoint,
    Filter,
    GroupBy,
    Join,
    Point,
    Query,
    Range,
    Sliding,
    Threshold,
    TopK,
    format_expr,
    parse_expr,
    pin_t,
    query_from_request,
    query_from_wire,
)
from .engine import IntervalEstimate, QueryEngine, TopKEntry
from .numeric import (
    DuchiMechanism,
    HybridMechanism,
    NumericMechanism,
    PiecewiseMechanism,
    get_numeric_mechanism,
)
from .planner import (
    ChangepointResult,
    Plan,
    QueryPlanner,
    ThresholdResult,
)
from .propagation import PRIOR_VARIANCE, next_release_variance
from .standing import StandingQuery, StandingRegistry
from .store import ReleaseStore, merge_release_rows
from .stream_mean import (
    MeanPopulationAbsorption,
    MeanPopulationUniform,
    MeanSessionResult,
    MeanStepRecord,
    NumericStream,
    make_sine_numeric_stream,
)

__all__ = [
    "ReleaseStore",
    "QueryEngine",
    "IntervalEstimate",
    "TopKEntry",
    "PRIOR_VARIANCE",
    "next_release_variance",
    "merge_release_rows",
    # DSL
    "Query",
    "Point",
    "TopK",
    "Range",
    "Sliding",
    "Filter",
    "GroupBy",
    "Join",
    "Changepoint",
    "Threshold",
    "parse_expr",
    "format_expr",
    "pin_t",
    "query_from_wire",
    "query_from_request",
    # Planner
    "QueryPlanner",
    "Plan",
    "ChangepointResult",
    "ThresholdResult",
    # Standing
    "StandingQuery",
    "StandingRegistry",
    # Numeric streams (formerly repro.queries)
    "NumericMechanism",
    "DuchiMechanism",
    "PiecewiseMechanism",
    "HybridMechanism",
    "get_numeric_mechanism",
    "NumericStream",
    "make_sine_numeric_stream",
    "MeanPopulationUniform",
    "MeanPopulationAbsorption",
    "MeanSessionResult",
    "MeanStepRecord",
]
