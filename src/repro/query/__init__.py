"""Online query layer over released estimates.

The mechanisms exist to *answer queries* over private streams; this
package is the serving surface that makes that real:

* :class:`ReleaseStore` — memory-bounded ring buffer of released
  histograms that sessions publish into (prefix sums, publication-group
  correlation tracking, optional full-history retention);
* :class:`QueryEngine` — point frequency, top-k heavy hitters,
  categorical range counts, and sliding-window aggregates, each with a
  variance-propagated confidence interval from the closed-form oracle
  variances.

Attach a store to a live :class:`~repro.engine.session.StreamSession`
(``store=`` argument, or ``SessionGroup.add_session(..., store=...)``)
or rebuild one from a finalized run with
:meth:`QueryEngine.from_result`.  The ``repro serve`` and ``repro
query`` CLI commands expose both paths; see ``docs/QUERIES.md``.
"""

from .engine import IntervalEstimate, QueryEngine, TopKEntry
from .propagation import PRIOR_VARIANCE, next_release_variance
from .store import ReleaseStore, merge_release_rows

__all__ = [
    "ReleaseStore",
    "QueryEngine",
    "IntervalEstimate",
    "TopKEntry",
    "PRIOR_VARIANCE",
    "next_release_variance",
    "merge_release_rows",
]
