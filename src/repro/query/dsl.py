"""Typed standing-query DSL: one AST for every query surface.

The query layer answers four hard-coded verbs; real monitoring wants
*composable* questions — "the top 5 among categories 0..9 at t=200",
"alert me when item 2's share clears 20% by two sigmas", "did the
level change?".  This module is the shared language for those
questions, spoken identically by the solo ``repro serve`` loop, the
sharded asyncio server, and the ``repro query`` CLI:

* **AST** — frozen dataclass nodes.  :class:`Point`, :class:`TopK`,
  :class:`Range` and :class:`Sliding` mirror the four
  :class:`~repro.query.engine.QueryEngine` verbs field-for-field;
  :class:`Filter` restricts a verb to a category subset,
  :class:`GroupBy` answers a subset-sum per named group, :class:`Join`
  windows two sessions' release streams, and :class:`Changepoint` /
  :class:`Threshold` are the alert predicates the standing-query
  registry (:mod:`repro.query.standing`) evaluates incrementally.
* **JSON wire form** — :meth:`Query.to_wire` /
  :func:`query_from_wire`.  The wire field names and defaults are
  exactly the engine's (``item``/``t``/``k``/``lo``/``hi``/``t0``/
  ``t1``/``agg``), so every legacy serve request is already a valid
  wire query.
* **Text syntax** — :func:`parse_expr` / :func:`format_expr`, a
  one-line grammar for humans (``repro query --expr`` and the serve
  ``{"op": "query", "expr": ...}`` envelope)::

      topk(5) where item in {0..9} @ t=200
      range(0, 10) @ t=5
      mean(2) @ 10..40
      groupby(low: {0..3}; high: {4..7}) @ t=12
      join(diff, 2, 10..40, left, right)
      changepoint(2, drift=0.01, threshold=0.1)
      threshold(point(3) > 0.2, sigmas=2)

Nothing in here touches a store: the AST is pure data, validated on
construction.  :mod:`repro.query.planner` lowers it onto
``QueryEngine``/``ReleaseStore`` primitives; the full grammar and the
lowering rules are documented in ``docs/QUERIES.md``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, fields, replace
from typing import ClassVar, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import InvalidParameterError

#: Aggregates a :class:`Sliding` query accepts (mirrors the engine).
AGGREGATES = ("sum", "mean", "max")

#: Comparators a :class:`Threshold` predicate accepts.
COMPARATORS = (">", ">=", "<", "<=")

#: Join combinators: windowed mean difference / Pearson correlation.
JOIN_HOW = ("diff", "corr")

#: Wire ``op`` tags understood by :func:`query_from_wire`.
QUERY_OPS = (
    "point",
    "topk",
    "range",
    "sliding",
    "filter",
    "groupby",
    "join",
    "changepoint",
    "threshold",
)


def _int(name: str, value, *, optional: bool = False) -> Optional[int]:
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidParameterError(
            f"{name} must be an int, got {value!r}"
        )
    return int(value)


def _float(name: str, value) -> float:
    if isinstance(value, bool) or not isinstance(
        value, (int, float, np.integer, np.floating)
    ):
        raise InvalidParameterError(
            f"{name} must be a number, got {value!r}"
        )
    value = float(value)
    if not math.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite, got {value}")
    return value


def _item(value) -> int:
    value = _int("item", value)
    if value < 0:
        raise InvalidParameterError(f"item must be >= 0, got {value}")
    return value


def _source(value) -> Optional[str]:
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise InvalidParameterError(
            f"source must be a non-empty string, got {value!r}"
        )
    return value


def _items(name: str, value) -> Tuple[int, ...]:
    try:
        raw = list(value)
    except TypeError:
        raise InvalidParameterError(
            f"{name} must be an iterable of ints, got {value!r}"
        ) from None
    if not raw:
        raise InvalidParameterError(f"{name} must not be empty")
    items = tuple(sorted({_int(name + " entry", v) for v in raw}))
    if items[0] < 0:
        raise InvalidParameterError(
            f"{name} entries must be >= 0, got {items[0]}"
        )
    return items


@dataclass(frozen=True)
class Query:
    """Base of every AST node; concrete nodes define ``op``."""

    op: ClassVar[str] = ""

    def to_wire(self) -> dict:
        """The JSON-serializable wire form (same field names as the
        engine methods; ``None`` fields are omitted)."""
        payload = {"op": self.op}
        for field in fields(self):
            value = getattr(self, field.name)
            if value is None:
                continue
            payload[field.name] = _wire_value(value)
        return payload

    def __str__(self) -> str:
        return format_expr(self)


def _wire_value(value):
    if isinstance(value, Query):
        return value.to_wire()
    if isinstance(value, tuple):
        first_pair = (
            value
            and isinstance(value[0], tuple)
            and len(value[0]) == 2
            and isinstance(value[0][0], str)
        )
        if first_pair:  # GroupBy groups: ordered name -> items
            return {name: list(items) for name, items in value}
        return list(value)
    return value


@dataclass(frozen=True)
class Point(Query):
    """Released frequency of one ``item`` at ``t`` (default latest)."""

    op: ClassVar[str] = "point"
    item: int
    t: Optional[int] = None
    source: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "item", _item(self.item))
        object.__setattr__(self, "t", _int("t", self.t, optional=True))
        object.__setattr__(self, "source", _source(self.source))


@dataclass(frozen=True)
class TopK(Query):
    """The ``k`` heaviest items at ``t`` (default latest)."""

    op: ClassVar[str] = "topk"
    k: int = 5
    t: Optional[int] = None
    source: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "k", _int("k", self.k))
        object.__setattr__(self, "t", _int("t", self.t, optional=True))
        object.__setattr__(self, "source", _source(self.source))
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class Range(Query):
    """Total frequency of the categorical range ``[lo, hi)`` at ``t``."""

    op: ClassVar[str] = "range"
    lo: int
    hi: int
    t: Optional[int] = None
    source: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "lo", _int("lo", self.lo))
        object.__setattr__(self, "hi", _int("hi", self.hi))
        object.__setattr__(self, "t", _int("t", self.t, optional=True))
        object.__setattr__(self, "source", _source(self.source))
        if not 0 <= self.lo <= self.hi:
            raise InvalidParameterError(
                f"range must satisfy 0 <= lo <= hi, got "
                f"[{self.lo}, {self.hi})"
            )


@dataclass(frozen=True)
class Sliding(Query):
    """Aggregate one ``item`` over the closed span ``[t0, t1]``."""

    op: ClassVar[str] = "sliding"
    item: int
    t0: int
    t1: int
    agg: str = "sum"
    source: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "item", _item(self.item))
        object.__setattr__(self, "t0", _int("t0", self.t0))
        object.__setattr__(self, "t1", _int("t1", self.t1))
        object.__setattr__(self, "source", _source(self.source))
        if self.agg not in AGGREGATES:
            raise InvalidParameterError(
                f"agg must be one of {AGGREGATES}, got {self.agg!r}"
            )
        if self.t0 > self.t1:
            raise InvalidParameterError(
                f"span must satisfy t0 <= t1, got [{self.t0}, {self.t1}]"
            )


#: Verbs a :class:`Filter` may wrap.
_FILTERABLE = (Point, TopK, Range, Sliding)


@dataclass(frozen=True)
class Filter(Query):
    """Restrict a verb to a category subset (``where item in {...}``).

    * ``Filter(TopK(k), items)`` — the ``k`` heaviest *within* the
      subset;
    * ``Filter(Range(lo, hi), items)`` — the subset-sum over
      ``items ∩ [lo, hi)`` (an empty intersection is estimate 0 with a
      zero-width interval, like an empty range);
    * ``Filter(Point(i), items)`` / ``Filter(Sliding(...), items)`` —
      membership guards: the inner item must be in the subset.
    """

    op: ClassVar[str] = "filter"
    query: Query
    items: Tuple[int, ...]

    def __post_init__(self):
        if not isinstance(self.query, _FILTERABLE):
            raise InvalidParameterError(
                f"filter can only wrap point/topk/range/sliding, got "
                f"{getattr(type(self.query), 'op', None) or self.query!r}"
            )
        object.__setattr__(self, "items", _items("items", self.items))
        if isinstance(self.query, (Point, Sliding)):
            if self.query.item not in self.items:
                raise InvalidParameterError(
                    f"filtered item {self.query.item} is not in the "
                    f"filter set {list(self.items)}"
                )


@dataclass(frozen=True)
class GroupBy(Query):
    """Subset-sum per named group of categories, at one timestamp.

    ``groups`` is an ordered ``(name, items)`` tuple (a mapping is
    accepted and its iteration order kept).  Groups may overlap; each
    answers independently with the same variance rule as a filtered
    range.
    """

    op: ClassVar[str] = "groupby"
    groups: Tuple[Tuple[str, Tuple[int, ...]], ...]
    t: Optional[int] = None
    source: Optional[str] = None

    def __post_init__(self):
        raw = self.groups
        if isinstance(raw, Mapping):
            raw = tuple(raw.items())
        try:
            pairs = tuple((name, items) for name, items in raw)
        except (TypeError, ValueError):
            raise InvalidParameterError(
                f"groups must map names to item sets, got {self.groups!r}"
            ) from None
        if not pairs:
            raise InvalidParameterError("groupby needs at least one group")
        names = [name for name, _ in pairs]
        for name in names:
            if not isinstance(name, str) or not name:
                raise InvalidParameterError(
                    f"group names must be non-empty strings, got {name!r}"
                )
        if len(set(names)) != len(names):
            raise InvalidParameterError(
                f"group names must be unique, got {names}"
            )
        object.__setattr__(
            self,
            "groups",
            tuple(
                (name, _items(f"group {name!r}", items))
                for name, items in pairs
            ),
        )
        object.__setattr__(self, "t", _int("t", self.t, optional=True))
        object.__setattr__(self, "source", _source(self.source))


@dataclass(frozen=True)
class Join(Query):
    """Window two sources' release streams for one item over
    ``[t0, t1]``.

    ``how="diff"`` — difference of the two windowed means, with the
    cross-session-independent variance sum; ``how="corr"`` — Pearson
    correlation of the two release series (Fisher-approximation
    stderr).  ``left``/``right`` name sources registered with the
    planner.
    """

    op: ClassVar[str] = "join"
    left: str
    right: str
    item: int
    t0: int
    t1: int
    how: str = "diff"

    def __post_init__(self):
        for side, name in (("left", self.left), ("right", self.right)):
            if not isinstance(name, str) or not name:
                raise InvalidParameterError(
                    f"join {side} must name a source, got {name!r}"
                )
        object.__setattr__(self, "item", _item(self.item))
        object.__setattr__(self, "t0", _int("t0", self.t0))
        object.__setattr__(self, "t1", _int("t1", self.t1))
        if self.how not in JOIN_HOW:
            raise InvalidParameterError(
                f"join how must be one of {JOIN_HOW}, got {self.how!r}"
            )
        if self.t0 > self.t1:
            raise InvalidParameterError(
                f"span must satisfy t0 <= t1, got [{self.t0}, {self.t1}]"
            )


@dataclass(frozen=True)
class Changepoint(Query):
    """CUSUM change-point alarms on one item's release series.

    ``drift`` is the per-step slack, ``threshold`` the alarm level
    (see :func:`repro.analysis.changepoint.cusum_detect`).  ``t0``/
    ``t1`` default to the oldest/latest retained timestamp at
    evaluation time.
    """

    op: ClassVar[str] = "changepoint"
    item: int
    drift: float
    threshold: float
    t0: Optional[int] = None
    t1: Optional[int] = None
    source: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "item", _item(self.item))
        object.__setattr__(self, "drift", _float("drift", self.drift))
        object.__setattr__(
            self, "threshold", _float("threshold", self.threshold)
        )
        object.__setattr__(self, "t0", _int("t0", self.t0, optional=True))
        object.__setattr__(self, "t1", _int("t1", self.t1, optional=True))
        object.__setattr__(self, "source", _source(self.source))
        if self.drift < 0 or self.threshold <= 0:
            raise InvalidParameterError(
                "drift must be >= 0 and threshold > 0, got "
                f"drift={self.drift}, threshold={self.threshold}"
            )
        if (
            self.t0 is not None
            and self.t1 is not None
            and self.t0 > self.t1
        ):
            raise InvalidParameterError(
                f"span must satisfy t0 <= t1, got [{self.t0}, {self.t1}]"
            )


#: Scalar-valued queries a :class:`Threshold` may wrap (``Filter`` is
#: admitted when its inner verb is scalar-valued, i.e. not TopK).
_SCALAR = (Point, Range, Sliding)


@dataclass(frozen=True)
class Threshold(Query):
    """Noise-aware threshold predicate over a scalar query.

    Triggered when the estimate clears ``value`` by ``sigmas`` standard
    errors — THRESH's fixed noise-multiple update rule
    (:mod:`repro.related.thresh`) turned into a standing predicate:
    ``estimate - sigmas·stderr > value`` for ``>`` (mirrored for the
    other comparators).  ``sigmas=0`` is a plain comparison.
    """

    op: ClassVar[str] = "threshold"
    query: Query
    cmp: str
    value: float
    sigmas: float = 0.0

    def __post_init__(self):
        inner = self.query
        if isinstance(inner, Filter):
            inner = inner.query
        if not isinstance(inner, _SCALAR):
            raise InvalidParameterError(
                "threshold needs a scalar query (point/range/sliding, "
                f"optionally filtered), got {type(self.query).op!r}"
            )
        if self.cmp not in COMPARATORS:
            raise InvalidParameterError(
                f"cmp must be one of {COMPARATORS}, got {self.cmp!r}"
            )
        object.__setattr__(self, "value", _float("value", self.value))
        object.__setattr__(self, "sigmas", _float("sigmas", self.sigmas))
        if self.sigmas < 0:
            raise InvalidParameterError(
                f"sigmas must be >= 0, got {self.sigmas}"
            )


def pin_t(query: Query, t: int) -> Query:
    """A copy of a latest-``t`` query pinned to one timestamp.

    The standing-query registry uses this to evaluate a predicate at
    every new timestamp in turn; only nodes with a ``t`` field (and
    :class:`Filter`/:class:`Threshold` wrappers around them) can pin.
    """
    if isinstance(query, Threshold):
        return replace(query, query=pin_t(query.query, t))
    if isinstance(query, Filter):
        return replace(query, query=pin_t(query.query, t))
    if isinstance(query, (Point, TopK, Range, GroupBy)):
        return replace(query, t=_int("t", t))
    raise InvalidParameterError(
        f"cannot pin a timestamp on a {type(query).op or 'query'!r} query"
    )


# ----------------------------------------------------------------------
# JSON wire form
# ----------------------------------------------------------------------
def _wire_get(request: Mapping, key: str, *, required: bool = False):
    value = request.get(key)
    if required and value is None:
        raise InvalidParameterError(
            f"{request.get('op')!r} query needs {key!r}"
        )
    return value


def query_from_wire(request: Mapping) -> Query:
    """Parse one wire-form mapping into an AST node.

    Field names and defaults match the :class:`QueryEngine` methods
    (``topk`` defaults to ``k=5``, ``sliding`` to ``agg="sum"``), so
    the legacy serve requests parse unchanged.  Unknown ``op`` values
    and missing required fields raise
    :class:`~repro.exceptions.InvalidParameterError`.
    """
    if not isinstance(request, Mapping):
        raise InvalidParameterError(
            f"a wire query must be a JSON object, got {request!r}"
        )
    op = request.get("op")
    source = request.get("source")
    if op == "point":
        return Point(
            _wire_get(request, "item", required=True),
            t=request.get("t"),
            source=source,
        )
    if op == "topk":
        return TopK(
            request.get("k", 5), t=request.get("t"), source=source
        )
    if op == "range":
        return Range(
            _wire_get(request, "lo", required=True),
            _wire_get(request, "hi", required=True),
            t=request.get("t"),
            source=source,
        )
    if op == "sliding":
        return Sliding(
            _wire_get(request, "item", required=True),
            _wire_get(request, "t0", required=True),
            _wire_get(request, "t1", required=True),
            agg=request.get("agg", "sum"),
            source=source,
        )
    if op == "filter":
        return Filter(
            query_from_wire(_wire_get(request, "query", required=True)),
            _wire_get(request, "items", required=True),
        )
    if op == "groupby":
        groups = _wire_get(request, "groups", required=True)
        if not isinstance(groups, Mapping):
            raise InvalidParameterError(
                f"groupby groups must be an object mapping names to "
                f"item lists, got {groups!r}"
            )
        return GroupBy(
            tuple(groups.items()), t=request.get("t"), source=source
        )
    if op == "join":
        return Join(
            _wire_get(request, "left", required=True),
            _wire_get(request, "right", required=True),
            _wire_get(request, "item", required=True),
            _wire_get(request, "t0", required=True),
            _wire_get(request, "t1", required=True),
            how=request.get("how", "diff"),
        )
    if op == "changepoint":
        return Changepoint(
            _wire_get(request, "item", required=True),
            _wire_get(request, "drift", required=True),
            _wire_get(request, "threshold", required=True),
            t0=request.get("t0"),
            t1=request.get("t1"),
            source=source,
        )
    if op == "threshold":
        return Threshold(
            query_from_wire(_wire_get(request, "query", required=True)),
            _wire_get(request, "cmp", required=True),
            _wire_get(request, "value", required=True),
            sigmas=request.get("sigmas", 0.0),
        )
    raise InvalidParameterError(
        f"unknown query op {op!r}; expected one of {QUERY_OPS}"
    )


def query_from_request(request: Mapping) -> Query:
    """Parse a serve-protocol request line into an AST node.

    Accepts the direct wire form (``op`` is a query tag) and the
    ``{"op": "query", ...}`` envelope carrying either ``"expr"`` (text
    syntax) or ``"q"`` (nested wire form).
    """
    if not isinstance(request, Mapping):
        raise InvalidParameterError(
            f"a query request must be a JSON object, got {request!r}"
        )
    if request.get("op") == "query":
        expr = request.get("expr")
        if expr is not None:
            if not isinstance(expr, str):
                raise InvalidParameterError(
                    f"'expr' must be a string, got {expr!r}"
                )
            return parse_expr(expr)
        nested = request.get("q")
        if nested is None:
            raise InvalidParameterError(
                "a 'query' request needs 'expr' (text syntax) or 'q' "
                "(wire form)"
            )
        return query_from_wire(nested)
    return query_from_wire(request)


# ----------------------------------------------------------------------
# Text syntax
# ----------------------------------------------------------------------
_TOKEN = re.compile(
    r"""
    (?P<float>\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<dotdot>\.\.)
  | (?P<cmp>>=|<=|>|<)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<sym>[(){},;:@=\-])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


class _Tokens:
    """Token cursor for the recursive-descent expression parser."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = []
        for match in _TOKEN.finditer(text):
            kind = match.lastgroup
            if kind == "ws":
                continue
            if kind == "bad":
                raise InvalidParameterError(
                    f"unexpected character {match.group()!r} at column "
                    f"{match.start()} in {text!r}"
                )
            self.tokens.append((kind, match.group(), match.start()))
        self.pos = 0

    def peek(self, offset: int = 0):
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return ("eof", "", len(self.text))

    def next(self):
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.pos += 1
            return True
        return False

    def expect(self, value: str):
        kind, got, column = self.peek()
        if got != value:
            raise InvalidParameterError(
                f"expected {value!r} at column {column}, got "
                f"{got or 'end of input'!r} in {self.text!r}"
            )
        self.pos += 1

    def expect_int(self) -> int:
        kind, got, column = self.peek()
        if kind != "int":
            raise InvalidParameterError(
                f"expected an integer at column {column}, got "
                f"{got or 'end of input'!r} in {self.text!r}"
            )
        self.pos += 1
        return int(got)

    def expect_number(self) -> float:
        negative = self.accept("-")
        kind, got, column = self.peek()
        if kind not in ("int", "float"):
            raise InvalidParameterError(
                f"expected a number at column {column}, got "
                f"{got or 'end of input'!r} in {self.text!r}"
            )
        self.pos += 1
        value = float(got)
        return -value if negative else value

    def expect_name(self) -> str:
        kind, got, column = self.peek()
        if kind != "name":
            raise InvalidParameterError(
                f"expected a name at column {column}, got "
                f"{got or 'end of input'!r} in {self.text!r}"
            )
        self.pos += 1
        return got


def _parse_set(tokens: _Tokens) -> Tuple[int, ...]:
    """``{a, b, c}`` or ``{a..b}`` (inclusive) -> sorted unique tuple."""
    tokens.expect("{")
    first = tokens.expect_int()
    if tokens.accept(".."):
        last = tokens.expect_int()
        tokens.expect("}")
        if last < first:
            raise InvalidParameterError(
                f"item range {{{first}..{last}}} is empty"
            )
        return tuple(range(first, last + 1))
    items = [first]
    while tokens.accept(","):
        items.append(tokens.expect_int())
    tokens.expect("}")
    return _items("items", items)


def _parse_at(tokens: _Tokens):
    """``@ t=T`` -> ("t", T) | ``@ A..B`` -> ("span", A, B) | None."""
    if not tokens.accept("@"):
        return None
    if tokens.peek()[1] == "t" and tokens.peek(1)[1] == "=":
        tokens.next()
        tokens.next()
        return ("t", tokens.expect_int())
    t0 = tokens.expect_int()
    tokens.expect("..")
    t1 = tokens.expect_int()
    return ("span", t0, t1)


def _at_t(at, what: str) -> Optional[int]:
    if at is None:
        return None
    if at[0] != "t":
        raise InvalidParameterError(
            f"{what} takes '@ t=T', not a '@ a..b' span"
        )
    return at[1]


def _parse_plain(tokens: _Tokens) -> Query:
    verb = tokens.expect_name()
    if verb == "point":
        tokens.expect("(")
        item = tokens.expect_int()
        tokens.expect(")")
        build = lambda at: Point(item, t=_at_t(at, "point"))  # noqa: E731
    elif verb == "topk":
        tokens.expect("(")
        k = tokens.expect_int()
        tokens.expect(")")
        build = lambda at: TopK(k, t=_at_t(at, "topk"))  # noqa: E731
    elif verb == "range":
        tokens.expect("(")
        lo = tokens.expect_int()
        tokens.expect(",")
        hi = tokens.expect_int()
        tokens.expect(")")
        build = lambda at: Range(  # noqa: E731
            lo, hi, t=_at_t(at, "range")
        )
    elif verb in AGGREGATES:
        tokens.expect("(")
        item = tokens.expect_int()
        tokens.expect(")")

        def build(at, verb=verb, item=item):
            if at is None or at[0] != "span":
                raise InvalidParameterError(
                    f"{verb}({item}) needs a '@ t0..t1' span"
                )
            return Sliding(item, at[1], at[2], agg=verb)

    elif verb == "groupby":
        tokens.expect("(")
        groups = []
        while True:
            name = tokens.expect_name()
            tokens.expect(":")
            groups.append((name, _parse_set(tokens)))
            if not tokens.accept(";"):
                break
        tokens.expect(")")
        build = lambda at: GroupBy(  # noqa: E731
            tuple(groups), t=_at_t(at, "groupby")
        )
    elif verb == "join":
        tokens.expect("(")
        how = tokens.expect_name()
        tokens.expect(",")
        item = tokens.expect_int()
        tokens.expect(",")
        t0 = tokens.expect_int()
        tokens.expect("..")
        t1 = tokens.expect_int()
        tokens.expect(",")
        left = tokens.expect_name()
        tokens.expect(",")
        right = tokens.expect_name()
        tokens.expect(")")
        return Join(left, right, item, t0, t1, how=how)
    elif verb == "changepoint":
        tokens.expect("(")
        item = tokens.expect_int()
        tokens.expect(",")
        tokens.expect("drift")
        tokens.expect("=")
        drift = tokens.expect_number()
        tokens.expect(",")
        tokens.expect("threshold")
        tokens.expect("=")
        threshold = tokens.expect_number()
        tokens.expect(")")
        at = _parse_at(tokens)
        if at is None:
            return Changepoint(item, drift, threshold)
        if at[0] != "span":
            raise InvalidParameterError(
                "changepoint takes '@ t0..t1', not '@ t=T'"
            )
        return Changepoint(item, drift, threshold, t0=at[1], t1=at[2])
    else:
        raise InvalidParameterError(
            f"unknown query verb {verb!r}; expected point/topk/range/"
            f"sum/mean/max/groupby/join/changepoint/threshold"
        )

    where = None
    if tokens.peek()[1] == "where":
        tokens.next()
        tokens.expect("item")
        tokens.expect("in")
        where = _parse_set(tokens)
    query = build(_parse_at(tokens))
    if where is not None:
        query = Filter(query, where)
    return query


def parse_expr(text: str) -> Query:
    """Parse the one-line text syntax into an AST node.

    >>> parse_expr("topk(5) where item in {0..9} @ t=200")
    Filter(query=TopK(k=5, t=200, source=None), items=(0, 1, 2, 3, 4, \
5, 6, 7, 8, 9))
    """
    if not isinstance(text, str) or not text.strip():
        raise InvalidParameterError("empty query expression")
    tokens = _Tokens(text)
    if tokens.peek()[1] == "threshold" and tokens.peek(1)[1] == "(":
        tokens.next()
        tokens.next()
        inner = _parse_plain(tokens)
        kind, cmp, column = tokens.next()
        if kind != "cmp":
            raise InvalidParameterError(
                f"expected a comparator (>, >=, <, <=) at column "
                f"{column} in {text!r}"
            )
        value = tokens.expect_number()
        sigmas = 0.0
        if tokens.accept(","):
            tokens.expect("sigmas")
            tokens.expect("=")
            sigmas = tokens.expect_number()
        tokens.expect(")")
        query = Threshold(inner, cmp, value, sigmas=sigmas)
    else:
        query = _parse_plain(tokens)
    kind, got, column = tokens.peek()
    if kind != "eof":
        raise InvalidParameterError(
            f"trailing input {got!r} at column {column} in {text!r}"
        )
    return query


def _format_number(value: float) -> str:
    return f"{value:g}"


def _format_set(items: Tuple[int, ...]) -> str:
    if len(items) > 2 and items == tuple(
        range(items[0], items[-1] + 1)
    ):
        return f"{{{items[0]}..{items[-1]}}}"
    return "{" + ", ".join(str(i) for i in items) + "}"


def _format_at(query) -> str:
    return f" @ t={query.t}" if query.t is not None else ""


def format_expr(query: Query) -> str:
    """The text syntax for an AST node (inverse of :func:`parse_expr`).

    >>> format_expr(Threshold(Point(3), ">", 0.2, sigmas=2.0))
    'threshold(point(3) > 0.2, sigmas=2)'
    """
    if isinstance(query, Threshold):
        inner = format_expr(query.query)
        sigmas = (
            f", sigmas={_format_number(query.sigmas)}"
            if query.sigmas
            else ""
        )
        return (
            f"threshold({inner} {query.cmp} "
            f"{_format_number(query.value)}{sigmas})"
        )
    if isinstance(query, Filter):
        inner = query.query
        where = f" where item in {_format_set(query.items)}"
        if isinstance(inner, Sliding):
            return (
                f"{inner.agg}({inner.item}){where} "
                f"@ {inner.t0}..{inner.t1}"
            )
        return format_expr(inner).replace(
            _format_at(inner), ""
        ) + where + _format_at(inner)
    if isinstance(query, Point):
        return f"point({query.item})" + _format_at(query)
    if isinstance(query, TopK):
        return f"topk({query.k})" + _format_at(query)
    if isinstance(query, Range):
        return f"range({query.lo}, {query.hi})" + _format_at(query)
    if isinstance(query, Sliding):
        return f"{query.agg}({query.item}) @ {query.t0}..{query.t1}"
    if isinstance(query, GroupBy):
        groups = "; ".join(
            f"{name}: {_format_set(items)}"
            for name, items in query.groups
        )
        return f"groupby({groups})" + _format_at(query)
    if isinstance(query, Join):
        return (
            f"join({query.how}, {query.item}, {query.t0}..{query.t1}, "
            f"{query.left}, {query.right})"
        )
    if isinstance(query, Changepoint):
        span = (
            f" @ {query.t0}..{query.t1}"
            if query.t0 is not None and query.t1 is not None
            else ""
        )
        return (
            f"changepoint({query.item}, "
            f"drift={_format_number(query.drift)}, "
            f"threshold={_format_number(query.threshold)})" + span
        )
    raise InvalidParameterError(f"cannot format {query!r}")
