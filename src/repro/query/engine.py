"""Online query engine over released estimates.

:class:`QueryEngine` answers the questions a consumer of a private
release stream actually asks — "how common is item 3 right now?", "what
are the heavy hitters?", "how much traffic did categories 10-20 carry
over the last hour?" — against a :class:`~repro.query.store.ReleaseStore`
fed by a live session or rebuilt from a finalized run.

Every answer carries a **variance-propagated confidence interval**
derived from the closed-form oracle variances
(:mod:`repro.freq_oracles.variance`) recorded at publish time:

* a single cell at one timestamp has variance ``V(eps, n)`` (the mean
  per-cell form of Eq. (2); normal approximation, unbiased estimator);
* a categorical range of ``m`` cells sums ``m`` estimates whose noise is
  treated as independent across cells (exact for OUE/SUE bit noise; a
  mild approximation for GRR, whose cells are weakly negatively
  correlated — intervals err slightly wide);
* a sliding span sums across timestamps, where *re-releases are copies
  of the last publication* and therefore perfectly correlated: a span
  covering groups ``g`` with ``n_g`` timestamps of a publication with
  variance ``v_g`` has sum variance ``Σ_g n_g² · v_g`` — the engine
  computes exactly this from the store's publication ids, not the naive
  (and badly optimistic) ``Σ_t v_t``.

The ``max`` aggregate reports the per-cell maximum with the interval of
the timestamp achieving it; the maximum of noisy estimates is biased
upward, so treat it as an optimistic envelope (documented in
``docs/QUERIES.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from statistics import NormalDist
from typing import List, Mapping, Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..freq_oracles import get_oracle
from .propagation import PRIOR_VARIANCE, next_release_variance
from .store import _INHERIT, ReleaseStore

_AGGREGATES = ("sum", "mean", "max")


@dataclass(frozen=True)
class IntervalEstimate:
    """A scalar answer with a symmetric normal-approximation interval."""

    estimate: float
    stderr: float
    confidence: float

    @property
    def ci_low(self) -> float:
        return self.estimate - _z(self.confidence) * self.stderr

    @property
    def ci_high(self) -> float:
        return self.estimate + _z(self.confidence) * self.stderr

    def as_dict(self) -> dict:
        return {
            "estimate": self.estimate,
            "stderr": self.stderr,
            "confidence": self.confidence,
            "ci": [self.ci_low, self.ci_high],
        }


@dataclass(frozen=True)
class TopKEntry:
    """One heavy hitter: its rank, item id, and interval estimate."""

    rank: int
    item: int
    interval: IntervalEstimate

    def as_dict(self) -> dict:
        return {"rank": self.rank, "item": self.item, **self.interval.as_dict()}


def _z(confidence: float) -> float:
    """Two-sided normal quantile for a central ``confidence`` interval."""
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


class QueryEngine:
    """Answer point / top-k / range / sliding queries over a release store.

    Parameters
    ----------
    store:
        The :class:`ReleaseStore` to answer from.  The engine never
        mutates it; one store may back many engines — stand a second
        engine over the same store for answers at another confidence
        level.
    confidence:
        Central-interval mass for every answer from this engine.
    """

    def __init__(self, store: ReleaseStore, *, confidence: float = 0.95):
        _z(confidence)  # validate eagerly
        self.store = store
        self.confidence = float(confidence)

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result,
        *,
        capacity: Optional[int] = None,
        confidence: float = 0.95,
    ) -> "QueryEngine":
        """Build an engine over a finalized run's full release history.

        ``result`` is a :class:`~repro.engine.records.SessionResult`, a
        saved-run payload dict, or a path to a :func:`repro.io.save_session`
        artifact.  Dicts and paths go through the schema-validated
        loaders, so a legacy (version-skewed), truncated, or otherwise
        corrupt artifact fails with a clear
        :class:`~repro.exceptions.InvalidParameterError` instead of a
        ``KeyError``.  The variance track is reconstructed from the
        per-step records with the same rule a live session uses, so
        answers are bit-identical to those of a store that was attached
        during the run.
        """
        from ..io import load_session, session_from_dict

        _z(confidence)  # validate eagerly, before any loading work
        if isinstance(result, (str, Path)):
            result = load_session(result)
        elif isinstance(result, Mapping):
            result = session_from_dict(result)
        oracle = get_oracle(result.oracle)
        store = ReleaseStore(result.domain_size, capacity=capacity)
        variance = PRIOR_VARIANCE
        if len(result.records) != result.horizon:
            raise InvalidParameterError(
                "session result lacks per-step records (trace-free run?); "
                "queries need the full trace"
            )
        for t, record in enumerate(result.records):
            variance = next_release_variance(
                oracle,
                record.strategy,
                record.publication_epsilon,
                record.publication_users,
                result.domain_size,
                variance,
            )
            store.append(
                t, result.releases[t], variance, record.strategy
            )
        return cls(store, confidence=confidence)

    @classmethod
    def from_shards(
        cls,
        stores,
        shard_users,
        *,
        capacity=_INHERIT,
        confidence: float = 0.95,
    ) -> "QueryEngine":
        """Build a cross-shard engine over per-shard release stores.

        ``stores[s]`` is shard ``s``'s :class:`ReleaseStore` (its
        ``shard_users[s]`` users' releases), as maintained by the
        sharded serving tier (:mod:`repro.serving`).  The shards merge
        through :meth:`ReleaseStore.merge` — population-weighted rows,
        cross-shard-independent variances, publication groups cut
        wherever any shard published — and every query then answers
        exactly as a single-process engine over the merged store would.
        ``capacity`` is the merged store's retention (``None`` = full
        history, same meaning as everywhere else; default: inherit the
        first shard store's).  See ``docs/SERVING.md`` for the
        merged-answer contract.
        """
        _z(confidence)  # validate eagerly, before any merging work
        store = ReleaseStore.merge(stores, shard_users, capacity=capacity)
        return cls(store, confidence=confidence)

    # ------------------------------------------------------------------
    def _resolve_t(self, t: Optional[int]) -> int:
        if t is None:
            latest = self.store.latest_t
            if latest is None:
                raise InvalidParameterError("the release store is empty")
            return latest
        return int(t)

    def _check_item(self, item: int) -> int:
        if not isinstance(item, (int, np.integer)):
            raise InvalidParameterError(f"item must be an int, got {item!r}")
        item = int(item)
        if not 0 <= item < self.store.domain_size:
            raise InvalidParameterError(
                f"item {item} outside the domain "
                f"[0, {self.store.domain_size})"
            )
        return item

    # ------------------------------------------------------------------
    # Point / top-k / range: one timestamp
    # ------------------------------------------------------------------
    def point(self, item: int, t: Optional[int] = None) -> IntervalEstimate:
        """Estimated frequency of ``item`` at ``t`` (default: latest)."""
        item = self._check_item(item)
        t = self._resolve_t(t)
        release = self.store.release_at(t)
        variance = self.store.variance_at(t)
        return IntervalEstimate(
            estimate=float(release[item]),
            stderr=float(np.sqrt(variance)),
            confidence=self.confidence,
        )

    def topk(self, k: int = 5, t: Optional[int] = None) -> List[TopKEntry]:
        """The ``k`` heaviest items at ``t``, by released estimate.

        ``k`` defaults to 5, matching the serve protocol and the DSL
        wire form.  Ties break toward the smaller item id (stable
        sort), so answers are deterministic and identical across
        solo/group executions of the same session.
        """
        t = self._resolve_t(t)
        d = self.store.domain_size
        if not 1 <= k <= d:
            raise InvalidParameterError(f"k must be in [1, {d}], got {k}")
        release = self.store.release_at(t)
        stderr = float(np.sqrt(self.store.variance_at(t)))
        order = np.argsort(-release, kind="stable")[:k]
        return [
            TopKEntry(
                rank=rank,
                item=int(item),
                interval=IntervalEstimate(
                    estimate=float(release[item]),
                    stderr=stderr,
                    confidence=self.confidence,
                ),
            )
            for rank, item in enumerate(order, start=1)
        ]

    def range_count(
        self, lo: int, hi: int, t: Optional[int] = None
    ) -> IntervalEstimate:
        """Total estimated frequency of the categorical range ``[lo, hi)``.

        An empty range (``lo == hi``) is a valid query: estimate 0 with a
        zero-width interval.  Cell noise is treated as independent, so
        the variance of the sum is ``(hi - lo) · V``.
        """
        d = self.store.domain_size
        if not (
            isinstance(lo, (int, np.integer))
            and isinstance(hi, (int, np.integer))
        ):
            raise InvalidParameterError(
                f"range bounds must be ints, got ({lo!r}, {hi!r})"
            )
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= d:
            raise InvalidParameterError(
                f"range [{lo}, {hi}) must satisfy 0 <= lo <= hi <= {d}"
            )
        t = self._resolve_t(t)
        if lo == hi:
            return IntervalEstimate(0.0, 0.0, self.confidence)
        release = self.store.release_at(t)
        variance = self.store.variance_at(t) * (hi - lo)
        return IntervalEstimate(
            estimate=float(release[lo:hi].sum()),
            stderr=float(np.sqrt(variance)),
            confidence=self.confidence,
        )

    # ------------------------------------------------------------------
    # Sliding-window aggregates: a [t0, t1] span
    # ------------------------------------------------------------------
    def sliding(
        self,
        t0: int,
        t1: int,
        agg: str = "sum",
        item: Optional[int] = None,
    ) -> IntervalEstimate:
        """Aggregate one item over the closed span ``[t0, t1]``.

        ``agg`` is ``sum``, ``mean`` or ``max``.  Sum/mean estimates run
        on the store's prefix sums (O(d) regardless of span length);
        their variance uses the exact publication-group correlation (a
        single O(span) scan — see module docstring).  ``max`` scans the
        retained span.  Spans touching evicted timestamps raise
        :class:`~repro.exceptions.EvictedSpanError`.
        """
        if item is None:
            raise InvalidParameterError(
                "sliding() answers one item; use sliding_vector() for the "
                "whole histogram"
            )
        item = self._check_item(item)
        estimates, stderrs = self.sliding_vector(t0, t1, agg)
        return IntervalEstimate(
            estimate=float(estimates[item]),
            stderr=float(stderrs[item]),
            confidence=self.confidence,
        )

    def sliding_vector(
        self, t0: int, t1: int, agg: str = "sum"
    ) -> tuple:
        """Per-item ``(estimates, stderrs)`` arrays for a span aggregate."""
        if agg not in _AGGREGATES:
            raise InvalidParameterError(
                f"agg must be one of {_AGGREGATES}, got {agg!r}"
            )
        store = self.store
        if agg == "max":
            block = store.span_releases(t0, t1)  # validates the span
            arg = np.argmax(block, axis=0)
            estimates = block[arg, np.arange(store.domain_size)]
            # One O(span) variance pass; per-cell variance_at lookups
            # would cost O(d · span) in deque indexing.
            variances = store.span_variances(t0, t1)[arg]
            return estimates, np.sqrt(variances)
        total = store.window_sum(t0, t1)
        variance = sum(
            count * count * var
            for _, count, var in store.span_publication_groups(t0, t1)
        )
        span = t1 - t0 + 1
        if agg == "mean":
            return total / span, np.full(
                store.domain_size, np.sqrt(variance) / span
            )
        return total, np.full(store.domain_size, np.sqrt(variance))
