"""Numeric LDP mechanisms for mean estimation on bounded values.

Footnote 2 of the paper notes that "other aggregate analyses, such as
count and mean estimation, can be applicable, as the query type is
orthogonal to the streaming data setting".  This module supplies that
query type: one-dimensional mean estimation over user values in
``[-1, 1]``, with the three standard mechanisms from the LDP literature
(Duchi et al. 2014; Wang et al. ICDE 2019):

* :class:`DuchiMechanism` — binary output ±(e^ε+1)/(e^ε−1); minimax-
  optimal for small ε;
* :class:`PiecewiseMechanism` — continuous output in a widened interval;
  better for large ε;
* :class:`HybridMechanism` — Wang et al.'s ε-dependent mixture of the two.

All mechanisms are unbiased; ``variance(eps, n)`` returns the worst-case
variance of the estimated *mean* of ``n`` users, which plays the role
``V(eps, n)`` plays for frequency oracles in the stream mechanisms.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Type

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng


class NumericMechanism(abc.ABC):
    """LDP mechanism for values in ``[-1, 1]`` supporting mean estimation."""

    name: str = ""

    @abc.abstractmethod
    def perturb(
        self, values: np.ndarray, epsilon: float, rng: SeedLike = None
    ) -> np.ndarray:
        """Perturb each value independently with ``epsilon``-LDP."""

    @abc.abstractmethod
    def variance(self, epsilon: float, n: int) -> float:
        """Worst-case variance of the mean estimate from ``n`` reports."""

    def estimate_mean(self, reports: np.ndarray) -> float:
        """Unbiased mean estimate: reports are individually unbiased."""
        reports = np.asarray(reports, dtype=np.float64)
        if reports.size == 0:
            raise InvalidParameterError("cannot estimate a mean from no reports")
        return float(reports.mean())

    @staticmethod
    def _check(values: np.ndarray, epsilon: float) -> np.ndarray:
        if epsilon <= 0 or not math.isfinite(epsilon):
            raise InvalidParameterError(
                f"epsilon must be positive/finite, got {epsilon}"
            )
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise InvalidParameterError("values must be 1-D")
        if values.size and (values.min() < -1.0 or values.max() > 1.0):
            raise InvalidParameterError("values must lie in [-1, 1]")
        return values


class DuchiMechanism(NumericMechanism):
    """Duchi et al.'s binary mechanism.

    Reports ``+C`` with probability ``(v(e^ε−1) + e^ε + 1) / (2(e^ε+1))``
    and ``−C`` otherwise, where ``C = (e^ε+1)/(e^ε−1)``.  Unbiased with
    worst-case variance ``C² − 1 ≤ ((e^ε+1)/(e^ε−1))²`` per report.
    """

    name = "duchi"

    def perturb(self, values, epsilon, rng: SeedLike = None):
        values = self._check(values, epsilon)
        rng = ensure_rng(rng)
        e = math.exp(epsilon)
        scale = (e + 1.0) / (e - 1.0)
        p_positive = (values * (e - 1.0) + e + 1.0) / (2.0 * (e + 1.0))
        coins = rng.random(values.shape[0])
        return np.where(coins < p_positive, scale, -scale)

    def variance(self, epsilon: float, n: int) -> float:
        if n <= 0:
            raise InvalidParameterError(f"n must be positive, got {n}")
        e = math.exp(epsilon)
        scale = (e + 1.0) / (e - 1.0)
        # Var per report at v = 0 (worst case): C^2.
        return scale * scale / n


class PiecewiseMechanism(NumericMechanism):
    """Wang et al.'s Piecewise Mechanism (PM).

    Output domain ``[-C, C]`` with ``C = (e^{ε/2}+1)/(e^{ε/2}−1)``; with
    high probability the report lands in a small interval centred on a
    linear transform of the true value.  Unbiased; per-report variance
    ``v²/(e^{ε/2}−1) + (C·(e^{ε/2}+3))/(3·... )`` — we use the paper's
    worst-case bound at |v| = 1.
    """

    name = "piecewise"

    def perturb(self, values, epsilon, rng: SeedLike = None):
        values = self._check(values, epsilon)
        rng = ensure_rng(rng)
        s = math.exp(epsilon / 2.0)
        c = (s + 1.0) / (s - 1.0)
        out = np.empty(values.shape[0])
        p_centre = s / (s + 1.0)  # probability of landing in [l(v), r(v)]
        for i, v in enumerate(values):
            left = (c + 1.0) / 2.0 * v - (c - 1.0) / 2.0
            right = left + c - 1.0
            if rng.random() < p_centre:
                out[i] = rng.uniform(left, right)
            else:
                # Uniform over the complement [-C, l) ∪ (r, C].
                mass_left = left - (-c)
                mass_right = c - right
                if rng.random() < mass_left / (mass_left + mass_right):
                    out[i] = rng.uniform(-c, left)
                else:
                    out[i] = rng.uniform(right, c)
        return out

    def variance(self, epsilon: float, n: int) -> float:
        if n <= 0:
            raise InvalidParameterError(f"n must be positive, got {n}")
        s = math.exp(epsilon / 2.0)
        # Worst-case per-report variance at |v| = 1 (Wang et al., Eq. 7).
        per_report = 1.0 / (s - 1.0) + (s + 3.0) / (3.0 * s * (s - 1.0) ** 2) * (
            (s + 1.0) ** 2
        )
        return per_report / n


class HybridMechanism(NumericMechanism):
    """Wang et al.'s Hybrid Mechanism (HM): mixes PM and Duchi.

    For ε > ε* ≈ 0.61 use PM with probability ``1 − e^{−ε/2}`` and Duchi
    otherwise; for small ε use Duchi alone.
    """

    name = "hybrid"

    _EPS_STAR = 0.61

    def __init__(self):
        self._duchi = DuchiMechanism()
        self._pm = PiecewiseMechanism()

    def perturb(self, values, epsilon, rng: SeedLike = None):
        values = self._check(values, epsilon)
        rng = ensure_rng(rng)
        if epsilon <= self._EPS_STAR:
            return self._duchi.perturb(values, epsilon, rng=rng)
        alpha = 1.0 - math.exp(-epsilon / 2.0)
        use_pm = rng.random(values.shape[0]) < alpha
        out = np.empty(values.shape[0])
        if use_pm.any():
            out[use_pm] = self._pm.perturb(values[use_pm], epsilon, rng=rng)
        if (~use_pm).any():
            out[~use_pm] = self._duchi.perturb(values[~use_pm], epsilon, rng=rng)
        return out

    def variance(self, epsilon: float, n: int) -> float:
        if epsilon <= self._EPS_STAR:
            return self._duchi.variance(epsilon, n)
        alpha = 1.0 - math.exp(-epsilon / 2.0)
        return alpha * self._pm.variance(epsilon, n) + (1.0 - alpha) * (
            self._duchi.variance(epsilon, n)
        )


_NUMERIC: Dict[str, Type[NumericMechanism]] = {
    "duchi": DuchiMechanism,
    "piecewise": PiecewiseMechanism,
    "hybrid": HybridMechanism,
}


def get_numeric_mechanism(name_or_instance) -> NumericMechanism:
    """Resolve a numeric mechanism by name (``duchi``/``piecewise``/``hybrid``)."""
    if isinstance(name_or_instance, NumericMechanism):
        return name_or_instance
    try:
        return _NUMERIC[str(name_or_instance).lower()]()
    except KeyError:
        raise InvalidParameterError(
            f"unknown numeric mechanism {name_or_instance!r}; "
            f"available: {sorted(_NUMERIC)}"
        ) from None
