"""Lower DSL queries onto ``QueryEngine``/``ReleaseStore`` primitives.

:class:`QueryPlanner` is the execution half of the query DSL
(:mod:`repro.query.dsl`).  It owns a set of named *sources* — each one a
:class:`~repro.query.engine.QueryEngine` over some release store — and
turns an AST node into a :class:`Plan`: an ordered list of engine/store
primitive calls plus the arithmetic that combines them.

The lowering is deliberately **transparent**: every composite answer is
produced by the exact primitive call sequence a user would hand-compose,
in the same order, with the same float operations — so a DSL answer is
bit-identical to the equivalent direct ``QueryEngine`` usage (the
property ``tests/query/test_planner.py`` pins).  The rules:

* ``Point``/``TopK``/``Range``/``Sliding`` — one engine call each.
* ``Filter(TopK(k), items)`` — ``engine.point(i, t)`` per item in
  ascending order, ranked by ``(-estimate, item)`` (the engine's own
  stable tie-break), truncated to ``min(k, len(items))``.
* ``Filter(Range(lo, hi), items)`` / each ``GroupBy`` group — a subset
  sum: ``engine.point(i, t)`` estimates accumulated in ascending item
  order, with variance ``m · V(t)`` (``m`` cells of independent noise —
  the same rule ``range_count`` applies to a contiguous range).  An
  empty subset answers 0 with a zero-width interval, like an empty
  range.
* ``Join(how="diff")`` — each side's windowed mean via
  ``engine.sliding(t0, t1, "mean", item)``; the difference carries
  stderr ``hypot(σ_L, σ_R)`` (cross-session independence).
* ``Join(how="corr")`` — Pearson correlation of the two retained
  release series (``store.span_releases``), Fisher-approximation stderr
  ``(1 − r²)/√(n − 3)`` (needs a span of ≥ 4 timestamps).
* ``Changepoint`` — the item's retained series through
  :func:`repro.analysis.changepoint.cusum_detect`, alarms reported as
  absolute timestamps.
* ``Threshold`` — the inner scalar answer, then THRESH's noise-multiple
  rule: triggered iff the estimate clears ``value`` by
  ``sigmas · stderr``.

``answer()`` wraps ``evaluate()`` results in the serve wire shapes —
field-for-field identical to the legacy per-op replies for the four
classic verbs, so the servers route every query through the planner
without changing a byte on the wire.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from ..analysis.changepoint import cusum_detect
from ..exceptions import InvalidParameterError
from .dsl import (
    Changepoint,
    Filter,
    GroupBy,
    Join,
    Point,
    Query,
    Range,
    Sliding,
    Threshold,
    TopK,
)
from .engine import IntervalEstimate, QueryEngine, TopKEntry

#: The planner's catch-all source name when built over a single engine.
DEFAULT_SOURCE = "default"


@dataclass(frozen=True)
class ChangepointResult:
    """CUSUM alarms for one item over a resolved ``[t0, t1]`` span."""

    item: int
    t0: int
    t1: int
    alarms: Tuple[int, ...]


@dataclass(frozen=True)
class ThresholdResult:
    """A threshold predicate's verdict plus the interval it judged."""

    interval: IntervalEstimate
    margin: float
    triggered: bool


@dataclass(frozen=True)
class Plan:
    """A lowered query: primitive-call descriptions + an executor."""

    query: Query
    steps: Tuple[str, ...]
    _run: Callable[[], object]

    def run(self):
        """Execute the primitive sequence and combine the answers."""
        return self._run()

    def explain(self) -> str:
        return "\n".join(self.steps)


class QueryPlanner:
    """Evaluate DSL queries against one or more named engines.

    Parameters
    ----------
    engines:
        Either a single :class:`QueryEngine` (registered under the
        source name ``"default"``) or a mapping of source names to
        engines (e.g. two sessions' engines for a :class:`Join`).
    default:
        The source a query with ``source=None`` resolves to.  Inferred
        when there is exactly one engine; required otherwise.
    """

    def __init__(
        self,
        engines: Union[QueryEngine, Mapping[str, QueryEngine]],
        *,
        default: Optional[str] = None,
    ):
        if isinstance(engines, QueryEngine):
            engines = {DEFAULT_SOURCE: engines}
        if not isinstance(engines, Mapping) or not engines:
            raise InvalidParameterError(
                "engines must be a QueryEngine or a non-empty mapping "
                f"of source names to engines, got {engines!r}"
            )
        self._engines: Dict[str, QueryEngine] = {}
        for name, engine in engines.items():
            if not isinstance(name, str) or not name:
                raise InvalidParameterError(
                    f"source names must be non-empty strings, got {name!r}"
                )
            if not isinstance(engine, QueryEngine):
                raise InvalidParameterError(
                    f"source {name!r} must be a QueryEngine, got "
                    f"{engine!r}"
                )
            self._engines[name] = engine
        if default is None and len(self._engines) == 1:
            default = next(iter(self._engines))
        if default is not None and default not in self._engines:
            raise InvalidParameterError(
                f"default source {default!r} is not registered "
                f"(sources: {sorted(self._engines)})"
            )
        self._default = default

    @property
    def sources(self) -> Tuple[str, ...]:
        return tuple(self._engines)

    def engine_for(self, source: Optional[str]) -> QueryEngine:
        """Resolve a query's ``source`` name to its engine."""
        if source is None:
            if self._default is None:
                raise InvalidParameterError(
                    "this planner has several sources and no default; "
                    f"set source= to one of {sorted(self._engines)}"
                )
            return self._engines[self._default]
        engine = self._engines.get(source)
        if engine is None:
            raise InvalidParameterError(
                f"unknown source {source!r} "
                f"(sources: {sorted(self._engines)})"
            )
        return engine

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> Plan:
        """Lower one AST node into its primitive-call plan."""
        if not isinstance(query, Query):
            raise InvalidParameterError(
                f"plan() takes a DSL query node, got {query!r}"
            )
        steps, run = self._lower(query)
        return Plan(query=query, steps=tuple(steps), _run=run)

    def evaluate(self, query: Query):
        """Plan and execute in one call."""
        return self.plan(query).run()

    def _lower(self, query: Query):
        if isinstance(query, Point):
            return self._lower_point(query)
        if isinstance(query, TopK):
            return self._lower_topk(query)
        if isinstance(query, Range):
            return self._lower_range(query)
        if isinstance(query, Sliding):
            return self._lower_sliding(query)
        if isinstance(query, Filter):
            return self._lower_filter(query)
        if isinstance(query, GroupBy):
            return self._lower_groupby(query)
        if isinstance(query, Join):
            return self._lower_join(query)
        if isinstance(query, Changepoint):
            return self._lower_changepoint(query)
        if isinstance(query, Threshold):
            return self._lower_threshold(query)
        raise InvalidParameterError(
            f"no lowering for query node {type(query).__name__}"
        )

    def _lower_point(self, query: Point):
        engine = self.engine_for(query.source)
        steps = [f"point(item={query.item}, t={query.t})"]
        return steps, lambda: engine.point(query.item, t=query.t)

    def _lower_topk(self, query: TopK):
        engine = self.engine_for(query.source)
        steps = [f"topk(k={query.k}, t={query.t})"]
        return steps, lambda: engine.topk(query.k, t=query.t)

    def _lower_range(self, query: Range):
        engine = self.engine_for(query.source)
        steps = [f"range_count(lo={query.lo}, hi={query.hi}, t={query.t})"]
        return steps, lambda: engine.range_count(
            query.lo, query.hi, t=query.t
        )

    def _lower_sliding(self, query: Sliding):
        engine = self.engine_for(query.source)
        steps = [
            f"sliding(t0={query.t0}, t1={query.t1}, agg={query.agg!r}, "
            f"item={query.item})"
        ]
        return steps, lambda: engine.sliding(
            query.t0, query.t1, query.agg, item=query.item
        )

    # -- composite nodes ----------------------------------------------
    def _subset_sum(
        self, engine: QueryEngine, items, t: Optional[int]
    ) -> IntervalEstimate:
        """Subset sum over ``items`` at ``t`` through the store's fused
        :meth:`~repro.query.store.ReleaseStore.subset_sum` operator.

        One slot fetch instead of one :meth:`~repro.query.engine.
        QueryEngine.point` call (and release copy) per item —
        byte-identical, because the store accumulates the same cells
        sequentially in the same (ascending, AST-fixed) order and
        validates each item with the same domain error."""
        if not items:
            return IntervalEstimate(0.0, 0.0, engine.confidence)
        if t is None:
            t_eff = engine.store.latest_t
            if t_eff is None:
                raise InvalidParameterError("the release store is empty")
        else:
            t_eff = t
        estimate = engine.store.subset_sum(t_eff, items)
        variance = len(items) * engine.store.variance_at(t_eff)
        return IntervalEstimate(
            estimate=estimate,
            stderr=float(math.sqrt(variance)),
            confidence=engine.confidence,
        )

    def _lower_filter(self, query: Filter):
        inner = query.query
        engine = self.engine_for(inner.source)
        items = query.items
        if isinstance(inner, (Point, Sliding)):
            # Membership was validated by the AST; the filter is a
            # no-op guard around the plain verb.
            return self._lower(inner)
        if isinstance(inner, TopK):
            k = min(inner.k, len(items))
            steps = [
                f"point(item={i}, t={inner.t})" for i in items
            ] + [f"rank by (-estimate, item), keep {k}"]

            def run_topk():
                answers = [
                    (i, engine.point(i, t=inner.t)) for i in items
                ]
                answers.sort(key=lambda pair: (-pair[1].estimate, pair[0]))
                return [
                    TopKEntry(rank=rank, item=item, interval=interval)
                    for rank, (item, interval) in enumerate(
                        answers[:k], start=1
                    )
                ]

            return steps, run_topk
        # Range: fused subset-sum over the intersection with [lo, hi).
        subset = tuple(
            i for i in items if inner.lo <= i < inner.hi
        )
        steps = [
            f"subset_sum(items={list(subset)}, t={inner.t}) "
            f"[fused: one release fetch]",
            f"stderr = sqrt({len(subset)} * V(t))",
        ]
        return steps, lambda: self._subset_sum(engine, subset, inner.t)

    def _lower_groupby(self, query: GroupBy):
        engine = self.engine_for(query.source)
        steps = []
        for name, items in query.groups:
            steps.append(
                f"group {name!r}: subset_sum(items={list(items)}, "
                f"t={query.t}) [fused: one release fetch]"
            )

        def run():
            return {
                name: self._subset_sum(engine, items, query.t)
                for name, items in query.groups
            }

        return steps, run

    def _lower_join(self, query: Join):
        left = self.engine_for(query.left)
        right = self.engine_for(query.right)
        for side, engine in (("left", left), ("right", right)):
            if not 0 <= query.item < engine.store.domain_size:
                raise InvalidParameterError(
                    f"item {query.item} outside the {side} source's "
                    f"domain [0, {engine.store.domain_size})"
                )
        if query.how == "diff":
            steps = [
                f"{side}.sliding(t0={query.t0}, t1={query.t1}, "
                f"agg='mean', item={query.item})"
                for side in (query.left, query.right)
            ] + ["difference; stderr = hypot(stderr_L, stderr_R)"]

            def run_diff():
                a = left.sliding(
                    query.t0, query.t1, "mean", item=query.item
                )
                b = right.sliding(
                    query.t0, query.t1, "mean", item=query.item
                )
                return IntervalEstimate(
                    estimate=a.estimate - b.estimate,
                    stderr=float(np.hypot(a.stderr, b.stderr)),
                    confidence=left.confidence,
                )

            return steps, run_diff
        # corr: Pearson over the retained release series.
        n = query.t1 - query.t0 + 1
        if n < 4:
            raise InvalidParameterError(
                f"a corr join needs a span of at least 4 timestamps, "
                f"got [{query.t0}, {query.t1}]"
            )
        steps = [
            f"{side}.store.span_releases({query.t0}, {query.t1})"
            f"[:, {query.item}]"
            for side in (query.left, query.right)
        ] + [f"pearson r; stderr = (1 - r^2)/sqrt({n} - 3)"]

        def run_corr():
            a = left.store.span_releases(query.t0, query.t1)[:, query.item]
            b = right.store.span_releases(query.t0, query.t1)[
                :, query.item
            ]
            da = a - a.mean()
            db = b - b.mean()
            denom = math.sqrt(float(da @ da) * float(db @ db))
            if denom == 0.0:
                raise InvalidParameterError(
                    "correlation is undefined: a release series is "
                    "constant over the join span"
                )
            r = float(da @ db) / denom
            return IntervalEstimate(
                estimate=r,
                stderr=(1.0 - r * r) / math.sqrt(n - 3),
                confidence=left.confidence,
            )

        return steps, run_corr

    def _lower_changepoint(self, query: Changepoint):
        engine = self.engine_for(query.source)
        store = engine.store
        if not 0 <= query.item < store.domain_size:
            raise InvalidParameterError(
                f"item {query.item} outside the domain "
                f"[0, {store.domain_size})"
            )
        steps = [
            f"span_releases(t0={query.t0 or 'oldest'}, "
            f"t1={query.t1 if query.t1 is not None else 'latest'})"
            f"[:, {query.item}]",
            f"cusum_detect(drift={query.drift}, "
            f"threshold={query.threshold})",
        ]

        def run():
            if store.latest_t is None:
                raise InvalidParameterError("the release store is empty")
            t0 = query.t0 if query.t0 is not None else store.oldest_t
            t1 = query.t1 if query.t1 is not None else store.latest_t
            if t0 > t1:
                raise InvalidParameterError(
                    f"changepoint span resolved to [{t0}, {t1}] "
                    f"(t0 > t1)"
                )
            series = store.span_releases(t0, t1)[:, query.item]
            alarms = cusum_detect(series, query.drift, query.threshold)
            return ChangepointResult(
                item=query.item,
                t0=t0,
                t1=t1,
                alarms=tuple(t0 + a for a in alarms),
            )

        return steps, run

    def _lower_threshold(self, query: Threshold):
        inner_steps, inner_run = self._lower(query.query)
        steps = list(inner_steps) + [
            f"trigger iff estimate {query.cmp} {query.value} by "
            f"{query.sigmas} sigma"
        ]

        def run():
            interval = inner_run()
            margin = query.sigmas * interval.stderr
            estimate = interval.estimate
            if query.cmp == ">":
                triggered = estimate - margin > query.value
            elif query.cmp == ">=":
                triggered = estimate - margin >= query.value
            elif query.cmp == "<":
                triggered = estimate + margin < query.value
            else:  # "<="
                triggered = estimate + margin <= query.value
            return ThresholdResult(
                interval=interval, margin=margin, triggered=triggered
            )

        return steps, run

    # ------------------------------------------------------------------
    # Wire answers
    # ------------------------------------------------------------------
    def answer(self, query: Query) -> dict:
        """Evaluate and shape the reply as the serve protocol sends it.

        For the four classic verbs the shape is field-for-field the
        legacy per-op reply; composite nodes extend the same
        conventions (documented in ``docs/SERVING.md``).
        """
        result = self.evaluate(query)
        return self._shape(query, result)

    def _shape(self, query: Query, result) -> dict:
        if isinstance(query, Point):
            return {"op": "point", "item": query.item, **result.as_dict()}
        if isinstance(query, TopK):
            return {"op": "topk", "items": [e.as_dict() for e in result]}
        if isinstance(query, Range):
            return {
                "op": "range",
                "lo": query.lo,
                "hi": query.hi,
                **result.as_dict(),
            }
        if isinstance(query, Sliding):
            return {
                "op": "sliding",
                "item": query.item,
                **result.as_dict(),
            }
        if isinstance(query, Filter):
            reply = self._shape(query.query, result)
            if isinstance(query.query, TopK):
                reply["items"] = [e.as_dict() for e in result]
            reply["where"] = list(query.items)
            return reply
        if isinstance(query, GroupBy):
            reply = {
                "op": "groupby",
                "groups": {
                    name: interval.as_dict()
                    for name, interval in result.items()
                },
            }
            if query.t is not None:
                reply["t"] = query.t
            return reply
        if isinstance(query, Join):
            return {
                "op": "join",
                "how": query.how,
                "item": query.item,
                "t0": query.t0,
                "t1": query.t1,
                "left": query.left,
                "right": query.right,
                **result.as_dict(),
            }
        if isinstance(query, Changepoint):
            return {
                "op": "changepoint",
                "item": result.item,
                "drift": query.drift,
                "threshold": query.threshold,
                "t0": result.t0,
                "t1": result.t1,
                "alarms": list(result.alarms),
            }
        if isinstance(query, Threshold):
            return {
                "op": "threshold",
                "query": query.query.to_wire(),
                "cmp": query.cmp,
                "value": query.value,
                "sigmas": query.sigmas,
                **result.interval.as_dict(),
                "margin": result.margin,
                "triggered": result.triggered,
            }
        raise InvalidParameterError(
            f"no wire shape for query node {type(query).__name__}"
        )
