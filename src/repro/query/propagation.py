"""Variance bookkeeping rules shared by live sessions and replayed runs.

The query layer attaches one scalar to every stored release: the mean
per-cell estimation variance ``V(eps, n)`` of the oracle round that
produced it (:mod:`repro.freq_oracles.variance`).  The rule for deriving
it from a step record lives here — in one place — so a live
:class:`~repro.engine.session.StreamSession` publishing into a store and
:meth:`~repro.query.engine.QueryEngine.from_result` rebuilding one from a
saved run produce bit-identical variance tracks.

The recorded variance is always the *raw estimator's* ``V(eps, n)``;
postprocessing consistency steps (clip / normalise / norm-sub /
simplex projection) are variance-reducing projections with no closed
form, so sessions running ``postprocess != "none"`` store conservative
(wide) variances for their projected releases.  Documented in
``docs/QUERIES.md``.
"""

from __future__ import annotations

from ..freq_oracles.base import FrequencyOracle

#: Variance of the deterministic zero prior released before any
#: publication (Algorithms 1-4 set r_0 = <0, ..., 0>).
PRIOR_VARIANCE = 0.0


def next_release_variance(
    oracle: FrequencyOracle,
    strategy: str,
    publication_epsilon: float,
    publication_users: int,
    domain_size: int,
    last_variance: float,
) -> float:
    """Variance of the release produced by one mechanism step.

    A fresh publication's variance is the oracle's closed-form
    ``V(eps_pub, n_pub)``.  Approximations and nullified steps re-release
    the previous histogram — the *same* realised noise — so they carry
    the previous variance forward unchanged (and stay in the previous
    publication's correlation group; see
    :meth:`repro.query.store.ReleaseStore.span_publication_groups`).
    """
    if strategy == "publish" and publication_users > 0 and publication_epsilon > 0:
        return oracle.variance(
            publication_epsilon, publication_users, domain_size
        )
    return last_variance
