"""Standing queries: alert predicates evaluated incrementally per chunk.

A *standing query* is a DSL alert predicate registered against a live
release stream: after every flushed ingest chunk the registry walks the
timestamps appended since its last poll and emits one alert event per
triggering timestamp.  Two query shapes can stand:

* :class:`~repro.query.dsl.Threshold` whose inner scalar query
  (``Point``/``Range``, optionally filtered) leaves ``t`` unset — the
  registry pins each new timestamp in turn
  (:func:`~repro.query.dsl.pin_t`) and evaluates through the planner,
  so each per-timestamp verdict is *exactly* the answer a fresh
  one-shot evaluation at that timestamp would give.  Alerts are
  level-triggered: every timestamp the predicate holds emits an event.
* :class:`~repro.query.dsl.Changepoint` with ``t1`` unset — the item's
  released series feeds an incremental
  :class:`~repro.analysis.changepoint.CusumDetector` (the stateful
  core :func:`~repro.analysis.changepoint.cusum_detect` itself runs
  on), so the incremental alarm stream is bit-identical to re-running
  the full detector over ``[t0, latest]`` after every chunk.  ``t0``
  defaults to the registration watermark.

Incremental evaluation is therefore equivalent to full re-evaluation
at every chunk boundary — the acceptance property
``tests/query/test_standing.py`` pins at 1/2/4 shards — *as long as
the span stays retained*.  If the store's ring buffer evicts
timestamps the registry never saw, it skips them (counted in
``StandingQuery.skipped``) rather than failing; run with
``capacity=None`` (``--capacity 0``) when alert streams must be
gap-free.

Registrations live in server memory only: a durable serve resume
starts with an empty registry (clients re-register, and ``t0``
anchors at the resumed watermark).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.changepoint import CusumDetector
from ..exceptions import InvalidParameterError
from .dsl import (
    Changepoint,
    Filter,
    Point,
    Query,
    Range,
    Threshold,
    format_expr,
    pin_t,
)
from .planner import QueryPlanner

#: Inner verbs a standing threshold may watch (scalar, pinnable).
_STANDING_SCALAR = (Point, Range)


class StandingQuery:
    """One registered alert predicate plus its incremental state."""

    def __init__(
        self,
        sid: str,
        query: Query,
        planner: QueryPlanner,
        *,
        start_t: int,
        context=None,
    ):
        if not isinstance(sid, str) or not sid:
            raise InvalidParameterError(
                f"a standing query id must be a non-empty string, "
                f"got {sid!r}"
            )
        self.sid = sid
        self.query = query
        self.context = context
        self._planner = planner
        self.skipped = 0
        self._detector: Optional[CusumDetector] = None
        if isinstance(query, Threshold):
            inner = query.query
            base = inner.query if isinstance(inner, Filter) else inner
            if not isinstance(base, _STANDING_SCALAR):
                raise InvalidParameterError(
                    "a standing threshold must watch a point or range "
                    "(optionally filtered); sliding spans are fixed "
                    "windows and cannot stand"
                )
            if base.t is not None:
                raise InvalidParameterError(
                    "a standing threshold must leave t unset — the "
                    "registry pins each new timestamp as it arrives"
                )
            self.kind = "threshold"
            self._engine = planner.engine_for(base.source)
            self._next_t = int(start_t)
        elif isinstance(query, Changepoint):
            if query.t1 is not None:
                raise InvalidParameterError(
                    "a standing changepoint must leave t1 unset — it "
                    "tracks the stream as it grows"
                )
            self.kind = "changepoint"
            self._engine = planner.engine_for(query.source)
            if not 0 <= query.item < self._engine.store.domain_size:
                raise InvalidParameterError(
                    f"item {query.item} outside the domain "
                    f"[0, {self._engine.store.domain_size})"
                )
            self._detector = CusumDetector(query.drift, query.threshold)
            self.t0 = query.t0 if query.t0 is not None else int(start_t)
            self._next_t = self.t0
        else:
            raise InvalidParameterError(
                f"only threshold and changepoint queries can stand, "
                f"got {type(query).op or type(query).__name__!r}"
            )

    @property
    def next_t(self) -> int:
        """The first timestamp the next poll will evaluate."""
        return self._next_t

    def describe(self) -> dict:
        return {
            "id": self.sid,
            "kind": self.kind,
            "expr": format_expr(self.query),
            "next_t": self._next_t,
            "skipped": self.skipped,
        }

    def poll(self) -> List[dict]:
        """Evaluate every not-yet-seen timestamp; one event per alert."""
        store = self._engine.store
        latest = store.latest_t
        if latest is None or self._next_t > latest:
            return []
        start = self._next_t
        oldest = store.oldest_t
        if oldest is not None and start < oldest:
            self.skipped += oldest - start
            start = oldest
        events = []
        for t in range(start, latest + 1):
            event = self._evaluate_at(t)
            if event is not None:
                events.append(event)
        self._next_t = latest + 1
        return events

    def _evaluate_at(self, t: int) -> Optional[dict]:
        if self.kind == "threshold":
            result = self._planner.evaluate(pin_t(self.query, t))
            if not result.triggered:
                return None
            return {
                "event": "alert",
                "id": self.sid,
                "kind": "threshold",
                "t": t,
                "expr": format_expr(self.query),
                "cmp": self.query.cmp,
                "value": self.query.value,
                "margin": result.margin,
                **result.interval.as_dict(),
            }
        value = self._engine.store.release_at(t)[self.query.item]
        if not self._detector.push(value):
            return None
        return {
            "event": "alert",
            "id": self.sid,
            "kind": "changepoint",
            "t": t,
            "item": self.query.item,
            "t0": self.t0,
            "expr": format_expr(self.query),
        }


class StandingRegistry:
    """All standing queries registered against one planner's sources."""

    def __init__(self, planner: QueryPlanner):
        self._planner = planner
        self._queries: Dict[str, StandingQuery] = {}

    def __len__(self) -> int:
        return len(self._queries)

    def register(
        self, sid: str, query: Query, *, context=None
    ) -> StandingQuery:
        """Register a predicate; alerts start at the current watermark."""
        if sid in self._queries:
            raise InvalidParameterError(
                f"standing query id {sid!r} is already registered"
            )
        standing = StandingQuery(
            sid,
            query,
            self._planner,
            start_t=self._watermark(query),
            context=context,
        )
        self._queries[sid] = standing
        return standing

    def _watermark(self, query: Query) -> int:
        """The next timestamp the watched store will append."""
        if isinstance(query, Threshold):
            inner = query.query
            base = (
                inner.query if isinstance(inner, Filter) else inner
            )
            source = getattr(base, "source", None)
        else:
            source = getattr(query, "source", None)
        try:
            store = self._planner.engine_for(source).store
        except InvalidParameterError:
            return 0  # StandingQuery raises the precise error next
        latest = store.latest_t
        return 0 if latest is None else latest + 1

    def unregister(self, sid: str) -> bool:
        return self._queries.pop(sid, None) is not None

    def describe(self) -> List[dict]:
        return [sq.describe() for sq in self._queries.values()]

    def poll(self) -> List[Tuple[StandingQuery, dict]]:
        """Advance every standing query; ``(standing, event)`` pairs in
        registration order, each query's events in timestamp order."""
        out: List[Tuple[StandingQuery, dict]] = []
        for standing in self._queries.values():
            for event in standing.poll():
                out.append((standing, event))
        return out
