"""Memory-bounded store of released estimates, the substrate of queries.

A streaming session *releases* one histogram per timestamp; the query
layer needs those releases organised for random access, window
arithmetic, and error propagation — without forcing an unbounded online
session to hoard its whole history.  :class:`ReleaseStore` is that
substrate:

* a **ring buffer** of the last ``capacity`` releases (``capacity=None``
  retains the full history, for offline / finalized-run queries);
* per-timestamp **prefix sums** of the release vectors, stored inside
  each slot, so any in-retention span's *sum/mean estimate* is O(d)
  regardless of span length;
* per-timestamp **publication ids**: re-released (approximate /
  nullified) timestamps repeat the *same* noisy histogram as the last
  publication, so their errors are perfectly correlated — the engine
  uses the ids to propagate variance correctly across spans (a single
  O(span-length) scan of the grouping, see
  :meth:`ReleaseStore.span_publication_groups`).

Sessions publish into a store from
:meth:`repro.engine.session.StreamSession.observe`; nothing in here
imports the engine, so the store is equally usable standalone (e.g.
rebuilt from a saved :class:`~repro.engine.records.SessionResult` by
:meth:`repro.query.engine.QueryEngine.from_result`).
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Deque, Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import EvictedSpanError, InvalidParameterError

#: Merged-row strategy precedence: any shard publishing makes the
#: population row a publication (new realized noise entered the merge);
#: otherwise any approximation outranks an all-nullified row.
_STRATEGY_RANK = {"publish": 2, "approximate": 1, "nullified": 0}

#: Sentinel for "inherit the first shard store's capacity".
_INHERIT = object()


def merge_release_rows(
    releases,
    variances,
    strategies,
    weights,
) -> Tuple[np.ndarray, float, str]:
    """Merge one timestamp's per-shard rows into the population row.

    ``releases``/``variances``/``strategies`` hold shard ``s``'s released
    histogram, its mean per-cell variance and its step strategy;
    ``weights`` are the population fractions ``n_s / N`` in shard order.
    Returns ``(release, variance, strategy)`` where:

    * ``release = Σ_s w_s · r_s`` — the population estimate.  Because
      every oracle's estimator is affine in its support counts, this
      equals the estimate a single process would have debiased from the
      summed supports (exact in algebra; accumulated in fixed shard
      order so any two mergers of the same rows agree bit-for-bit).
      With one shard it degenerates to ``1.0 · r_0``, bit-identical to
      the solo row.
    * ``variance = Σ_s w_s² · v_s`` — exact under cross-shard
      independence (shards draw from independent generators).
    * ``strategy`` — the highest-precedence shard strategy: ``publish``
      if any shard published fresh noise at this timestamp (the merged
      row then starts a new correlation group), else ``approximate`` if
      any shard approximated, else ``nullified``.
    """
    if not (len(releases) == len(variances) == len(strategies) == len(weights)):
        raise InvalidParameterError(
            "releases, variances, strategies and weights must align"
        )
    if not releases:
        raise InvalidParameterError("cannot merge zero shard rows")
    release = weights[0] * np.asarray(releases[0], dtype=np.float64)
    variance = weights[0] ** 2 * float(variances[0])
    strategy = str(strategies[0])
    for s in range(1, len(releases)):
        release = release + weights[s] * np.asarray(
            releases[s], dtype=np.float64
        )
        variance += weights[s] ** 2 * float(variances[s])
        if _STRATEGY_RANK.get(str(strategies[s]), 0) > _STRATEGY_RANK.get(
            strategy, 0
        ):
            strategy = str(strategies[s])
    return release, variance, strategy


class _Slot:
    """One retained timestamp: release row + running accumulators."""

    __slots__ = (
        "t",
        "release",
        "variance",
        "strategy",
        "publication_id",
        "cum_release",
    )

    def __init__(
        self, t, release, variance, strategy, publication_id, cum_release
    ):
        self.t = t
        self.release = release
        self.variance = variance
        self.strategy = strategy
        self.publication_id = publication_id
        self.cum_release = cum_release


class ReleaseStore:
    """Ring buffer of released estimates with prefix-sum accumulators.

    Parameters
    ----------
    domain_size:
        Length ``d`` of every released histogram.
    capacity:
        Maximum number of timestamps retained (``>= 1``).  ``None``
        retains everything — use for finalized runs; bounded online
        sessions should set a ring size so memory stays O(capacity · d).

    Timestamps must be appended in order starting at 0, mirroring the
    session's ``observe`` contract.  Queries may address any retained
    timestamp; touching an evicted one raises
    :class:`~repro.exceptions.EvictedSpanError`.
    """

    def __init__(self, domain_size: int, capacity: Optional[int] = None):
        if domain_size < 2:
            raise InvalidParameterError(
                f"domain_size must be >= 2, got {domain_size}"
            )
        if capacity is not None and capacity < 1:
            raise InvalidParameterError(
                f"capacity must be >= 1 or None, got {capacity}"
            )
        self.domain_size = int(domain_size)
        self.capacity = None if capacity is None else int(capacity)
        self._slots: Deque[_Slot] = deque()
        self._next_t = 0
        self._evicted = 0
        self._publications = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(
        self,
        t: int,
        release: np.ndarray,
        variance: float,
        strategy: str,
        *,
        fresh_publication: Optional[bool] = None,
    ) -> None:
        """Publish timestamp ``t``'s released histogram into the store.

        ``variance`` is the mean per-cell estimation variance of this
        release (the oracle's ``V(eps, n)``; ``nan`` if unknown).
        ``fresh_publication`` defaults to ``strategy == "publish"`` and
        controls the publication-id grouping used for correlated error
        propagation.
        """
        if t != self._next_t:
            raise InvalidParameterError(
                f"releases must be appended in order: expected t="
                f"{self._next_t}, got t={t}"
            )
        release = np.asarray(release, dtype=np.float64)
        if release.shape != (self.domain_size,):
            raise InvalidParameterError(
                f"release must have shape ({self.domain_size},), got "
                f"{release.shape}"
            )
        if fresh_publication is None:
            fresh_publication = strategy == "publish"
        if fresh_publication:
            self._publications += 1
        if self._slots:
            cum_release = self._slots[-1].cum_release + release
        else:
            cum_release = release.copy()
        self._slots.append(
            _Slot(
                t=t,
                release=release.copy(),
                variance=float(variance),
                strategy=str(strategy),
                # id 0 = the zero prior before any publication.
                publication_id=self._publications,
                cum_release=cum_release,
            )
        )
        if self.capacity is not None:
            while len(self._slots) > self.capacity:
                self._slots.popleft()
                self._evicted += 1
        self._next_t = t + 1

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot of the ring for :mod:`repro.persist`.

        Retained releases ship as one ``(m, d)`` block.  Only the *first*
        retained slot's prefix-sum accumulator is stored: the later
        accumulators were computed as ``cum[i] = cum[i-1] + release[i]``
        and :meth:`load_state` repeats exactly those additions, so the
        reconstructed accumulators — and every future ``window_sum`` —
        are bit-identical to the uninterrupted store's.
        """
        m = len(self._slots)
        d = self.domain_size
        if m:
            releases = np.stack([s.release for s in self._slots])
            base_cum = self._slots[0].cum_release.copy()
        else:
            releases = np.empty((0, d), dtype=np.float64)
            base_cum = None
        return {
            "domain_size": d,
            "capacity": self.capacity,
            "next_t": self._next_t,
            "evicted": self._evicted,
            "publications": self._publications,
            "oldest_t": self.oldest_t,
            "releases": releases,
            "base_cum": base_cum,
            "variances": [s.variance for s in self._slots],
            "strategies": [s.strategy for s in self._slots],
            "publication_ids": [s.publication_id for s in self._slots],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ReleaseStore":
        """Rebuild a store captured by :meth:`state_dict`."""
        store = cls(int(state["domain_size"]), capacity=state["capacity"])
        releases = np.asarray(state["releases"], dtype=np.float64)
        m = releases.shape[0]
        if m:
            oldest = int(state["oldest_t"])
            cum = np.asarray(state["base_cum"], dtype=np.float64).copy()
            for i in range(m):
                if i:
                    cum = cum + releases[i]
                store._slots.append(
                    _Slot(
                        t=oldest + i,
                        release=releases[i].copy(),
                        variance=float(state["variances"][i]),
                        strategy=str(state["strategies"][i]),
                        publication_id=int(state["publication_ids"][i]),
                        cum_release=cum,
                    )
                )
        store._next_t = int(state["next_t"])
        store._evicted = int(state["evicted"])
        store._publications = int(state["publications"])
        return store

    # ------------------------------------------------------------------
    # Shard merging
    # ------------------------------------------------------------------
    @classmethod
    def merge(
        cls,
        stores: "List[ReleaseStore]",
        shard_users: "List[int]",
        *,
        capacity=_INHERIT,
    ) -> "ReleaseStore":
        """Merge aligned per-shard stores into one population store.

        ``stores[s]`` holds shard ``s``'s released estimates over its
        ``shard_users[s]`` users; shards must have ingested the same
        timestamps in lockstep (same ``len``, same retained span — the
        sharded serving tier guarantees this by construction).  Each
        retained timestamp merges through :func:`merge_release_rows`, so
        the result is row-for-row identical to the merged store the
        serving tier maintains incrementally over the same span.

        The merged store's publication groups are rebuilt from the span
        alone: a row starts a new correlation group iff some shard
        published at that timestamp, except the first retained row,
        which always opens a group (its predecessor's noise is outside
        the span).  ``capacity`` defaults to the first store's.
        """
        stores = list(stores)
        if not stores:
            raise InvalidParameterError("cannot merge zero stores")
        users = [int(u) for u in shard_users]
        if len(users) != len(stores):
            raise InvalidParameterError(
                f"{len(stores)} stores but {len(users)} shard populations"
            )
        if any(u <= 0 for u in users):
            raise InvalidParameterError("shard populations must be positive")
        d = stores[0].domain_size
        first = stores[0]
        for store in stores[1:]:
            if store.domain_size != d:
                raise InvalidParameterError(
                    f"stores mix domain sizes {d} and {store.domain_size}"
                )
            if (
                store._next_t != first._next_t
                or store.oldest_t != first.oldest_t
            ):
                raise InvalidParameterError(
                    "shard stores are not aligned: all shards must have "
                    "ingested the same timestamps with the same retention "
                    f"(got spans [{first.oldest_t}, {first._next_t}) and "
                    f"[{store.oldest_t}, {store._next_t}))"
                )
        total = sum(users)
        weights = [u / total for u in users]
        if capacity is _INHERIT:
            capacity = first.capacity
        merged = cls(d, capacity=capacity)
        if first.oldest_t is None:
            merged._next_t = first._next_t
            merged._evicted = first._evicted
            return merged
        start = first.oldest_t
        merged._next_t = start
        merged._evicted = start
        for t in range(start, first._next_t):
            release, variance, strategy = merge_release_rows(
                [store._slot(t).release for store in stores],
                [store._slot(t).variance for store in stores],
                [store._slot(t).strategy for store in stores],
                weights,
            )
            merged.append(
                t,
                release,
                variance,
                strategy,
                # The first retained row opens a group unconditionally:
                # whether its noise continues an earlier publication is
                # unknowable from the retained span.
                fresh_publication=(t == start) or strategy == "publish",
            )
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._slots)

    @property
    def latest_t(self) -> Optional[int]:
        """Most recent retained timestamp (``None`` if empty)."""
        return self._slots[-1].t if self._slots else None

    @property
    def oldest_t(self) -> Optional[int]:
        """Oldest retained timestamp (``None`` if empty)."""
        return self._slots[0].t if self._slots else None

    @property
    def evicted(self) -> int:
        """Number of timestamps dropped off the ring so far."""
        return self._evicted

    @property
    def publication_count(self) -> int:
        """Fresh publications seen over the whole stream (not just retained)."""
        return self._publications

    # ------------------------------------------------------------------
    # Slot access
    # ------------------------------------------------------------------
    def _slot(self, t: int) -> _Slot:
        if not isinstance(t, (int, np.integer)):
            raise InvalidParameterError(f"timestamp must be an int, got {t!r}")
        t = int(t)
        if t < 0 or t >= self._next_t:
            raise InvalidParameterError(
                f"timestamp {t} outside the observed range "
                f"[0, {self._next_t})"
            )
        oldest = self.oldest_t
        if oldest is None or t < oldest:
            raise EvictedSpanError(
                f"timestamp {t} was evicted from the release ring "
                f"(oldest retained: {oldest})",
                oldest=oldest,
            )
        return self._slots[t - oldest]

    def release_at(self, t: int) -> np.ndarray:
        """The released histogram ``r_t`` (a copy)."""
        return self._slot(t).release.copy()

    def variance_at(self, t: int) -> float:
        """Mean per-cell estimation variance of the release at ``t``."""
        return self._slot(t).variance

    def strategy_at(self, t: int) -> str:
        """``publish`` / ``approximate`` / ``nullified`` at ``t``."""
        return self._slot(t).strategy

    def publication_id_at(self, t: int) -> int:
        """Correlation group of ``t``'s release (shared by re-releases)."""
        return self._slot(t).publication_id

    def subset_sum(self, t: int, items) -> float:
        """Sum of the released cells ``items`` at ``t`` — one slot fetch.

        Fused form of reading ``release_at(t)[item]`` once per item:
        the slot is resolved once and the cells are accumulated
        *sequentially in the given order*, so the result is
        byte-identical to a caller summing per-item point reads (numpy
        slice ``.sum()`` would use pairwise summation and round
        differently).  Items are validated against the domain with the
        same error a per-item read would raise.
        """
        release = self._slot(t).release
        total = 0.0
        for item in items:
            if not isinstance(item, (int, np.integer)):
                raise InvalidParameterError(
                    f"item must be an int, got {item!r}"
                )
            item = int(item)
            if not 0 <= item < self.domain_size:
                raise InvalidParameterError(
                    f"item {item} outside the domain "
                    f"[0, {self.domain_size})"
                )
            total += float(release[item])
        return total

    # ------------------------------------------------------------------
    # Span access
    # ------------------------------------------------------------------
    def _check_span(self, t0: int, t1: int) -> Tuple[int, int]:
        if not (
            isinstance(t0, (int, np.integer))
            and isinstance(t1, (int, np.integer))
        ):
            raise InvalidParameterError(
                f"span bounds must be ints, got ({t0!r}, {t1!r})"
            )
        t0, t1 = int(t0), int(t1)
        if t0 > t1:
            raise InvalidParameterError(
                f"span must satisfy t0 <= t1, got [{t0}, {t1}]"
            )
        self._slot(t0)  # raises EvictedSpanError / range errors
        self._slot(t1)
        return t0, t1

    def _iter_span(self, t0: int, t1: int) -> Iterator[_Slot]:
        """Slots for a checked span, one O(span) pass (no per-t indexing —
        ``deque[i]`` costs O(distance-from-end), which would make long
        spans quadratic)."""
        oldest = self.oldest_t
        return islice(self._slots, t0 - oldest, t1 - oldest + 1)

    def window_sum(self, t0: int, t1: int) -> np.ndarray:
        """``Σ_{t0 <= t <= t1} r_t`` via prefix sums — O(d), any span length."""
        t0, t1 = self._check_span(t0, t1)
        first = self._slot(t0)
        last = self._slot(t1)
        return last.cum_release - first.cum_release + first.release

    def span_releases(self, t0: int, t1: int) -> np.ndarray:
        """The ``(t1 - t0 + 1, d)`` release block (copies, retained only)."""
        t0, t1 = self._check_span(t0, t1)
        return np.stack([slot.release for slot in self._iter_span(t0, t1)])

    def span_variances(self, t0: int, t1: int) -> np.ndarray:
        """Per-timestamp variances over the span, one O(span) pass."""
        t0, t1 = self._check_span(t0, t1)
        return np.array(
            [slot.variance for slot in self._iter_span(t0, t1)]
        )

    def span_publication_groups(
        self, t0: int, t1: int
    ) -> List[Tuple[int, int, float]]:
        """``(publication_id, n_timestamps, variance)`` per group in span.

        Re-released timestamps repeat the same noisy histogram, so the
        span decomposes into runs sharing one publication's noise.  The
        query engine turns this into the exact correlated variance
        ``Σ_groups n² · var`` of a span sum.  One O(span-length) scan;
        the group count is bounded by the publication count, which the
        adaptive mechanisms keep low by design.
        """
        t0, t1 = self._check_span(t0, t1)
        groups: List[Tuple[int, int, float]] = []
        for slot in self._iter_span(t0, t1):
            if groups and groups[-1][0] == slot.publication_id:
                pid, count, var = groups[-1]
                groups[-1] = (pid, count + 1, var)
            else:
                groups.append((slot.publication_id, 1, slot.variance))
        return groups
