"""Mean estimation over infinite streams with w-event LDP.

Applies the paper's population-division framework to the *mean* query
(footnote 2): each user holds a bounded numeric value per timestamp; the
server releases an estimated population mean at every timestamp under
``w``-event ε-LDP.

Two methods mirror the histogram mechanisms:

* :class:`MeanPopulationUniform` (analogue of LPU) — disjoint groups of
  ``N/w`` users report each timestamp with the full budget;
* :class:`MeanPopulationAbsorption` (analogue of LPA) — M1 estimates the
  squared deviation of the current mean from the last release with a
  bias-corrected estimator (the numeric twin of Theorem 5.2); M2 absorbs
  unused groups and publishes only when the deviation beats the
  closed-form publication error.

Privacy follows the same parallel-composition argument as LPU/LPA: every
user reports at most once per window with an ε-LDP numeric mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..engine.population import UserPool
from ..exceptions import InvalidParameterError, StreamAccessError
from ..rng import SeedLike, ensure_rng
from .numeric import get_numeric_mechanism


class NumericStream:
    """A materialised numeric stream: values in [-1, 1], shape (T, N)."""

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise InvalidParameterError("values must be (T, n_users)")
        if values.size and (values.min() < -1.0 or values.max() > 1.0):
            raise InvalidParameterError("values must lie in [-1, 1]")
        self._values = values

    @property
    def n_users(self) -> int:
        return int(self._values.shape[1])

    @property
    def horizon(self) -> int:
        return int(self._values.shape[0])

    def values(self, t: int) -> np.ndarray:
        if not 0 <= t < self.horizon:
            raise StreamAccessError(f"timestamp {t} outside horizon")
        return self._values[t]

    def true_means(self) -> np.ndarray:
        """True population mean at every timestamp, shape (T,)."""
        return self._values.mean(axis=1)


def make_sine_numeric_stream(
    n_users: int,
    horizon: int,
    amplitude: float = 0.3,
    period: float = 100.0,
    noise_std: float = 0.1,
    seed: SeedLike = None,
) -> NumericStream:
    """Synthetic numeric stream: per-user noise around a drifting mean."""
    rng = ensure_rng(seed)
    t = np.arange(horizon, dtype=np.float64)
    mean = amplitude * np.sin(2.0 * np.pi * t / period)
    values = mean[:, None] + rng.normal(0.0, noise_std, size=(horizon, n_users))
    return NumericStream(np.clip(values, -1.0, 1.0))


@dataclass
class MeanStepRecord:
    """Per-timestamp record of a mean-release session."""

    t: int
    release: float
    strategy: str
    reporters: int = 0


@dataclass
class MeanSessionResult:
    """Output of a mean-release session."""

    mechanism: str
    epsilon: float
    window: int
    releases: np.ndarray
    true_means: np.ndarray
    records: List[MeanStepRecord] = field(default_factory=list)
    total_reports: int = 0

    @property
    def mse(self) -> float:
        diff = self.releases - self.true_means
        return float(np.mean(diff * diff))

    @property
    def cfpu(self) -> float:
        n = self.records[0].reporters if self.records else 0
        horizon = self.releases.shape[0]
        return self.total_reports / max(1, horizon) / max(1, self._n_users)

    _n_users: int = 0


class MeanPopulationUniform:
    """Mean-query analogue of LPU: round-robin groups, full budget."""

    name = "MPU"

    def __init__(self, numeric_mechanism="hybrid"):
        self.numeric = get_numeric_mechanism(numeric_mechanism)

    def run(
        self,
        stream: NumericStream,
        epsilon: float,
        window: int,
        seed: SeedLike = None,
    ) -> MeanSessionResult:
        if epsilon <= 0 or window <= 0:
            raise InvalidParameterError("epsilon and window must be positive")
        rng = ensure_rng(seed)
        groups = [
            g.astype(np.int64)
            for g in np.array_split(rng.permutation(stream.n_users), window)
        ]
        releases = np.empty(stream.horizon)
        records = []
        total = 0
        for t in range(stream.horizon):
            group = groups[t % window]
            reports = self.numeric.perturb(
                stream.values(t)[group], epsilon, rng=rng
            )
            releases[t] = self.numeric.estimate_mean(reports)
            total += group.size
            records.append(
                MeanStepRecord(
                    t=t, release=releases[t], strategy="publish",
                    reporters=group.size,
                )
            )
        result = MeanSessionResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_means=stream.true_means(),
            records=records,
            total_reports=total,
        )
        result._n_users = stream.n_users
        return result


class MeanPopulationAbsorption:
    """Mean-query analogue of LPA: adaptive absorb-and-nullify groups."""

    name = "MPA"

    def __init__(self, numeric_mechanism="hybrid"):
        self.numeric = get_numeric_mechanism(numeric_mechanism)

    def run(
        self,
        stream: NumericStream,
        epsilon: float,
        window: int,
        seed: SeedLike = None,
    ) -> MeanSessionResult:
        if epsilon <= 0 or window <= 0:
            raise InvalidParameterError("epsilon and window must be positive")
        n = stream.n_users
        m1_size = n // (2 * window)
        if m1_size < 1:
            raise InvalidParameterError("need N >= 2w users for MPA")
        rng = ensure_rng(seed)
        pool = UserPool(n, seed=rng)
        history: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        empty = np.empty(0, dtype=np.int64)

        releases = np.empty(stream.horizon)
        records: List[MeanStepRecord] = []
        last_release = 0.0
        last_pub_t = -1
        last_pub_size = 0
        total = 0

        for t in range(stream.horizon):
            # M1: deviation estimation with a fresh group, full budget.
            users_m1 = pool.sample(m1_size)
            reports = self.numeric.perturb(
                stream.values(t)[users_m1], epsilon, rng=rng
            )
            total += users_m1.size
            est = self.numeric.estimate_mean(reports)
            # Bias-corrected squared deviation (numeric Theorem 5.2).
            dis = (est - last_release) ** 2 - self.numeric.variance(
                epsilon, users_m1.size
            )

            users_m2 = empty
            to_nullify = last_pub_size / m1_size - 1.0
            if t - last_pub_t <= to_nullify:
                strategy = "nullified"
            else:
                absorbable = t - (last_pub_t + to_nullify)
                n_potential = int(m1_size * min(absorbable, float(window)))
                err = (
                    self.numeric.variance(epsilon, n_potential)
                    if n_potential >= 1
                    else math.inf
                )
                if dis > err:
                    users_m2 = pool.sample(n_potential)
                    reports = self.numeric.perturb(
                        stream.values(t)[users_m2], epsilon, rng=rng
                    )
                    total += users_m2.size
                    last_release = self.numeric.estimate_mean(reports)
                    last_pub_t = t
                    last_pub_size = n_potential
                    strategy = "publish"
                else:
                    strategy = "approximate"

            releases[t] = last_release
            records.append(
                MeanStepRecord(
                    t=t,
                    release=last_release,
                    strategy=strategy,
                    reporters=users_m1.size + users_m2.size,
                )
            )
            history[t] = (users_m1, users_m2)
            expired = t - window + 1
            if expired >= 0:
                m1_old, m2_old = history.pop(expired)
                pool.recycle(m1_old)
                pool.recycle(m2_old)

        result = MeanSessionResult(
            mechanism=self.name,
            epsilon=float(epsilon),
            window=int(window),
            releases=releases,
            true_means=stream.true_means(),
            records=records,
            total_reports=total,
        )
        result._n_users = stream.n_users
        return result
