"""Related-work baselines from the paper's Table 1 (LDP row)."""

from .thresh import THRESH

__all__ = ["THRESH"]
