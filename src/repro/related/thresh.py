"""THRESH — event-level LDP for evolving data (Joseph et al., NeurIPS 2018).

The related-work baseline on the event-level row of the paper's Table 1.
THRESH maintains a global estimate of a population statistic and only
spends privacy budget at *global update* timestamps: at every timestamp a
small rotating group of users votes (through randomized response) on
whether the current global estimate looks stale; when the debiased vote
share crosses a threshold the server triggers a fresh full-budget
collection from a new group.

This implementation adapts THRESH to the library's histogram streams:

* voters compare their *own current value's* consistency with the global
  estimate — concretely, a voter reports (via GRR on their value) and the
  server compares the voter-group estimate against the global one, which
  matches THRESH's server-side aggregation of noisy local checks;
* voter and update groups are drawn from a recycled pool, so the adapted
  mechanism *also* satisfies ``w``-event LDP (each user reports at most
  once per window with the full budget) and can run under the engine's
  accountant.  The original guarantee is event-level, which is strictly
  weaker; we provide the stronger bookkeeping for a fair comparison.

THRESH's characteristic weakness is that the update *decision* uses a
fixed noise-multiple threshold and every update uses the same small group,
regardless of how much estimation accuracy is actually available — exactly
what LDP-IDS's private strategy determination (dis vs err) plus
absorption improves on.  Empirically (see tests and the extensions
ablation bench): LPA beats THRESH on the paper's smooth stream families
(LNS, Sin), while on artificial square waves THRESH's frequent small
updates can come out ahead because absorption's nullified timestamps lag
the abrupt level changes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..engine.collector import TimestepContext
from ..engine.population import UserPool
from ..engine.records import (
    STRATEGY_APPROXIMATE,
    STRATEGY_PUBLISH,
    StepRecord,
)
from ..exceptions import InvalidParameterError
from ..mechanisms.base import StreamMechanism, register_mechanism

_EMPTY = np.empty(0, dtype=np.int64)


@register_mechanism
class THRESH(StreamMechanism):
    """THRESH adapted to ``w``-event LDP histogram streams.

    Parameters
    ----------
    vote_threshold_sigmas:
        Global update triggers when the L2 distance between the voter
        estimate and the global estimate exceeds this many standard
        deviations of the voter estimate's noise.  The fixed multiplier is
        THRESH's characteristic design (contrast with LDP-IDS's dis-vs-err
        comparison, which adapts to the *available* publication accuracy).
    """

    name = "THRESH"
    adaptive = True
    framework = "population"

    def __init__(self, vote_threshold_sigmas: float = 2.0):
        super().__init__()
        if vote_threshold_sigmas <= 0:
            raise InvalidParameterError("vote_threshold_sigmas must be positive")
        self.vote_threshold_sigmas = float(vote_threshold_sigmas)

    def _setup(self) -> None:
        self._voter_size = self.n_users // (2 * self.window)
        self._update_size = self.n_users // (2 * self.window)
        if self._voter_size < 1:
            raise InvalidParameterError(
                f"THRESH needs N >= 2w users (N={self.n_users}, w={self.window})"
            )
        self._pool = UserPool(self.n_users, seed=self.rng)
        self._history: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def step(self, ctx: TimestepContext) -> StepRecord:
        # Voting round: a fresh rotating group reports with full budget.
        voters = self._pool.sample(self._voter_size)
        voter_estimate = ctx.collect(self.epsilon, user_ids=voters)
        distance_sq = float(
            np.mean((voter_estimate.frequencies - self.last_release) ** 2)
        )
        vote_noise = voter_estimate.variance
        stale = distance_sq > (self.vote_threshold_sigmas**2) * vote_noise
        reports = voter_estimate.n_reports

        updaters = _EMPTY
        if stale:
            updaters = self._pool.sample(self._update_size)
            update_estimate = ctx.collect(self.epsilon, user_ids=updaters)
            self.last_release = update_estimate.frequencies
            reports += update_estimate.n_reports
            record = StepRecord(
                t=ctx.t,
                release=update_estimate.frequencies,
                strategy=STRATEGY_PUBLISH,
                publication_epsilon=self.epsilon,
                publication_users=update_estimate.n_reports,
                dissimilarity_users=voter_estimate.n_reports,
                reports=reports,
                dis=distance_sq,
                err=vote_noise,
            )
        else:
            record = StepRecord(
                t=ctx.t,
                release=self.last_release,
                strategy=STRATEGY_APPROXIMATE,
                dissimilarity_users=voter_estimate.n_reports,
                reports=reports,
                dis=distance_sq,
                err=vote_noise,
            )

        self._history[ctx.t] = (voters, updaters)
        expired = ctx.t - self.window + 1
        if expired >= 0:
            voters_old, updaters_old = self._history.pop(expired)
            self._pool.recycle(voters_old)
            self._pool.recycle(updaters_old)
        return record
