"""Random-number-generation helpers.

Everything stochastic in this library flows through
:class:`numpy.random.Generator` instances so that experiments are exactly
reproducible from a single integer seed.  The helpers here normalise the
"seed or generator" convention used across the public API.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives fresh OS entropy, an ``int`` gives a deterministic
    generator, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def child_rng(seed: SeedLike, *key: Union[int, str]) -> np.random.Generator:
    """Derive a deterministic child generator from ``seed`` and a key path.

    Used by generative stream simulators that must produce the same values
    for the same ``(seed, t)`` regardless of how many other draws happened
    in between.
    """
    material = [k if isinstance(k, int) else _string_to_int(k) for k in key]
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    else:
        base = 0 if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence([base, *material]))


def _string_to_int(text: str) -> int:
    value = 0
    for ch in text.encode("utf-8"):
        value = (value * 257 + ch) % (2**31 - 1)
    return value
