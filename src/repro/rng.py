"""Random-number-generation helpers.

Everything stochastic in this library flows through
:class:`numpy.random.Generator` instances so that experiments are exactly
reproducible from a single integer seed.  The helpers here normalise the
"seed or generator" convention used across the public API and provide the
coordinate-keyed :class:`numpy.random.SeedSequence` derivation that the
parallel experiment engine relies on: a cell's randomness is a pure
function of *what* the cell is (its coordinates), never of *when* or
*where* it runs.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: Values accepted as seed-material keys (strings/ints/floats are hashed
#: into stable non-negative integers; see :func:`seed_material`).
KeyLike = Union[int, float, str]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives fresh OS entropy, an ``int`` or
    :class:`~numpy.random.SeedSequence` gives a deterministic generator,
    and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalise ``seed`` into a :class:`numpy.random.SeedSequence`.

    Integers and ``None`` map the obvious way; a generator is consumed for
    one integer so legacy generator-valued seeds keep working.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**31 - 1)))
    return np.random.SeedSequence(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def seed_material(*keys: KeyLike) -> Tuple[int, ...]:
    """Map a key path onto stable non-negative integers for SeedSequence.

    Strings hash with a fixed polynomial (no ``PYTHONHASHSEED``
    dependence), floats contribute their exact IEEE-754 bit pattern, and
    ints pass through — so the same coordinates always yield the same
    entropy, across processes and interpreter runs.
    """
    material = []
    for key in keys:
        if isinstance(key, bool):  # bool is an int subclass; disambiguate
            material.append(int(key))
        elif isinstance(key, (int, np.integer)):
            material.append(int(key) & (2**64 - 1))
        elif isinstance(key, (float, np.floating)):
            material.append(int(np.float64(key).view(np.uint64)))
        elif isinstance(key, str):
            material.append(_string_to_int(key))
        else:
            raise TypeError(f"unsupported seed-material key: {key!r}")
    return tuple(material)


def derive_seed_sequence(
    seed: SeedLike, *keys: KeyLike
) -> np.random.SeedSequence:
    """Deterministic child SeedSequence from ``seed`` and a key path.

    The result depends only on ``seed`` and ``keys`` — not on any other
    draws — which is what makes experiment cells replayable in isolation
    (the determinism contract of :mod:`repro.experiments.parallel`).
    """
    base = as_seed_sequence(seed)
    entropy = (
        tuple(np.atleast_1d(base.entropy).tolist())
        if base.entropy is not None
        else ()
    )
    # Keep the spawn key so a spawned child never collides with its parent.
    lineage = tuple(int(k) for k in base.spawn_key)
    return np.random.SeedSequence([*entropy, *lineage, *seed_material(*keys)])


def derive_seed(seed: SeedLike, *keys: KeyLike) -> int:
    """Deterministic integer seed from ``seed`` and a key path."""
    return int(derive_seed_sequence(seed, *keys).generate_state(2, np.uint32)[0])


def child_rng(seed: SeedLike, *key: Union[int, str]) -> np.random.Generator:
    """Derive a deterministic child generator from ``seed`` and a key path.

    Used by generative stream simulators that must produce the same values
    for the same ``(seed, t)`` regardless of how many other draws happened
    in between.
    """
    material = [k if isinstance(k, int) else _string_to_int(k) for k in key]
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    else:
        base = 0 if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence([base, *material]))


def capture_rng_state(rng: np.random.Generator) -> dict:
    """Serialize a generator's full bit-generator state (JSON-safe).

    Captures everything the generator needs to continue bit-identically:
    the bit-generator class name, its raw counter state, and the
    buffered half-draw bookkeeping (``has_uint32`` / ``uinteger``) that
    NumPy keeps between 32-bit requests.  The result contains only
    Python ints/strs/lists/dicts, so it survives a JSON round trip
    losslessly (Python ints are arbitrary precision).
    """
    return _jsonify_state(dict(rng.bit_generator.state))


def restore_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Install a state captured by :func:`capture_rng_state`.

    The generator must wrap the same bit-generator class the state was
    captured from; mismatches raise instead of silently reseeding.
    """
    expected = rng.bit_generator.state.get("bit_generator")
    found = state.get("bit_generator")
    if found != expected:
        from .exceptions import CheckpointError

        raise CheckpointError(
            f"checkpoint holds {found!r} bit-generator state but the "
            f"session generator is {expected!r}"
        )
    rng.bit_generator.state = state


def _jsonify_state(value):
    """Recursively coerce numpy scalars/arrays in a state dict to
    plain Python so ``json.dumps`` round-trips it exactly."""
    if isinstance(value, dict):
        return {str(k): _jsonify_state(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return [_jsonify_state(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify_state(v) for v in value]
    if isinstance(value, (np.integer, np.bool_)):
        return int(value)
    return value


def _string_to_int(text: str) -> int:
    value = 0
    for ch in text.encode("utf-8"):
        value = (value * 257 + ch) % (2**31 - 1)
    return value
