"""Sharded serving tier: many worker sessions, one query surface.

``repro serve`` was a single-process JSONL loop; this package is the
scale-out refactor the ROADMAP calls for.  The user population is
partitioned across shards by a deterministic hash
(:class:`ShardRouter`); each shard runs its own
:class:`~repro.engine.session.StreamSession` over its sub-population and
publishes into its own :class:`~repro.query.ReleaseStore`; per-timestamp
shard rows merge into one population-level store
(:func:`repro.query.merge_release_rows`) that answers every query.

Two execution surfaces share that exact merge arithmetic:

* :class:`ShardedSession` — the *serial reference*: all shards advanced
  in-process, in shard order.  This is the semantics oracle the
  conformance suite (``tests/serving/``) diffs everything against.
* :class:`ShardServer` (``repro serve --shards N``) — the production
  surface: an asyncio socket front-end batching concurrent ingest lines
  into ``observe_many`` chunks, one OS process per shard.  Bit-identical
  to :class:`ShardedSession` at every shard count because batching
  boundaries provably cannot change results (``observe_many`` is
  chunk-invariant) and the merge runs in fixed shard order.

The contract — which parts are bit-exact, which are
variance-matched — is written down in ``docs/SERVING.md``.
"""

from .router import ShardRouter, shard_seed
from .server import ServeConfig, ShardServer, run_server
from .sharded import ShardedSession

__all__ = [
    "ShardRouter",
    "ShardedSession",
    "ShardServer",
    "ServeConfig",
    "run_server",
    "shard_seed",
]
