"""Deterministic user-to-shard routing.

Users are assigned to shards by a fixed integer hash of their user id —
not round-robin, not load-balanced — so the assignment is a pure
function of ``(user_id, num_shards)``: stable across processes, runs and
machines, independent of ``PYTHONHASHSEED``, and identical between the
serial :class:`~repro.serving.sharded.ShardedSession` reference and the
process-parallel server.  Resharding (changing ``num_shards``) reshuffles
users and therefore cannot preserve per-shard state; the serving tier
refuses to resume a state directory under a different shard count.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, derive_seed


def splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (vectorized, wrapping)."""
    z = (np.asarray(x, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15))
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def shard_seed(seed: SeedLike, shard: int, num_shards: int) -> SeedLike:
    """Per-shard session seed derived from the master seed.

    With one shard the master seed passes through *unchanged*, which is
    what makes a 1-shard deployment bit-identical to the solo
    ``repro serve`` process (same generator, same draws).  With more
    shards each gets an independent deterministic child seed keyed by
    ``(shard, num_shards)``.
    """
    if num_shards == 1:
        return seed
    return derive_seed(seed, "serving-shard", int(shard), int(num_shards))


class ShardRouter:
    """Partition ``n_users`` users across ``num_shards`` shards by hash.

    ``members[s]`` is the ascending array of user ids owned by shard
    ``s``; the arrays are disjoint and cover ``range(n_users)``.  With
    ``num_shards=1`` the single shard owns every user in order (the
    identity layout, preserving solo bit-identity).
    """

    def __init__(self, n_users: int, num_shards: int):
        n_users = int(n_users)
        num_shards = int(num_shards)
        if n_users < 1:
            raise InvalidParameterError(
                f"n_users must be positive, got {n_users}"
            )
        if num_shards < 1:
            raise InvalidParameterError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.n_users = n_users
        self.num_shards = num_shards
        if num_shards == 1:
            assignment = np.zeros(n_users, dtype=np.int64)
        else:
            assignment = (
                splitmix64(np.arange(n_users, dtype=np.uint64))
                % np.uint64(num_shards)
            ).astype(np.int64)
        self.assignment = assignment
        self.members: List[np.ndarray] = [
            np.flatnonzero(assignment == s) for s in range(num_shards)
        ]
        self.counts = np.array([m.size for m in self.members], dtype=np.int64)
        if int(self.counts.min()) == 0:
            empty = [s for s, m in enumerate(self.members) if m.size == 0]
            raise InvalidParameterError(
                f"shard(s) {empty} own no users for n_users={n_users}, "
                f"num_shards={num_shards}; use fewer shards (every shard "
                f"session needs a non-empty population)"
            )
        self.weights = self.counts / n_users

    # ------------------------------------------------------------------
    def shard_of(self, user_id: int) -> int:
        """The shard owning one user id."""
        user_id = int(user_id)
        if not 0 <= user_id < self.n_users:
            raise InvalidParameterError(
                f"user id {user_id} outside [0, {self.n_users})"
            )
        return int(self.assignment[user_id])

    def split(self, values: np.ndarray) -> List[np.ndarray]:
        """One timestamp's ``(n_users,)`` snapshot -> per-shard snapshots."""
        values = np.asarray(values)
        if values.ndim != 1 or values.shape[0] != self.n_users:
            raise InvalidParameterError(
                f"snapshot must be a ({self.n_users},) value array, got "
                f"shape {values.shape}"
            )
        return [values[m] for m in self.members]

    def split_block(self, block: np.ndarray) -> List[np.ndarray]:
        """An ``(m, n_users)`` snapshot block -> per-shard ``(m, n_s)``."""
        block = np.asarray(block)
        if block.ndim != 2 or block.shape[1] != self.n_users:
            raise InvalidParameterError(
                f"snapshot block must have shape (m, {self.n_users}), got "
                f"{block.shape}"
            )
        return [block[:, m] for m in self.members]
