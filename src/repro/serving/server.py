"""Asyncio sharded serving front: sockets in, merged answers out.

``repro serve --shards K`` runs this server: an asyncio TCP front-end on
localhost accepting line-delimited JSON from any number of concurrent
clients, backed by ``K`` shard worker processes
(:mod:`repro.serving.worker`), each owning one sub-population's
:class:`~repro.engine.session.StreamSession`.

**Ordering.**  All client lines funnel through one dispatcher coroutine,
so the server imposes a single global serialization: timestamps are
assigned in arrival order, queries answer against exactly the ingests
acknowledged before them, and the whole execution is equivalent to
feeding the same line sequence to the serial
:class:`~repro.serving.sharded.ShardedSession` — which is the property
the conformance suite checks bit-for-bit.

**Batching.**  Ingest lines buffer until ``chunk`` of them are pending,
the queue drains empty, or a query arrives; the batch then flushes to
all shards *in parallel* (one ``observe_many`` per shard) and the merged
rows are acknowledged per line.  Batch boundaries provably cannot change
any result (``observe_many`` is chunk-invariant and the merge is per
timestamp), so dynamic batching is pure throughput.

**Durability.**  With ``state_dir`` every shard keeps its own WAL +
checkpoints under ``<dir>/shard-XX/`` and the front atomically writes
``front.json`` (merged store snapshot + watermark) *after* all shard
checkpoint acks — so ``W_front <= W_shard`` always holds.  On restart
the front resumes its merged store from ``front.json``, rebuilds the
``[W_front, min W_shard)`` gap from the shards' committed WAL rows, and
skips re-sent timestamps per shard until every shard is live again.
Resuming under a different ``--shards`` is refused
(:class:`~repro.exceptions.CheckpointError`): resharding reshuffles the
user partition and no shard's state remains valid.

The wire protocol and the exactness contract are specified in
``docs/SERVING.md``.
"""

from __future__ import annotations

import asyncio
import base64
import json
import multiprocessing
import os
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import (
    CheckpointError,
    InvalidParameterError,
    ReproError,
    ServingError,
)
from ..query.dsl import QUERY_OPS, parse_expr, query_from_request
from ..query.engine import QueryEngine
from ..query.planner import QueryPlanner
from ..query.standing import StandingRegistry
from ..query.store import ReleaseStore, merge_release_rows
from .router import ShardRouter, shard_seed
from .worker import shard_worker_main

FRONT_FILE = "front.json"
_FRONT_FORMAT = "repro-front"
FRONT_VERSION = 1

_B64_DTYPES = {"u1": np.uint8, "u2": np.uint16, "u4": np.uint32}

#: Front-checkpoint config keys a resume must match exactly.  A
#: ``num_shards`` mismatch is the reshard-refusal path: the hash
#: partition changes with the shard count, so no shard's session state
#: describes the users it would now own.
_CONFIG_KEYS = (
    "mechanism",
    "oracle",
    "postprocess",
    "epsilon",
    "window",
    "n_users",
    "domain_size",
    "num_shards",
    "capacity",
    "fast",
)


@dataclass
class ServeConfig:
    """Configuration of a sharded serving tier (CLI ``serve --shards``)."""

    mechanism: str
    n_users: int
    domain_size: int
    epsilon: float
    window: int
    num_shards: int = 1
    oracle: str = "grr"
    seed: Optional[int] = None
    postprocess: str = "none"
    capacity: Optional[int] = 256
    chunk: int = 1
    confidence: float = 0.95
    state_dir: Optional[str] = None
    checkpoint_every: int = 1
    host: str = "127.0.0.1"
    port: int = 0
    enforce_privacy: bool = True
    fast: bool = True

    def __post_init__(self):
        from ..freq_oracles import get_oracle
        from ..freq_oracles.postprocess import get_postprocessor
        from ..mechanisms import get_mechanism

        # Normalise names eagerly so workers, checkpoints and resume
        # validation all see the same canonical strings.
        self.mechanism = get_mechanism(self.mechanism).name
        self.oracle = get_oracle(self.oracle).name
        get_postprocessor(self.postprocess)
        self.n_users = int(self.n_users)
        self.domain_size = int(self.domain_size)
        self.epsilon = float(self.epsilon)
        self.window = int(self.window)
        self.num_shards = int(self.num_shards)
        self.chunk = int(self.chunk)
        if self.n_users < 1:
            raise InvalidParameterError(
                f"n_users must be positive, got {self.n_users}"
            )
        if self.domain_size < 2:
            raise InvalidParameterError(
                f"domain_size must be >= 2, got {self.domain_size}"
            )
        if self.epsilon <= 0:
            raise InvalidParameterError(
                f"epsilon must be positive, got {self.epsilon}"
            )
        if self.window < 1:
            raise InvalidParameterError(
                f"window must be >= 1, got {self.window}"
            )
        if self.chunk < 1:
            raise InvalidParameterError(
                f"chunk must be >= 1, got {self.chunk}"
            )
        if self.capacity is not None:
            self.capacity = int(self.capacity)
            if self.capacity < self.chunk:
                raise InvalidParameterError(
                    f"capacity {self.capacity} must cover a whole ingest "
                    f"chunk ({self.chunk}): merged rows are read back from "
                    f"the shard stores after each flush"
                )
        if not 0.0 < self.confidence < 1.0:
            raise InvalidParameterError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.checkpoint_every < 1:
            raise InvalidParameterError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )

    @property
    def retain(self) -> int:
        """Stream retention ring: must hold a whole pushed-but-unobserved
        chunk, same rule as the solo server."""
        return max(4, self.chunk)

    def recorded(self) -> dict:
        """The config keys persisted in (and validated against) front.json."""
        return {
            "mechanism": self.mechanism,
            "oracle": self.oracle,
            "postprocess": self.postprocess,
            "epsilon": self.epsilon,
            "window": self.window,
            "n_users": self.n_users,
            "domain_size": self.domain_size,
            "num_shards": self.num_shards,
            "capacity": self.capacity,
            "fast": self.fast,
        }


class _WorkerHandle:
    """One shard worker process + its command pipe (front side)."""

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn

    def call(self, *message):
        """Send one command, block for its reply (run in an executor)."""
        try:
            self.conn.send(message)
            reply = self.conn.recv()
        except (EOFError, OSError) as error:
            raise ServingError(
                f"shard {self.index} worker died mid-command "
                f"({message[0]!r})"
            ) from error
        if reply[0] == "error":
            raise ServingError(f"shard {self.index}: {reply[1]}")
        return reply


class ShardServer:
    """The sharded serving tier: workers, merged store, asyncio front."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.router = ShardRouter(config.n_users, config.num_shards)
        self.merged = ReleaseStore(config.domain_size, capacity=config.capacity)
        self.engine = QueryEngine(self.merged, confidence=config.confidence)
        self.planner = QueryPlanner(self.engine)
        self.standing = StandingRegistry(self.planner)
        self.workers: List[_WorkerHandle] = []
        self.worker_next: List[int] = []
        self.replay_cache: List[Dict[int, dict]] = []
        self.state_root = (
            None if config.state_dir is None else Path(config.state_dir)
        )
        self._pool = ThreadPoolExecutor(
            max_workers=config.num_shards,
            thread_name_prefix="shard-io",
        )
        self._buffer: list = []
        self._queue: Optional[asyncio.Queue] = None
        self._flushed_chunks = 0
        self._skip_remaining = 0
        self._started = False

    # ------------------------------------------------------------------
    @property
    def watermark(self) -> int:
        """Timestamps merged into the population store so far."""
        return self.merged._next_t

    # ------------------------------------------------------------------
    # Bootstrap (blocking; runs before the event loop)
    # ------------------------------------------------------------------
    def start(self) -> "ShardServer":
        """Resume the front store, spawn workers, rebuild the crash gap."""
        if self._started:
            raise InvalidParameterError("server already started")
        if self.state_root is not None:
            self.state_root.mkdir(parents=True, exist_ok=True)
            self._load_front()
        front_mark = self.watermark
        ctx = multiprocessing.get_context("spawn")
        config = self.config
        for s in range(config.num_shards):
            worker_config = {
                "mechanism": config.mechanism,
                "oracle": config.oracle,
                "postprocess": config.postprocess,
                "epsilon": config.epsilon,
                "window": config.window,
                "n_users": int(self.router.counts[s]),
                "domain_size": config.domain_size,
                "capacity": config.capacity,
                "retain": config.retain,
                "seed": shard_seed(config.seed, s, config.num_shards),
                "enforce_privacy": config.enforce_privacy,
                "fast": config.fast,
                "state_dir": (
                    None
                    if self.state_root is None
                    else str(self.state_root / f"shard-{s:02d}")
                ),
                "replay_from": front_mark,
            }
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, worker_config),
                daemon=True,
            )
            process.start()
            # The front's copy must close so a dead front EOFs the worker.
            child_conn.close()
            self.workers.append(_WorkerHandle(s, process, parent_conn))
        for handle in self.workers:
            try:
                reply = handle.conn.recv()
            except (EOFError, OSError) as error:
                raise ServingError(
                    f"shard {handle.index} worker died during bootstrap"
                ) from error
            if reply[0] == "error":
                message = str(reply[1])
                if message.startswith("CheckpointError:"):
                    raise CheckpointError(
                        f"shard {handle.index}: {message}"
                    )
                raise ServingError(f"shard {handle.index}: {message}")
            _, shard_mark, wal_rows = reply
            if shard_mark < front_mark:
                raise CheckpointError(
                    f"shard {handle.index} is behind the front checkpoint "
                    f"(shard watermark {shard_mark} < front watermark "
                    f"{front_mark}); the state dir mixes two runs"
                )
            self.worker_next.append(int(shard_mark))
            self.replay_cache.append({int(r["t"]): r for r in wal_rows})
        # Rebuild merged rows the crash cut off: every shard has durable
        # rows for [front_mark, min shard watermark).
        catch_up_to = min(self.worker_next)
        for t in range(front_mark, catch_up_to):
            self.merged.append(t, *self._merged_row(t, {}))
        self._skip_remaining = self.watermark
        self._started = True
        return self

    def _merged_row(self, t: int, fresh: Dict[int, tuple]):
        """Merge timestamp ``t`` across shards from live replies + caches.

        ``fresh[s]`` is shard ``s``'s just-computed ``(release, variance,
        strategy)``; shards absent from it were ahead of ``t`` and serve
        the row from their replay cache (their WAL already had it).
        """
        releases, variances, strategies = [], [], []
        for s in range(self.config.num_shards):
            if s in fresh:
                release, variance, strategy = fresh[s]
            else:
                row = self.replay_cache[s].pop(t, None)
                if row is None or "variance" not in row:
                    raise CheckpointError(
                        f"shard {s}'s write-ahead log is missing released "
                        f"row t={t}; cannot rebuild the merged store"
                    )
                release = np.asarray(row["release"], dtype=np.float64)
                variance = float(row["variance"])
                strategy = str(row["strategy"])
            releases.append(release)
            variances.append(variance)
            strategies.append(strategy)
        return merge_release_rows(
            releases, variances, strategies, self.router.weights
        )

    # ------------------------------------------------------------------
    # front.json
    # ------------------------------------------------------------------
    def _load_front(self) -> None:
        path = self.state_root / FRONT_FILE
        if not path.exists():
            return
        from ..persist.codec import decode

        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"{path} is not valid JSON: {error}"
            ) from error
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _FRONT_FORMAT
        ):
            raise CheckpointError(f"{path} is not a front checkpoint")
        if payload.get("version") != FRONT_VERSION:
            raise CheckpointError(
                f"unsupported front checkpoint version "
                f"{payload.get('version')!r} (this build reads "
                f"{FRONT_VERSION})"
            )
        recorded = payload.get("config")
        if not isinstance(recorded, dict):
            raise CheckpointError(f"{path} has no 'config' section")
        expect = self.config.recorded()
        mismatches = [
            f"{key} is {recorded.get(key)!r} in the checkpoint but "
            f"{expect[key]!r} now"
            for key in _CONFIG_KEYS
            if recorded.get(key) != expect[key]
        ]
        if mismatches:
            hint = ""
            if recorded.get("num_shards") != expect["num_shards"]:
                hint = (
                    " (resharding a durable serving tier is not supported: "
                    "the user partition is a function of the shard count, "
                    "so per-shard session state cannot be reused)"
                )
            raise CheckpointError(
                "state dir front checkpoint disagrees with the serve "
                "configuration: " + "; ".join(mismatches) + hint
            )
        try:
            self.merged = ReleaseStore.from_state(decode(payload["store"]))
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"corrupt front checkpoint store: {error}"
            ) from error
        if self.merged._next_t != int(payload.get("watermark", -1)):
            raise CheckpointError(
                f"front checkpoint watermark {payload.get('watermark')!r} "
                f"disagrees with its store ({self.merged._next_t})"
            )
        self.engine = QueryEngine(
            self.merged, confidence=self.config.confidence
        )
        # The query surface answers against the resumed store; standing
        # registrations are per-connection and start empty on resume.
        self.planner = QueryPlanner(self.engine)
        self.standing = StandingRegistry(self.planner)

    def _write_front(self) -> None:
        """Atomically persist the merged store + watermark.

        Runs only after every shard's checkpoint ack, so on disk the
        front watermark never exceeds any shard's — the invariant the
        resume path's gap rebuild relies on.
        """
        from ..persist.codec import encode

        payload = {
            "format": _FRONT_FORMAT,
            "version": FRONT_VERSION,
            "config": self.config.recorded(),
            "watermark": self.watermark,
            "store": encode(self.merged.state_dict()),
        }
        path = self.state_root / FRONT_FILE
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------
    def _parse_ingest(self, request: dict) -> np.ndarray:
        """One ingest request -> validated ``(n_users,)`` int64 snapshot."""
        if "b64" in request:
            dtype_tag = request.get("dtype", "u1")
            if dtype_tag not in _B64_DTYPES:
                raise InvalidParameterError(
                    f"ingest dtype must be one of {sorted(_B64_DTYPES)}, "
                    f"got {dtype_tag!r}"
                )
            raw = base64.b64decode(request["b64"], validate=True)
            values = np.frombuffer(
                raw, dtype=_B64_DTYPES[dtype_tag]
            ).astype(np.int64)
        else:
            values = np.asarray(
                [int(v) for v in request["values"]], dtype=np.int64
            )
        if values.shape != (self.config.n_users,):
            raise InvalidParameterError(
                f"ingest snapshot must carry {self.config.n_users} values, "
                f"got {values.shape[0] if values.ndim == 1 else values.shape}"
            )
        if values.size and (
            int(values.min()) < 0
            or int(values.max()) >= self.config.domain_size
        ):
            raise InvalidParameterError(
                f"ingest values outside [0, {self.config.domain_size})"
            )
        return values

    async def _flush(self) -> None:
        """Ingest the buffered snapshots through all shards in parallel."""
        if not self._buffer:
            return
        entries, self._buffer = self._buffer, []
        block = np.stack([values for values, _ in entries])
        m = block.shape[0]
        t0 = self.watermark
        parts = self.router.split_block(block)
        loop = asyncio.get_running_loop()
        futures = {}
        for s, handle in enumerate(self.workers):
            # Per-shard skip: a shard resumed ahead of the merged store
            # already ingested the first rows of this batch; it receives
            # only the suffix it has not seen.
            start_i = max(0, self.worker_next[s] - t0)
            if start_i < m:
                futures[s] = (
                    start_i,
                    loop.run_in_executor(
                        self._pool,
                        handle.call,
                        "ingest",
                        t0 + start_i,
                        parts[s][start_i:],
                    ),
                )
        results: Dict[int, tuple] = {}
        for s, (start_i, future) in futures.items():
            reply = await future
            results[s] = (start_i, reply[1])
        acks = []
        for i in range(m):
            t = t0 + i
            fresh = {}
            for s, (start_i, rows) in results.items():
                if i >= start_i:
                    fresh[s] = rows[i - start_i]
            release, variance, strategy = self._merged_row(t, fresh)
            self.merged.append(t, release, variance, strategy)
            acks.append({"op": "ingest", "t": t, "strategy": strategy})
        for s in range(self.config.num_shards):
            self.worker_next[s] = max(self.worker_next[s], t0 + m)
        self._flushed_chunks += 1
        if (
            self.state_root is not None
            and self._flushed_chunks % self.config.checkpoint_every == 0
        ):
            await self._checkpoint()
        for (_, writer), ack in zip(entries, acks):
            await self._send(writer, ack)
        # Standing queries advance over exactly the rows this flush
        # merged; alerts go to the connection that registered them.
        for standing, event in self.standing.poll():
            if standing.context is not None:
                await self._send(standing.context, event)

    async def _checkpoint(self) -> None:
        """Coordinated checkpoint: all shards first, front.json last."""
        if self.state_root is None:
            raise CheckpointError(
                "the server has no --state-dir to checkpoint into"
            )
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(self._pool, handle.call, "checkpoint")
                for handle in self.workers
            )
        )
        self._write_front()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def _answer(self, request: dict) -> dict:
        """Answer one parsed query against the merged store.

        Every query op lowers through the planner
        (:mod:`repro.query.planner`), so the answer is exactly what the
        equivalent hand-composed ``QueryEngine`` calls produce — the
        four classic verbs keep their legacy reply shapes
        byte-for-byte, and the DSL composites (``filter``/``groupby``/
        ``changepoint``/``threshold``, plus ``{"op": "query"}``
        envelopes carrying ``expr`` text) ride the same path.
        """
        op = request.get("op")
        if op == "summary":
            return await self._summary()
        if op != "query" and op not in QUERY_OPS:
            raise InvalidParameterError(
                f"unknown op {op!r}; expected ingest/"
                + "/".join(QUERY_OPS)
                + "/query/standing/summary/checkpoint/shutdown"
            )
        query = query_from_request(request)
        as_of = {"as_of": self.merged.latest_t}
        return {**self.planner.answer(query), **as_of}

    def _standing_request(self, request: dict, writer) -> dict:
        """Register / unregister / list standing queries.

        The registering connection is the alert sink: every event the
        query emits from later ingest flushes is written to it.
        """
        action = request.get("action")
        if action == "register":
            sid = request.get("id")
            if "expr" in request:
                expr = request["expr"]
                if not isinstance(expr, str):
                    raise InvalidParameterError(
                        f"'expr' must be a string, got {expr!r}"
                    )
                query = parse_expr(expr)
            elif "q" in request:
                query_from = request["q"]
                query = query_from_request(query_from)
            else:
                raise InvalidParameterError(
                    "a standing register needs 'expr' (text syntax) or "
                    "'q' (wire form)"
                )
            standing = self.standing.register(sid, query, context=writer)
            return {"op": "standing", "action": action, **standing.describe()}
        if action == "unregister":
            sid = request.get("id")
            if not isinstance(sid, str):
                raise InvalidParameterError(
                    f"a standing unregister needs a string 'id', got {sid!r}"
                )
            return {
                "op": "standing",
                "action": action,
                "id": sid,
                "removed": self.standing.unregister(sid),
            }
        if action == "list":
            return {
                "op": "standing",
                "action": action,
                "standing": self.standing.describe(),
            }
        raise InvalidParameterError(
            f"unknown standing action {action!r}; expected "
            f"register/unregister/list"
        )

    async def _summary(self) -> dict:
        loop = asyncio.get_running_loop()
        replies = await asyncio.gather(
            *(
                loop.run_in_executor(self._pool, handle.call, "summary")
                for handle in self.workers
            )
        )
        shard_summaries = [reply[1] for reply in replies]
        steps = self.watermark
        total_reports = sum(s["total_reports"] for s in shard_summaries)
        store = self.merged
        return {
            "op": "summary",
            "mechanism": self.config.mechanism,
            "oracle": self.config.oracle,
            "epsilon": self.config.epsilon,
            "window": self.config.window,
            "num_shards": self.config.num_shards,
            "shard_users": [int(c) for c in self.router.counts],
            "steps": steps,
            "publications": store.publication_count,
            "total_reports": total_reports,
            "cfpu": (
                total_reports / (self.config.n_users * steps)
                if steps
                else 0.0
            ),
            "max_window_spend": max(
                s["max_window_spend"] for s in shard_summaries
            ),
            "retained": len(store),
            "oldest_t": store.oldest_t,
            "latest_t": store.latest_t,
            "evicted": store.evicted,
        }

    # ------------------------------------------------------------------
    # Asyncio front
    # ------------------------------------------------------------------
    async def _send(self, writer, payload: dict) -> None:
        try:
            writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away; its acks are moot

    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                await self._queue.put((line, writer))
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            # Loop teardown after shutdown: exit cleanly so Python 3.11's
            # stream-protocol callback doesn't log the cancellation.
            return
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _dispatch(self) -> None:
        """The single serialization point: drain requests, batch, answer."""
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                # Idle: nothing else is pending, so a partial batch
                # flushes now instead of waiting for more arrivals.
                await self._flush()
                item = await self._queue.get()
            line, writer = item
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise InvalidParameterError(
                        "each request must be a JSON object"
                    )
                op = request.get("op")
                if op == "ingest":
                    values = self._parse_ingest(request)
                    if self._skip_remaining > 0:
                        # Replayed feed: this timestamp was merged before
                        # the restart; acknowledge without re-applying.
                        t_skip = self.watermark - self._skip_remaining
                        self._skip_remaining -= 1
                        await self._send(
                            writer,
                            {"op": "ingest", "t": t_skip, "skipped": True},
                        )
                        continue
                    self._buffer.append((values, writer))
                    if len(self._buffer) >= self.config.chunk:
                        await self._flush()
                elif op == "standing":
                    # Registration sees every ingest acked before it:
                    # buffered snapshots flush first, so the watermark
                    # the query anchors at is the one the client saw.
                    await self._flush()
                    await self._send(
                        writer, self._standing_request(request, writer)
                    )
                elif op == "checkpoint":
                    await self._flush()
                    await self._checkpoint()
                    await self._send(
                        writer,
                        {"op": "checkpoint", "watermark": self.watermark},
                    )
                elif op == "shutdown":
                    await self._flush()
                    if self.state_root is not None:
                        await self._checkpoint()
                    await self._send(
                        writer,
                        {"op": "shutdown", "watermark": self.watermark},
                    )
                    return
                else:
                    # Queries answer against everything ingested so far.
                    await self._flush()
                    await self._send(writer, await self._answer(request))
            except ServingError:
                raise  # a lost shard is fatal; the server cannot continue
            except (
                ReproError,
                KeyError,
                ValueError,
                TypeError,
                OverflowError,
            ) as error:
                await self._flush()
                await self._send(
                    writer,
                    {"error": f"{type(error).__name__}: {error}"},
                )

    async def _amain(self, stdout) -> int:
        self._queue = asyncio.Queue()
        server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        port = server.sockets[0].getsockname()[1]
        # The hello line is the service-discovery contract: drivers read
        # it from stdout to find the ephemeral port and the resume
        # watermark (the number of feed lines to expect skipped acks for).
        print(
            json.dumps(
                {
                    "event": "listening",
                    "host": self.config.host,
                    "port": port,
                    "shards": self.config.num_shards,
                    "watermark": self.watermark,
                }
            ),
            file=stdout,
            flush=True,
        )
        try:
            await self._dispatch()
        finally:
            server.close()
            await server.wait_closed()
        return 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers and release the executor (idempotent)."""
        for handle in self.workers:
            try:
                handle.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for handle in self.workers:
            handle.process.join(timeout=5)
            if handle.process.is_alive():
                handle.process.terminate()
            try:
                handle.conn.close()
            except OSError:
                pass
        self.workers = []
        self._pool.shutdown(wait=False)


def run_server(config: ServeConfig, *, stdout=None) -> int:
    """Bootstrap the tier and serve until a ``shutdown`` request.

    Blocking entry point used by ``repro serve --shards``.  Prints the
    hello line (ephemeral port + watermark) to ``stdout`` once listening.
    """
    server = ShardServer(config)
    server.start()
    try:
        return asyncio.run(server._amain(stdout or sys.stdout))
    finally:
        server.close()
