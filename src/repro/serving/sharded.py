"""Serial sharded session: the semantics oracle of the serving tier.

:class:`ShardedSession` runs every shard in one process, in shard order
— no sockets, no worker processes, no batching nondeterminism — so it
*defines* what the sharded deployment must compute.  The asyncio server
(:mod:`repro.serving.server`) is conformance-tested against it
bit-for-bit: both build per-shard sessions from the same
:func:`~repro.serving.router.shard_seed` derivation and merge shard rows
with the same :func:`~repro.query.merge_release_rows` arithmetic in the
same shard order, and ``observe_many`` is chunk-invariant, so how the
server batches concurrent ingest lines cannot change a single float.

With ``num_shards=1`` everything degenerates to the solo path: the one
shard owns all users in order, the master seed passes through unchanged,
and the merged store is bit-identical to a solo
:class:`~repro.engine.session.StreamSession` publishing into a store.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..engine.session import StreamSession
from ..exceptions import InvalidParameterError
from ..query.engine import QueryEngine
from ..query.store import ReleaseStore, merge_release_rows
from ..rng import SeedLike
from ..streams.online import OnlineStream
from .router import ShardRouter, shard_seed


class ShardedSession:
    """N shard sessions over a hash-partitioned population, one store.

    Parameters mirror :class:`~repro.engine.session.StreamSession` where
    they exist there; in addition:

    num_shards:
        Number of population shards (>= 1).
    capacity:
        Ring size of every store — the per-shard stores and the merged
        store (``None`` retains full history).  Bounded capacity bounds
        :meth:`ingest_many` chunk sizes (rows are merged from the shard
        stores after each chunk).
    retain:
        Snapshot ring of each shard's :class:`~repro.streams.OnlineStream`;
        must cover the largest chunk ingested at once.
    """

    def __init__(
        self,
        mechanism,
        *,
        n_users: int,
        domain_size: int,
        epsilon: float,
        window: int,
        num_shards: int = 1,
        oracle="grr",
        seed: SeedLike = None,
        postprocess: str = "none",
        capacity: Optional[int] = 256,
        retain: int = 4,
        confidence: float = 0.95,
        enforce_privacy: bool = True,
        fast: bool = True,
    ):
        self.router = ShardRouter(n_users, num_shards)
        self.n_users = int(n_users)
        self.domain_size = int(domain_size)
        self.num_shards = int(num_shards)
        self.capacity = capacity
        self.retain = int(retain)
        self.streams: List[OnlineStream] = []
        self.stores: List[ReleaseStore] = []
        self.sessions: List[StreamSession] = []
        for s in range(self.num_shards):
            stream = OnlineStream(
                n_users=int(self.router.counts[s]),
                domain_size=self.domain_size,
                retain=self.retain,
            )
            store = ReleaseStore(self.domain_size, capacity=capacity)
            session = StreamSession(
                mechanism,
                stream,
                epsilon=epsilon,
                window=window,
                oracle=oracle,
                seed=shard_seed(seed, s, self.num_shards),
                postprocess=postprocess,
                record_trace=False,
                store=store,
                enforce_privacy=enforce_privacy,
                fast=fast,
            )
            self.streams.append(stream)
            self.stores.append(store)
            self.sessions.append(session)
        self.merged = ReleaseStore(self.domain_size, capacity=capacity)
        self.engine = QueryEngine(self.merged, confidence=confidence)
        self._started = False

    # ------------------------------------------------------------------
    @property
    def steps_observed(self) -> int:
        """Timestamps ingested so far."""
        return self.merged._next_t

    @property
    def total_reports(self) -> int:
        """LDP reports collected across all shards."""
        return sum(session.total_reports for session in self.sessions)

    def start(self) -> "ShardedSession":
        """Start every shard session (in shard order)."""
        if self._started:
            raise InvalidParameterError("sharded session already started")
        for session in self.sessions:
            session.start()
        self._started = True
        return self

    # ------------------------------------------------------------------
    def _check_block(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows)
        if rows.ndim == 1:
            rows = rows[np.newaxis, :]
        if rows.ndim != 2 or rows.shape[1] != self.n_users:
            raise InvalidParameterError(
                f"ingest block must have shape (m, {self.n_users}), got "
                f"{rows.shape}"
            )
        if not np.issubdtype(rows.dtype, np.integer):
            raise InvalidParameterError(
                f"ingest values must be integers, got dtype {rows.dtype}"
            )
        if rows.size and (
            int(rows.min()) < 0 or int(rows.max()) >= self.domain_size
        ):
            raise InvalidParameterError(
                f"ingest values outside [0, {self.domain_size})"
            )
        m = rows.shape[0]
        if m > self.retain:
            raise InvalidParameterError(
                f"chunk of {m} rows exceeds the stream retain ring "
                f"({self.retain})"
            )
        if self.capacity is not None and m > self.capacity:
            raise InvalidParameterError(
                f"chunk of {m} rows exceeds the store capacity "
                f"({self.capacity}); rows must stay retained until merged"
            )
        return rows

    def ingest_many(self, rows) -> List[dict]:
        """Ingest an ``(m, n_users)`` block of consecutive snapshots.

        Every shard pushes its columns and advances ``m`` steps via
        ``observe_many``; the ``m`` merged rows then append to the
        merged store in timestamp order.  The block is validated up
        front (shape, integrality, domain bounds) so no shard can fail
        mid-chunk and desynchronize the tier.  Returns one ack dict
        ``{"t", "strategy"}`` per row — the same acks the socket server
        sends its clients.
        """
        if not self._started:
            raise InvalidParameterError("call start() before ingest_many()")
        rows = self._check_block(rows)
        m = rows.shape[0]
        if m == 0:
            return []
        t0 = self.merged._next_t
        parts = self.router.split_block(rows)
        for s, session in enumerate(self.sessions):
            for i in range(m):
                self.streams[s].push(parts[s][i])
            session.observe_many(t0, m)
        acks = []
        weights = self.router.weights
        for i in range(m):
            t = t0 + i
            release, variance, strategy = merge_release_rows(
                [store.release_at(t) for store in self.stores],
                [store.variance_at(t) for store in self.stores],
                [store.strategy_at(t) for store in self.stores],
                weights,
            )
            self.merged.append(t, release, variance, strategy)
            acks.append({"t": t, "strategy": strategy})
        return acks

    def ingest(self, values) -> dict:
        """Ingest one snapshot; returns its merged ack."""
        return self.ingest_many(np.asarray(values)[np.newaxis, :])[0]

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregated running counters across the tier."""
        steps = self.steps_observed
        total = self.total_reports
        first = self.sessions[0]
        return {
            "mechanism": first.mechanism.name,
            "oracle": first.oracle.name,
            "epsilon": first.epsilon,
            "window": first.window,
            "num_shards": self.num_shards,
            "shard_users": [int(c) for c in self.router.counts],
            "steps": steps,
            "publications": self.merged.publication_count,
            "total_reports": total,
            "cfpu": total / (self.n_users * steps) if steps else 0.0,
            "max_window_spend": max(
                session.max_window_spend for session in self.sessions
            ),
        }
