"""Shard worker process: one sub-population's session behind a pipe.

Each shard of the serving tier runs :func:`shard_worker_main` in its own
OS process (spawn context), owning a :class:`~repro.engine.session.
StreamSession` over the shard's users, its :class:`~repro.query.
ReleaseStore`, and — when the tier is durable — its own PR-style state
directory (``<state-dir>/shard-XX/``: write-ahead release log + periodic
checkpoints, the exact machinery of the solo ``--state-dir`` server).

The protocol over the pipe is a strict request/reply alternation driven
by the front (one in-flight command per worker, ever):

==============================  =======================================
front sends                     worker replies
==============================  =======================================
(bootstraps on spawn)           ``("ready", watermark, wal_rows)``
``("ingest", t0, block)``       ``("rows", [(release, var, strat), …])``
``("checkpoint",)``             ``("ok", watermark)``
``("summary",)``                ``("summary", dict)``
``("stop",)``                   ``("bye",)``
==============================  =======================================

Any failure replies ``("error", message)`` and ends the process: a shard
that threw mid-ingest may be desynchronized from its stream, and the
merged population store cannot advance without it, so the front
escalates to :class:`~repro.exceptions.ServingError`.

Durability order inside an ingest mirrors the solo server: WAL append +
commit *before* the reply, so a row the front merged is always durable
on the shard; checkpoints are coordinated separately by the front (which
writes its own ``front.json`` only after every shard's checkpoint ack —
the cross-shard invariant ``W_front <= W_shard``).  On resume the worker
ships its committed WAL rows from ``replay_from`` (the front's
watermark) upward so the front can rebuild the merged rows the crash cut
off.

If the front dies, the pipe's far end closes and ``recv()`` raises
``EOFError`` — the worker exits quietly instead of leaking (this is the
orphan-cleanup path exercised by the kill-based crash tests).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import CheckpointError
from ..persist import Checkpoint, StateDir

#: Checkpoint config keys a shard resume must match exactly.
_CONFIG_KEYS = (
    "mechanism",
    "oracle",
    "postprocess",
    "epsilon",
    "window",
    "n_users",
    "domain_size",
    "fast",
)


def _bootstrap(config: dict) -> Tuple[object, object, Optional[StateDir], int, list]:
    """Build (or resume) the shard session; return replay rows for the front.

    Returns ``(session, stream, state_dir, watermark, wal_rows)`` where
    ``wal_rows`` are the shard's committed WAL rows with
    ``t >= config["replay_from"]`` — the sub-span the front's own
    checkpoint may be missing.
    """
    from ..engine.session import StreamSession
    from ..query.store import ReleaseStore
    from ..streams.online import OnlineStream

    n_users = int(config["n_users"])
    domain_size = int(config["domain_size"])
    retain = int(config["retain"])
    capacity = config["capacity"]

    state: Optional[StateDir] = None
    if config.get("state_dir") is not None:
        state = StateDir(config["state_dir"])
        checkpoint, watermark = state.prepare_resume()
        if checkpoint is not None:
            recorded = checkpoint.payload.get("config")
            if not isinstance(recorded, dict):
                raise CheckpointError(
                    "shard checkpoint payload has no 'config' section"
                )
            mismatches = [
                f"{key} is {recorded.get(key)!r} in the shard checkpoint "
                f"but {config[key]!r} now"
                for key in _CONFIG_KEYS
                if recorded.get(key) != config[key]
            ]
            if mismatches:
                raise CheckpointError(
                    "shard state dir disagrees with the serve "
                    "configuration: " + "; ".join(mismatches)
                )
            stream = OnlineStream(
                n_users=n_users, domain_size=domain_size, retain=retain
            )
            session = checkpoint.restore(stream)
            if session.store is None or session.store.capacity != capacity:
                found = (
                    "no store"
                    if session.store is None
                    else f"capacity {session.store.capacity}"
                )
                raise CheckpointError(
                    f"shard checkpoint release store has {found} but the "
                    f"serve configuration asks for capacity {capacity!r}"
                )
            replay_from = int(config.get("replay_from", 0))
            rows, _ = state.committed_releases()
            rows = [row for row in rows if row["t"] >= replay_from]
            return session, stream, state, watermark, rows

    stream = OnlineStream(
        n_users=n_users, domain_size=domain_size, retain=retain
    )
    store = ReleaseStore(domain_size, capacity=capacity)
    session = StreamSession(
        config["mechanism"],
        stream,
        epsilon=float(config["epsilon"]),
        window=int(config["window"]),
        oracle=config["oracle"],
        seed=config["seed"],
        postprocess=config["postprocess"],
        record_trace=False,
        store=store,
        enforce_privacy=bool(config.get("enforce_privacy", True)),
        fast=bool(config.get("fast", True)),
    ).start()
    return session, stream, state, 0, []


def shard_worker_main(conn, config: dict) -> None:
    """Worker process entry point: serve the pipe until stop/EOF."""
    try:
        session, stream, state, watermark, rows = _bootstrap(config)
    except Exception as error:  # ships to the front, which raises
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(("ready", watermark, rows))
    wal = state.open_wal() if state is not None else None
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return  # front died; exit without dangling
            op = message[0]
            try:
                if op == "ingest":
                    t0, block = message[1], message[2]
                    block = np.asarray(block)
                    for i in range(block.shape[0]):
                        stream.push(block[i])
                    session.observe_many(int(t0), block.shape[0])
                    store = session.store
                    reply_rows = [
                        (
                            store.release_at(t),
                            store.variance_at(t),
                            store.strategy_at(t),
                        )
                        for t in range(int(t0), int(t0) + block.shape[0])
                    ]
                    if wal is not None:
                        for t, (release, var, strat) in zip(
                            range(int(t0), int(t0) + block.shape[0]),
                            reply_rows,
                        ):
                            wal.append(t, release, strat, var)
                        wal.commit(session.steps_observed)
                    conn.send(("rows", reply_rows))
                elif op == "checkpoint":
                    if state is None:
                        raise CheckpointError(
                            "shard has no state dir to checkpoint into"
                        )
                    state.save_checkpoint(Checkpoint.capture(session))
                    conn.send(("ok", session.steps_observed))
                elif op == "summary":
                    conn.send(("summary", session.summary()))
                elif op == "stop":
                    conn.send(("bye",))
                    return
                else:
                    raise ValueError(f"unknown worker op {op!r}")
            except Exception as error:
                # A failed command may have left the session/stream pair
                # desynchronized; report and die — the front escalates.
                conn.send(("error", f"{type(error).__name__}: {error}"))
                return
    finally:
        if wal is not None:
            wal.close()
        conn.close()
