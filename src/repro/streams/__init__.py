"""Stream datasets: synthetic processes (Section 7.1.1) and generative
simulators standing in for the paper's real-world datasets (Section 7.1.2).
"""

from .base import GenerativeStream, MaterializedStream, StreamDataset
from .markov import MarkovValueProcess, sample_categorical
from .simulators import (
    FoursquareSimulator,
    TaobaoSimulator,
    TaxiSimulator,
    zipf_weights,
)
from .synthetic import (
    BinaryStream,
    lns_probability_sequence,
    log_probability_sequence,
    make_constant,
    make_lns,
    make_log,
    make_sin,
    make_step,
    sin_probability_sequence,
    step_probability_sequence,
)
from .traces import (
    load_value_matrix,
    save_value_matrix,
    stream_from_events,
)
from .online import OnlineStream
from .windows import SlidingWindowSum

__all__ = [
    "StreamDataset",
    "MaterializedStream",
    "GenerativeStream",
    "OnlineStream",
    "MarkovValueProcess",
    "sample_categorical",
    "BinaryStream",
    "make_lns",
    "make_sin",
    "make_log",
    "make_step",
    "make_constant",
    "lns_probability_sequence",
    "sin_probability_sequence",
    "log_probability_sequence",
    "step_probability_sequence",
    "TaxiSimulator",
    "FoursquareSimulator",
    "TaobaoSimulator",
    "zipf_weights",
    "SlidingWindowSum",
    "load_value_matrix",
    "save_value_matrix",
    "stream_from_events",
]
