"""Stream dataset abstractions.

A *stream dataset* models the population side of Figure 1: ``n_users``
users, each holding one categorical value from a domain of size
``domain_size`` at every discrete timestamp.  Mechanisms only ever see
perturbed reports; the true per-user values are exposed here so the engine
can simulate the client side, and the true histograms are exposed for
evaluation.

Two concrete families exist:

* :class:`MaterializedStream` — values stored as an ``(T, n)`` matrix;
  random access; used for small/medium workloads and tests.
* :class:`GenerativeStream` — values produced lazily per timestamp from a
  seeded generator with an evolving internal state (e.g. per-user Markov
  chains).  Supports unbounded horizons (the "infinite" in LDP-IDS);
  enforces in-order access and caches the current snapshot so a mechanism
  may read it several times within a timestamp (M1 and M2 rounds).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..exceptions import InvalidParameterError, StreamAccessError


class StreamDataset(abc.ABC):
    """Interface shared by all stream datasets."""

    #: Whether arbitrary timestamps can be read in any order (and hence
    #: whether batched range queries can skip sequential generation).
    random_access: bool = False

    def __init__(self, n_users: int, domain_size: int, horizon: Optional[int]):
        if n_users <= 0:
            raise InvalidParameterError(f"n_users must be positive, got {n_users}")
        if domain_size < 2:
            raise InvalidParameterError(
                f"domain_size must be >= 2, got {domain_size}"
            )
        if horizon is not None and horizon <= 0:
            raise InvalidParameterError(f"horizon must be positive, got {horizon}")
        self._n_users = int(n_users)
        self._domain_size = int(domain_size)
        self._horizon = None if horizon is None else int(horizon)

    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of participating users ``N``."""
        return self._n_users

    @property
    def domain_size(self) -> int:
        """Size ``d`` of the categorical value domain."""
        return self._domain_size

    @property
    def horizon(self) -> Optional[int]:
        """Number of timestamps, or ``None`` for an unbounded stream."""
        return self._horizon

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def values(self, t: int) -> np.ndarray:
        """True values of all users at timestamp ``t`` (0-based).

        Returns an ``(n_users,)`` int64 array with entries in
        ``[0, domain_size)``.  Callers must not mutate the result.
        """

    def true_frequencies(self, t: int) -> np.ndarray:
        """True frequency histogram ``c_t`` at timestamp ``t`` (sums to 1)."""
        counts = np.bincount(self.values(t), minlength=self.domain_size)
        return counts.astype(np.float64) / self.n_users

    def true_counts(self, t: int) -> np.ndarray:
        """True per-value counts at timestamp ``t`` (sums to ``n_users``)."""
        return np.bincount(self.values(t), minlength=self.domain_size).astype(
            np.int64
        )

    def values_range(self, t0: int, t1: int) -> np.ndarray:
        """True values of all users for ``t0 <= t < t1``, shape (t1-t0, n).

        Row ``i`` equals ``values(t0 + i)``.  This is the bulk-ingestion
        feed: :meth:`repro.engine.session.StreamSession.observe_many`
        pulls one block per chunk and drives the whole span off it.  The
        base implementation walks timestamps in order — note that on
        sequential generative streams this *consumes* them (the cursor
        ends at ``t1 - 1``), so a caller must either use only the block
        or only per-timestamp ``values`` for a given span, never both.
        Materialized streams override it with an O(1) view.  Callers
        must not mutate the result.
        """
        if t1 < t0:
            raise StreamAccessError(
                f"invalid range [{t0}, {t1}): end before start"
            )
        if t1 == t0:
            return np.empty((0, self.n_users), dtype=np.int64)
        return np.stack([self.values(t) for t in range(t0, t1)])

    def true_frequencies_range(self, t0: int, t1: int) -> np.ndarray:
        """True frequency histograms for ``t0 <= t < t1``, shape (t1-t0, d).

        Row ``i`` is bit-identical to ``true_frequencies(t0 + i)``.  The
        base implementation walks timestamps one by one (the only legal
        order for sequential generative streams); random-access datasets
        override it with a vectorized batch, which is the fast path the
        shared-pass :class:`~repro.engine.group.SessionGroup` driver and
        chunked replay consumers use.
        """
        if t1 < t0:
            raise StreamAccessError(
                f"invalid range [{t0}, {t1}): end before start"
            )
        if t1 == t0:
            return np.empty((0, self.domain_size), dtype=np.float64)
        return np.stack(
            [self.true_frequencies(t) for t in range(t0, t1)]
        )

    def frequency_matrix(self, horizon: Optional[int] = None) -> np.ndarray:
        """Stack ``true_frequencies`` for ``t = 0..horizon-1`` into (T, d)."""
        steps = horizon if horizon is not None else self.horizon
        if steps is None:
            raise StreamAccessError(
                "frequency_matrix needs an explicit horizon for unbounded streams"
            )
        return self.true_frequencies_range(0, steps)

    def _check_t(self, t: int) -> int:
        if t < 0:
            raise StreamAccessError(f"timestamp must be non-negative, got {t}")
        if self._horizon is not None and t >= self._horizon:
            raise StreamAccessError(
                f"timestamp {t} beyond stream horizon {self._horizon}"
            )
        return int(t)


class MaterializedStream(StreamDataset):
    """A stream fully stored in memory as a ``(T, n_users)`` value matrix."""

    random_access = True

    def __init__(self, values: np.ndarray, domain_size: Optional[int] = None):
        values = np.asarray(values)
        if values.ndim != 2:
            raise InvalidParameterError("values must be a (T, n_users) matrix")
        inferred = int(values.max()) + 1 if values.size else 2
        domain = domain_size if domain_size is not None else max(2, inferred)
        super().__init__(
            n_users=values.shape[1], domain_size=domain, horizon=values.shape[0]
        )
        if values.size and (values.min() < 0 or values.max() >= domain):
            raise InvalidParameterError("values outside [0, domain_size)")
        self._values = values.astype(np.int64, copy=False)

    def values(self, t: int) -> np.ndarray:
        t = self._check_t(t)
        return self._values[t]

    def values_range(self, t0: int, t1: int) -> np.ndarray:
        """O(1) block view of the stored value matrix."""
        if t1 < t0:
            raise StreamAccessError(
                f"invalid range [{t0}, {t1}): end before start"
            )
        if t1 == t0:
            return np.empty((0, self.n_users), dtype=np.int64)
        self._check_t(t0)
        self._check_t(t1 - 1)
        return self._values[t0:t1]

    def true_frequencies_range(self, t0: int, t1: int) -> np.ndarray:
        """Vectorized batch histogram: one bincount for the whole range.

        Each row's integer counts match the per-timestamp bincount
        exactly, so dividing by ``n_users`` reproduces
        :meth:`StreamDataset.true_frequencies` bit for bit.
        """
        if t1 < t0:
            raise StreamAccessError(
                f"invalid range [{t0}, {t1}): end before start"
            )
        if t1 == t0:
            return np.empty((0, self.domain_size), dtype=np.float64)
        self._check_t(t0)
        self._check_t(t1 - 1)
        d = self.domain_size
        block = self._values[t0:t1]
        offsets = np.arange(t1 - t0, dtype=np.int64)[:, None] * d
        counts = np.bincount(
            (block + offsets).ravel(), minlength=(t1 - t0) * d
        ).reshape(t1 - t0, d)
        return counts.astype(np.float64) / self.n_users


class GenerativeStream(StreamDataset):
    """A lazily generated stream with sequential state.

    Subclasses implement :meth:`_advance`, which produces the snapshot for
    the *next* timestamp given internal state.  Access must be in order
    (t = 0, 1, 2, ...); the current snapshot is cached so repeated reads of
    the same ``t`` are cheap and consistent, which the two-round adaptive
    mechanisms rely on.
    """

    def __init__(self, n_users: int, domain_size: int, horizon: Optional[int]):
        super().__init__(n_users, domain_size, horizon)
        self._cursor = -1
        self._current: Optional[np.ndarray] = None

    @abc.abstractmethod
    def _advance(self, t: int) -> np.ndarray:
        """Produce the value snapshot for timestamp ``t`` (called once per t)."""

    def values(self, t: int) -> np.ndarray:
        t = self._check_t(t)
        if t == self._cursor:
            assert self._current is not None
            return self._current
        if t != self._cursor + 1:
            raise StreamAccessError(
                f"generative streams must be read in order: asked for t={t} "
                f"while cursor is at {self._cursor}"
            )
        self._current = self._advance(t)
        self._cursor = t
        return self._current

    def reset(self) -> None:
        """Rewind the stream so it can be replayed from t = 0."""
        self._cursor = -1
        self._current = None
        self._reset_state()

    @abc.abstractmethod
    def _reset_state(self) -> None:
        """Restore any internal generator state to its initial value."""
