"""Vectorised per-user Markov value evolution.

The real-world datasets of Section 7.1.2 (taxi trajectories, check-ins, ad
clicks) share a structure: each user's categorical value is *sticky* over
time (a taxi stays in its grid cell for several 10-minute slots; a shopper
keeps browsing the same category) while the population-level distribution
drifts.  :class:`MarkovValueProcess` captures exactly that: at every step
each user independently keeps their value with probability
``1 - churn_rate`` and otherwise resamples from a (possibly time-varying)
target distribution.

This is the temporal-correlation substrate used by all three dataset
simulators in :mod:`repro.streams.simulators`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng


def sample_categorical(
    probabilities: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``size`` iid values from a categorical distribution.

    Uses inverse-CDF sampling on a shared uniform array, which is much
    faster than ``rng.choice`` for large ``size``.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 1 or probs.size == 0:
        raise InvalidParameterError("probabilities must be 1-D and non-empty")
    total = probs.sum()
    if total <= 0 or (probs < 0).any():
        raise InvalidParameterError("probabilities must be non-negative, sum > 0")
    cdf = np.cumsum(probs / total)
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


class MarkovValueProcess:
    """Per-user sticky categorical process.

    Parameters
    ----------
    n_users:
        Population size.
    target_distribution:
        Callable ``t -> (d,) probabilities`` giving the resampling target at
        each step; drives the population-level drift.
    churn_rate:
        Per-step probability that a user abandons their current value and
        resamples from the target.  ``churn_rate=1`` gives iid snapshots;
        small values give long-lived per-user values.
    """

    def __init__(
        self,
        n_users: int,
        target_distribution: Callable[[int], np.ndarray],
        churn_rate: float,
        seed: SeedLike = None,
    ):
        if not 0.0 <= churn_rate <= 1.0:
            raise InvalidParameterError(
                f"churn_rate must be in [0, 1], got {churn_rate}"
            )
        if n_users <= 0:
            raise InvalidParameterError(f"n_users must be positive, got {n_users}")
        self.n_users = int(n_users)
        self.target_distribution = target_distribution
        self.churn_rate = float(churn_rate)
        self._seed = seed
        self._rng = ensure_rng(seed if isinstance(seed, int) or seed is None else seed)
        self._values: Optional[np.ndarray] = None

    def step(self, t: int) -> np.ndarray:
        """Advance to timestamp ``t`` and return the value snapshot."""
        target = np.asarray(self.target_distribution(t), dtype=np.float64)
        if self._values is None:
            self._values = sample_categorical(target, self.n_users, self._rng)
            return self._values
        movers = self._rng.random(self.n_users) < self.churn_rate
        n_movers = int(np.count_nonzero(movers))
        if n_movers:
            self._values = self._values.copy()
            self._values[movers] = sample_categorical(target, n_movers, self._rng)
        return self._values

    def rng_state(self) -> dict:
        """Snapshot of the process generator's current bit-level state."""
        return self._rng.bit_generator.state

    def reset(self, seed: SeedLike = None) -> None:
        """Forget all state and reseed (defaults to the original seed)."""
        self._rng = ensure_rng(self._seed if seed is None else seed)
        self._values = None
