"""Push-based stream for true online ingestion.

:class:`OnlineStream` inverts the pull model of the other datasets: the
engine does not *generate* timestamps, an external producer *pushes* them
— a socket, a pipe into the ``repro stream`` CLI, a message queue.  The
stream is unbounded (``horizon=None``) and retains only a small ring of
recent snapshots, so an infinitely long session runs in constant memory.

The retained window exists because the two-round adaptive mechanisms read
the current timestamp's values more than once (M1 and M2), and a
shared-pass driver may fan one snapshot out to many sessions; nothing in
the engine ever looks further back than the current timestamp.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

import numpy as np

from ..exceptions import InvalidParameterError, StreamAccessError
from .base import StreamDataset


class OnlineStream(StreamDataset):
    """An unbounded stream fed one snapshot at a time via :meth:`push`.

    Parameters
    ----------
    n_users:
        Population size; every pushed snapshot must have this length.
    domain_size:
        Size of the categorical domain; pushed values must lie in
        ``[0, domain_size)``.
    retain:
        Number of most recent snapshots kept readable (>= 1).
    """

    def __init__(self, n_users: int, domain_size: int, retain: int = 4):
        super().__init__(n_users, domain_size, horizon=None)
        if retain < 1:
            raise InvalidParameterError(f"retain must be >= 1, got {retain}")
        self._retain = int(retain)
        self._snapshots: Deque[Tuple[int, np.ndarray]] = deque()
        self._next_t = 0

    # ------------------------------------------------------------------
    @property
    def pushed(self) -> int:
        """Number of snapshots ingested so far (== next timestamp)."""
        return self._next_t

    def push(self, values) -> int:
        """Ingest the next timestamp's user values; return its timestamp."""
        values = np.asarray(values)
        if values.ndim != 1 or values.shape[0] != self.n_users:
            raise InvalidParameterError(
                f"snapshot must be a ({self.n_users},) value array, got "
                f"shape {values.shape}"
            )
        if values.size and (
            values.min() < 0 or values.max() >= self.domain_size
        ):
            raise InvalidParameterError(
                "snapshot values outside [0, domain_size)"
            )
        t = self._next_t
        self._snapshots.append((t, values.astype(np.int64, copy=False)))
        while len(self._snapshots) > self._retain:
            self._snapshots.popleft()
        self._next_t = t + 1
        return t

    def fast_forward(self, t: int) -> None:
        """Advance the stream cursor to timestamp ``t`` without data.

        Used when resuming a persisted session: the restored session
        already ingested timestamps ``0 .. t-1`` in a previous process,
        so the replacement stream must hand out ``t`` for the next
        :meth:`push`.  Only forward moves on an empty-or-behind stream
        are legal; retained snapshots are dropped (they belong to
        timestamps the session has already consumed).
        """
        if t < self._next_t:
            raise InvalidParameterError(
                f"cannot fast-forward backwards: stream is at "
                f"{self._next_t}, asked for {t}"
            )
        self._snapshots.clear()
        self._next_t = int(t)

    # ------------------------------------------------------------------
    def values(self, t: int) -> np.ndarray:
        t = self._check_t(t)
        for ts, snapshot in reversed(self._snapshots):
            if ts == t:
                return snapshot
            if ts < t:
                break
        if t >= self._next_t:
            raise StreamAccessError(
                f"timestamp {t} has not been pushed yet (next is "
                f"{self._next_t})"
            )
        raise StreamAccessError(
            f"timestamp {t} was evicted from the online retention window "
            f"(oldest retained: "
            f"{self._snapshots[0][0] if self._snapshots else 'none'})"
        )

    # The base values_range (stack values(t) in order) serves chunked
    # ingestion here as long as the whole span is still retained —
    # chunked consumers construct the stream with retain >= chunk.
