"""Generative simulators standing in for the paper's real-world datasets.

The paper evaluates on three proprietary / non-redistributable datasets
(Section 7.1.2).  This environment has no network access, so each dataset
is replaced by a generative simulator matched on the statistics the paper
reports (N, T, d) and on the qualitative dynamics the LDP-IDS mechanisms
are sensitive to — sparsity of the histogram, temporal stickiness of
per-user values, and the drift/burst structure of the population
distribution.  DESIGN.md Section 5 documents each substitution.

* :class:`TaxiSimulator` — T-Drive Beijing taxis: N=10,357 taxis, T=886
  ten-minute slots, d=5 grid regions.  Modelled as per-taxi sticky movement
  between regions whose popularity follows a diurnal (rush-hour) cycle.
* :class:`FoursquareSimulator` — check-ins over d=77 countries, N=265,149,
  T=447.  Zipf-skewed country popularity with slow log-weight random-walk
  drift and very sticky users (people rarely change country).
* :class:`TaobaoSimulator` — ad clicks over d=117 categories, N=1,023,154,
  T=432 ten-minute slots (3 days).  Zipf category popularity, strong
  diurnal cycle, occasional short bursts on a random category (flash-sale
  behaviour), fickle users.

All three accept a ``scale`` divisor on N (default keeps benches
laptop-sized; ``scale=1`` reproduces the paper's population).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from .base import GenerativeStream
from .markov import MarkovValueProcess

#: Slots per simulated day at 10-minute resolution.
_SLOTS_PER_DAY = 144


def _rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator frozen at a previously captured bit state."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def zipf_weights(domain_size: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf popularity weights ``1/rank^exponent``."""
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, exponent)
    return weights / weights.sum()


class _MarkovSimulator(GenerativeStream):
    """Shared scaffolding: a GenerativeStream driven by a Markov process."""

    name = "markov-sim"

    def __init__(
        self,
        n_users: int,
        domain_size: int,
        horizon: Optional[int],
        churn_rate: float,
        seed: SeedLike,
    ):
        super().__init__(n_users, domain_size, horizon)
        self._process = MarkovValueProcess(
            n_users=n_users,
            target_distribution=self.target_distribution,
            churn_rate=churn_rate,
            seed=ensure_rng(seed),
        )
        # Snapshot the process generator *as constructed* (the subclass may
        # have consumed draws from the shared generator first), so reset()
        # replays bit-identically to a fresh build with the same seed —
        # the equivalence the parallel experiment engine relies on when
        # workers rebuild datasets by registry name.
        self._initial_process_state = self._process.rng_state()

    def target_distribution(self, t: int) -> np.ndarray:
        """Population-level value distribution at timestamp ``t``."""
        raise NotImplementedError

    def _advance(self, t: int) -> np.ndarray:
        return self._process.step(t)

    def _reset_state(self) -> None:
        self._process.reset(_rng_from_state(self._initial_process_state))


class TaxiSimulator(_MarkovSimulator):
    """Simulated T-Drive taxi density stream (N=10,357, T=886, d=5)."""

    name = "Taxi"

    def __init__(
        self,
        n_users: int = 10_357,
        horizon: int = 886,
        domain_size: int = 5,
        churn_rate: float = 0.15,
        scale: int = 1,
        seed: SeedLike = None,
    ):
        if scale < 1:
            raise InvalidParameterError("scale must be >= 1")
        rng = ensure_rng(seed)
        self._base = rng.dirichlet(np.full(domain_size, 4.0))
        # Each region gets its own rush-hour phase and modulation depth so
        # density shifts between regions through the day.
        self._phase = rng.uniform(0.0, 2.0 * np.pi, size=domain_size)
        self._depth = rng.uniform(0.2, 0.6, size=domain_size)
        super().__init__(
            n_users=max(2, n_users // scale),
            domain_size=domain_size,
            horizon=horizon,
            churn_rate=churn_rate,
            seed=rng,
        )

    def target_distribution(self, t: int) -> np.ndarray:
        angle = 2.0 * np.pi * (t % _SLOTS_PER_DAY) / _SLOTS_PER_DAY
        weights = self._base * (1.0 + self._depth * np.sin(angle + self._phase))
        weights = np.clip(weights, 1e-6, None)
        return weights / weights.sum()


class FoursquareSimulator(_MarkovSimulator):
    """Simulated Foursquare check-in stream (N=265,149, T=447, d=77)."""

    name = "Foursquare"

    def __init__(
        self,
        n_users: int = 265_149,
        horizon: int = 447,
        domain_size: int = 77,
        churn_rate: float = 0.02,
        zipf_exponent: float = 1.1,
        drift_std: float = 0.01,
        scale: int = 8,
        seed: SeedLike = None,
    ):
        if scale < 1:
            raise InvalidParameterError("scale must be >= 1")
        rng = ensure_rng(seed)
        base = zipf_weights(domain_size, zipf_exponent)
        self._log_weights = np.log(rng.permutation(base))
        self._initial_log_weights = self._log_weights.copy()
        self._drift_std = float(drift_std)
        self._drift_rng = ensure_rng(int(rng.integers(0, 2**31 - 1)))
        self._drift_state = self._drift_rng.bit_generator.state
        self._last_t = -1
        super().__init__(
            n_users=max(2, n_users // scale),
            domain_size=domain_size,
            horizon=horizon,
            churn_rate=churn_rate,
            seed=rng,
        )

    def target_distribution(self, t: int) -> np.ndarray:
        # Slow random-walk drift in log-weight space; one drift step per
        # new timestamp keeps the distribution smooth between snapshots.
        while self._last_t < t:
            self._log_weights = self._log_weights + self._drift_rng.normal(
                0.0, self._drift_std, size=self._log_weights.shape
            )
            self._last_t += 1
        weights = np.exp(self._log_weights - self._log_weights.max())
        return weights / weights.sum()

    def _reset_state(self) -> None:  # re-deterministic drift on replay
        super()._reset_state()
        self._log_weights = self._initial_log_weights.copy()
        self._drift_rng = _rng_from_state(self._drift_state)
        self._last_t = -1


class TaobaoSimulator(_MarkovSimulator):
    """Simulated Taobao ad-click stream (N=1,023,154, T=432, d=117)."""

    name = "Taobao"

    def __init__(
        self,
        n_users: int = 1_023_154,
        horizon: int = 432,
        domain_size: int = 117,
        churn_rate: float = 0.3,
        zipf_exponent: float = 1.2,
        diurnal_depth: float = 0.5,
        burst_probability: float = 0.02,
        burst_boost: float = 4.0,
        burst_length: int = 12,
        scale: int = 32,
        seed: SeedLike = None,
    ):
        if scale < 1:
            raise InvalidParameterError("scale must be >= 1")
        rng = ensure_rng(seed)
        self._base = rng.permutation(zipf_weights(domain_size, zipf_exponent))
        self._diurnal_depth = float(diurnal_depth)
        self._burst_probability = float(burst_probability)
        self._burst_boost = float(burst_boost)
        self._burst_length = int(burst_length)
        self._burst_rng = ensure_rng(int(rng.integers(0, 2**31 - 1)))
        self._burst_state = self._burst_rng.bit_generator.state
        self._burst_category = -1
        self._burst_until = -1
        self._last_t = -1
        super().__init__(
            n_users=max(2, n_users // scale),
            domain_size=domain_size,
            horizon=horizon,
            churn_rate=churn_rate,
            seed=rng,
        )

    def target_distribution(self, t: int) -> np.ndarray:
        while self._last_t < t:
            self._last_t += 1
            if (
                self._last_t >= self._burst_until
                and self._burst_rng.random() < self._burst_probability
            ):
                self._burst_category = int(
                    self._burst_rng.integers(0, self.domain_size)
                )
                self._burst_until = self._last_t + self._burst_length
        angle = 2.0 * np.pi * (t % _SLOTS_PER_DAY) / _SLOTS_PER_DAY
        # Overall click intensity dips at night; express it as tilting mass
        # toward the head of the Zipf distribution during the day.
        tilt = 1.0 + self._diurnal_depth * np.sin(angle)
        weights = np.power(self._base, 1.0 / max(tilt, 0.25))
        if t < self._burst_until and self._burst_category >= 0:
            weights = weights.copy()
            weights[self._burst_category] *= self._burst_boost
        return weights / weights.sum()

    def _reset_state(self) -> None:
        super()._reset_state()
        self._burst_rng = _rng_from_state(self._burst_state)
        self._burst_category = -1
        self._burst_until = -1
        self._last_t = -1
