"""Synthetic stream datasets from Section 7.1.1.

The paper generates *binary* streams: a probability process ``p_t = f(t)``
is sampled first, then at each timestamp a fraction ``p_t`` of the ``N``
users hold value 1 and the rest hold value 0.  Three processes are used:

* **LNS** — a Gaussian random walk ``p_t = p_{t-1} + N(0, Q)``
  (p0 = 0.05, sqrt(Q) = 0.0025);
* **Sin** — ``p_t = A sin(b t) + h`` (A = 0.05, b = 0.01, h = 0.075);
* **Log** — logistic growth ``p_t = A / (1 + e^{-b t})`` (A = 0.25,
  b = 0.01).

Defaults are exactly the paper's; the probability sequence is clipped into
[0, 1] so the random walk stays a valid Bernoulli parameter.  Extra
processes (constant, step/spike) are provided for tests and ablations.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..rng import SeedLike, ensure_rng
from .base import MaterializedStream

#: Paper defaults (Section 7.1.1).
DEFAULT_T = 800
DEFAULT_N = 200_000


def lns_probability_sequence(
    horizon: int = DEFAULT_T,
    p0: float = 0.05,
    q_std: float = 0.0025,
    seed: SeedLike = None,
) -> np.ndarray:
    """LNS linear process ``p_t = p_{t-1} + N(0, Q)`` with ``sqrt(Q)=q_std``."""
    rng = ensure_rng(seed)
    steps = rng.normal(0.0, q_std, size=horizon)
    steps[0] = 0.0
    return np.clip(p0 + np.cumsum(steps), 0.0, 1.0)


def sin_probability_sequence(
    horizon: int = DEFAULT_T,
    amplitude: float = 0.05,
    b: float = 0.01,
    offset: float = 0.075,
) -> np.ndarray:
    """Sin process ``p_t = A sin(b t) + h``."""
    t = np.arange(horizon, dtype=np.float64)
    return np.clip(amplitude * np.sin(b * t) + offset, 0.0, 1.0)


def log_probability_sequence(
    horizon: int = DEFAULT_T,
    amplitude: float = 0.25,
    b: float = 0.01,
) -> np.ndarray:
    """Log process ``p_t = A / (1 + e^{-b t})`` (logistic growth)."""
    t = np.arange(horizon, dtype=np.float64)
    return np.clip(amplitude / (1.0 + np.exp(-b * t)), 0.0, 1.0)


def step_probability_sequence(
    horizon: int,
    low: float = 0.05,
    high: float = 0.2,
    period: int = 100,
) -> np.ndarray:
    """Square wave alternating between ``low`` and ``high`` every ``period``.

    Not in the paper; used by ablation benches to stress the adaptive
    methods with abrupt changes.
    """
    t = np.arange(horizon)
    return np.where((t // period) % 2 == 0, low, high).astype(np.float64)


class BinaryStream(MaterializedStream):
    """Binary stream materialised from a probability sequence.

    At each timestamp exactly ``round(p_t * N)`` randomly chosen users hold
    value 1 (matching the paper's "randomly chose a portion of p_t users"),
    so the true frequency tracks ``p_t`` up to rounding.
    """

    def __init__(
        self,
        probability_sequence: np.ndarray,
        n_users: int = DEFAULT_N,
        seed: SeedLike = None,
        name: str = "binary",
    ):
        probs = np.asarray(probability_sequence, dtype=np.float64)
        if probs.ndim != 1 or probs.size == 0:
            raise InvalidParameterError("probability_sequence must be 1-D, non-empty")
        if probs.min() < 0.0 or probs.max() > 1.0:
            raise InvalidParameterError("probabilities must lie in [0, 1]")
        rng = ensure_rng(seed)
        horizon = probs.shape[0]
        values = np.zeros((horizon, n_users), dtype=np.int64)
        for t, p in enumerate(probs):
            k = int(round(p * n_users))
            if k > 0:
                ones = rng.choice(n_users, size=min(k, n_users), replace=False)
                values[t, ones] = 1
        super().__init__(values, domain_size=2)
        self.name = name
        self.probability_sequence = probs


def make_lns(
    n_users: int = DEFAULT_N,
    horizon: int = DEFAULT_T,
    p0: float = 0.05,
    q_std: float = 0.0025,
    seed: SeedLike = None,
) -> BinaryStream:
    """Paper's LNS dataset (linear Gaussian random walk)."""
    rng = ensure_rng(seed)
    probs = lns_probability_sequence(horizon, p0=p0, q_std=q_std, seed=rng)
    return BinaryStream(probs, n_users=n_users, seed=rng, name="LNS")


def make_sin(
    n_users: int = DEFAULT_N,
    horizon: int = DEFAULT_T,
    amplitude: float = 0.05,
    b: float = 0.01,
    offset: float = 0.075,
    seed: SeedLike = None,
) -> BinaryStream:
    """Paper's Sin dataset (sine curve)."""
    probs = sin_probability_sequence(horizon, amplitude=amplitude, b=b, offset=offset)
    return BinaryStream(probs, n_users=n_users, seed=seed, name="Sin")


def make_log(
    n_users: int = DEFAULT_N,
    horizon: int = DEFAULT_T,
    amplitude: float = 0.25,
    b: float = 0.01,
    seed: SeedLike = None,
) -> BinaryStream:
    """Paper's Log dataset (logistic growth)."""
    probs = log_probability_sequence(horizon, amplitude=amplitude, b=b)
    return BinaryStream(probs, n_users=n_users, seed=seed, name="Log")


def make_step(
    n_users: int = DEFAULT_N,
    horizon: int = DEFAULT_T,
    low: float = 0.05,
    high: float = 0.2,
    period: int = 100,
    seed: SeedLike = None,
) -> BinaryStream:
    """Square-wave binary stream for abrupt-change ablations (not in paper)."""
    probs = step_probability_sequence(horizon, low=low, high=high, period=period)
    return BinaryStream(probs, n_users=n_users, seed=seed, name="Step")


def make_constant(
    n_users: int = DEFAULT_N,
    horizon: int = DEFAULT_T,
    p: float = 0.1,
    seed: SeedLike = None,
) -> BinaryStream:
    """Perfectly static binary stream (approximation should always win)."""
    probs = np.full(horizon, p, dtype=np.float64)
    return BinaryStream(probs, n_users=n_users, seed=seed, name="Constant")
