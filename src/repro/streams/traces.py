"""Loading real trace data into stream datasets.

The simulators in :mod:`repro.streams.simulators` stand in for the paper's
proprietary datasets, but a user with access to the real traces (or any
other categorical stream) can load them here:

* :func:`load_value_matrix` — a ``(T, n_users)`` matrix from ``.npy`` or
  CSV (rows = timestamps, columns = users);
* :func:`stream_from_events` — an event log of ``(user, timestamp, value)``
  triples, forward-filled per user between events (the natural encoding of
  check-in / click logs like Foursquare and Taobao).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Tuple, Union

import numpy as np

from ..exceptions import InvalidParameterError
from .base import MaterializedStream

PathLike = Union[str, Path]


def load_value_matrix(
    path: PathLike, domain_size: Optional[int] = None, delimiter: str = ","
) -> MaterializedStream:
    """Load a ``(T, n_users)`` integer value matrix from .npy or text/CSV."""
    path = Path(path)
    if not path.exists():
        raise InvalidParameterError(f"trace file not found: {path}")
    if path.suffix == ".npy":
        values = np.load(path)
    else:
        values = np.loadtxt(path, delimiter=delimiter, dtype=np.int64, ndmin=2)
    return MaterializedStream(values, domain_size=domain_size)


def stream_from_events(
    events: Iterable[Tuple[int, int, int]],
    n_users: int,
    horizon: int,
    domain_size: Optional[int] = None,
    default_value: int = 0,
) -> MaterializedStream:
    """Build a stream from ``(user, timestamp, value)`` events.

    Each user's value is the one set by their most recent event at or
    before ``t`` (forward fill), or ``default_value`` before their first
    event — the standard densification of sparse activity logs.
    """
    if n_users <= 0 or horizon <= 0:
        raise InvalidParameterError("n_users and horizon must be positive")
    event_list = sorted(events, key=lambda e: e[1])
    values = np.full((horizon, n_users), default_value, dtype=np.int64)
    cursor = 0
    current = np.full(n_users, default_value, dtype=np.int64)
    for t in range(horizon):
        while cursor < len(event_list) and event_list[cursor][1] <= t:
            user, _, value = event_list[cursor]
            if not 0 <= user < n_users:
                raise InvalidParameterError(f"event user {user} out of range")
            if value < 0:
                raise InvalidParameterError(f"negative event value {value}")
            current[user] = value
            cursor += 1
        values[t] = current
    return MaterializedStream(values, domain_size=domain_size)


def save_value_matrix(stream: MaterializedStream, path: PathLike) -> None:
    """Persist a materialised stream's value matrix as ``.npy``."""
    path = Path(path)
    if path.suffix != ".npy":
        raise InvalidParameterError("save_value_matrix writes .npy files")
    path.parent.mkdir(parents=True, exist_ok=True)
    matrix = np.stack([stream.values(t) for t in range(stream.horizon or 0)])
    np.save(path, matrix)
