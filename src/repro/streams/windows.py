"""Sliding-window bookkeeping helpers.

Both budget-division and population-division mechanisms repeatedly need
"the sum of some per-timestamp quantity over the last ``w`` timestamps"
(spent publication budget in Algorithm 1 line 7, used publication users in
Algorithm 3 line 7).  :class:`SlidingWindowSum` provides that in O(1)
per step.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..exceptions import InvalidParameterError


class SlidingWindowSum:
    """Running sum of per-timestamp values over a window of size ``w``.

    ``record(t, value)`` appends the value for timestamp ``t``;
    ``window_sum(t)`` returns the sum over timestamps in
    ``[t - w + 1, t]``.  Timestamps must be recorded in non-decreasing
    order (one record per timestamp).
    """

    def __init__(self, window: int):
        if window <= 0:
            raise InvalidParameterError(f"window must be positive, got {window}")
        self.window = int(window)
        self._entries: Deque[Tuple[int, float]] = deque()
        self._sum = 0.0
        self._last_t = -1

    def record(self, t: int, value: float) -> None:
        """Record ``value`` for timestamp ``t`` (monotone in ``t``)."""
        if t <= self._last_t:
            raise InvalidParameterError(
                f"timestamps must be strictly increasing; got {t} after {self._last_t}"
            )
        self._last_t = t
        self._entries.append((t, float(value)))
        self._sum += float(value)
        self._evict(t)

    def window_sum(self, t: int) -> float:
        """Sum of recorded values with timestamps in ``[t - w + 1, t]``."""
        self._evict(t)
        return self._sum

    def preview(self, ts) -> list:
        """Window sums for future timestamps, assuming zero-valued records.

        For each ``t`` of the ascending ``ts``, returns the value
        ``window_sum(t)`` *would* return if every timestamp between the
        last recorded one and ``t`` recorded ``0.0`` — without mutating
        the window.  The speculative chunk kernels (LBD) use this to scan
        a whole no-publish segment's remaining-budget decisions ahead of
        time.

        Bit-identity with the per-step path: evictions pop the same
        pre-existing entries in the same order, subtracting the same
        floats from the same running sum, and the interleaved zero-valued
        appends the per-step path would make are exact no-ops on an IEEE
        sum (``x + 0.0 == x`` and ``x - 0.0 == x`` for every value this
        sum can reach — entries are non-negative, so the sum is never
        ``-0.0``).
        """
        entries = deque(self._entries)
        total = self._sum
        window = self.window
        sums = []
        for t in ts:
            cutoff = t - window + 1
            while entries and entries[0][0] < cutoff:
                total -= entries.popleft()[1]
            sums.append(total)
        return sums

    def state_dict(self) -> dict:
        """In-window entries and counters for checkpointing."""
        return {
            "entries": [(t, v) for t, v in self._entries],
            "sum": self._sum,
            "last_t": self._last_t,
        }

    def load_state(self, state: dict) -> None:
        """Install state captured by :meth:`state_dict`.

        The running sum is restored verbatim (not recomputed) so the
        accumulated floating-point rounding matches the original window
        exactly.
        """
        self._entries = deque(
            (int(t), float(v)) for t, v in state["entries"]
        )
        self._sum = float(state["sum"])
        self._last_t = int(state["last_t"])

    def _evict(self, t: int) -> None:
        cutoff = t - self.window + 1
        while self._entries and self._entries[0][0] < cutoff:
            _, value = self._entries.popleft()
            self._sum -= value

    def __len__(self) -> int:
        return len(self._entries)
