"""Unit tests for CFPU closed forms and predicted-vs-measured agreement."""

import pytest

from repro.analysis import (
    cfpu_budget_adaptive,
    cfpu_budget_uniform,
    cfpu_lpa,
    cfpu_lpd,
    cfpu_sampling,
    predicted_cfpu,
)
from repro.engine import run_stream
from repro.exceptions import InvalidParameterError


class TestClosedForms:
    def test_uniform(self):
        assert cfpu_budget_uniform() == 1.0

    def test_sampling(self):
        assert cfpu_sampling(20) == pytest.approx(0.05)

    def test_budget_adaptive(self):
        assert cfpu_budget_adaptive(20, 5) == pytest.approx(1.25)

    def test_lpd_below_sampling(self):
        """LPD's CFPU is strictly below LPU's 1/w (Section 6.3.3)."""
        for m in (1, 3, 10):
            assert cfpu_lpd(20, m) < cfpu_sampling(20)

    def test_lpd_approaches_1_over_w_with_many_publications(self):
        assert cfpu_lpd(20, 30) == pytest.approx(1 / 20, abs=1e-7)

    def test_lpa_formula(self):
        w, m = 20, 4
        assert cfpu_lpa(w, m) == pytest.approx(1 / (2 * w) + (w + m) / (4 * w * w))

    def test_lpa_below_sampling_for_small_m(self):
        assert cfpu_lpa(20, 4) < cfpu_sampling(20)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            cfpu_sampling(0)
        with pytest.raises(InvalidParameterError):
            cfpu_budget_adaptive(20, -1)


class TestPredictedVsMeasured:
    @pytest.mark.parametrize("method", ["LBU", "LSP", "LPU", "LBD", "LBA"])
    def test_prediction_close_to_measurement(self, method, small_binary_stream):
        result = run_stream(method, small_binary_stream, epsilon=1.0, window=5, seed=0)
        assert predicted_cfpu(result) == pytest.approx(result.cfpu, rel=0.15)

    @pytest.mark.parametrize("method", ["LPD", "LPA"])
    def test_population_adaptive_prediction_order(self, method, small_binary_stream):
        """For the adaptive population methods the closed forms assume the
        idealised publication schedule; measured CFPU stays within the
        [1/(2w), 1/w] band the analysis derives."""
        w = 5
        result = run_stream(method, small_binary_stream, epsilon=1.0, window=w, seed=0)
        assert 1 / (2 * w) <= result.cfpu <= 1 / w + 1e-9

    def test_unknown_mechanism_raises(self, small_binary_stream):
        result = run_stream("LBU", small_binary_stream, epsilon=1.0, window=5, seed=0)
        result.mechanism = "XXX"
        with pytest.raises(InvalidParameterError):
            predicted_cfpu(result)
