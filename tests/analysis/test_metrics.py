"""Unit tests for utility metrics."""

import numpy as np
import pytest

from repro.analysis import (
    kl_divergence,
    mean_absolute_error,
    mean_relative_error,
    mean_relative_error_on_tracked_cell,
    mean_squared_error,
    per_timestamp_mse,
)
from repro.exceptions import InvalidParameterError


@pytest.fixture
def truth():
    return np.array([[0.5, 0.5], [0.2, 0.8]])


class TestMRE:
    def test_zero_for_exact(self, truth):
        assert mean_relative_error(truth, truth) == 0.0

    def test_simple_value(self, truth):
        released = truth + 0.1
        expected = np.mean(0.1 / truth)
        assert mean_relative_error(released, truth) == pytest.approx(expected)

    def test_floor_protects_small_denominators(self):
        truth = np.array([[1e-9, 1.0]])
        released = np.array([[0.01, 1.0]])
        value = mean_relative_error(released, truth, floor=1e-3)
        assert np.isfinite(value)
        assert value == pytest.approx(np.mean([0.01 / 1e-3, 0.0]))

    def test_shape_mismatch_rejected(self, truth):
        with pytest.raises(InvalidParameterError):
            mean_relative_error(truth, truth[:1])

    def test_invalid_floor(self, truth):
        with pytest.raises(InvalidParameterError):
            mean_relative_error(truth, truth, floor=0.0)

    def test_tracked_cell_variant(self, truth):
        released = truth.copy()
        released[:, 1] += 0.08
        tracked = mean_relative_error_on_tracked_cell(released, truth, cell=1)
        assert tracked == pytest.approx(np.mean(0.08 / truth[:, 1]))


class TestAbsoluteMetrics:
    def test_mae(self, truth):
        assert mean_absolute_error(truth + 0.1, truth) == pytest.approx(0.1)

    def test_mse(self, truth):
        assert mean_squared_error(truth + 0.1, truth) == pytest.approx(0.01)

    def test_per_timestamp_mse_shape(self, truth):
        out = per_timestamp_mse(truth + 0.1, truth)
        assert out.shape == (2,)
        assert np.allclose(out, 0.01)

    def test_mse_equals_mean_of_per_timestamp(self, rng):
        truth = rng.random((10, 4))
        released = truth + rng.normal(0, 0.05, size=truth.shape)
        assert mean_squared_error(released, truth) == pytest.approx(
            per_timestamp_mse(released, truth).mean()
        )


class TestKL:
    def test_zero_for_identical(self, truth):
        assert kl_divergence(truth, truth) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self, truth):
        other = truth[:, ::-1].copy()
        assert kl_divergence(other, truth) > 0

    def test_handles_negative_released_cells(self, truth):
        released = truth.copy()
        released[0, 0] = -0.2
        assert np.isfinite(kl_divergence(released, truth))
