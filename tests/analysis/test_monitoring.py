"""Unit tests for event monitoring (ROC analysis, Section 7.4)."""

import numpy as np
import pytest

from repro.analysis import (
    detection_rates,
    event_labels,
    event_threshold,
    monitored_statistic,
    monitoring_roc,
    roc_curve,
)
from repro.exceptions import InvalidParameterError


class TestMonitoredStatistic:
    def test_binary_tracks_cell_one(self):
        freqs = np.array([[0.7, 0.3], [0.4, 0.6]])
        assert np.allclose(monitored_statistic(freqs), [0.3, 0.6])

    def test_non_binary_tracks_peak(self):
        freqs = np.array([[0.2, 0.5, 0.3], [0.1, 0.1, 0.8]])
        assert np.allclose(monitored_statistic(freqs), [0.5, 0.8])

    def test_binary_override(self):
        freqs = np.array([[0.7, 0.3]])
        assert monitored_statistic(freqs, binary=False)[0] == pytest.approx(0.7)

    def test_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            monitored_statistic(np.array([0.5, 0.5]))


class TestThresholdAndLabels:
    def test_paper_threshold_formula(self):
        series = np.array([0.0, 1.0, 0.5])
        assert event_threshold(series) == pytest.approx(0.75)

    def test_quantile_parameter(self):
        series = np.array([0.0, 1.0])
        assert event_threshold(series, quantile=0.5) == pytest.approx(0.5)

    def test_labels(self):
        series = np.array([0.1, 0.9, 0.5, 0.95])
        labels = event_labels(series)
        assert labels.tolist() == [False, True, False, True]

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            event_threshold(np.empty(0))


class TestROCCurve:
    def test_perfect_scores_auc_one(self):
        labels = np.array([False, False, True, True])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_curve(labels, scores).auc == pytest.approx(1.0)

    def test_inverted_scores_auc_zero(self):
        labels = np.array([False, False, True, True])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_curve(labels, scores).auc == pytest.approx(0.0)

    def test_random_scores_auc_half(self, rng):
        labels = rng.random(5_000) < 0.3
        scores = rng.random(5_000)
        assert roc_curve(labels, scores).auc == pytest.approx(0.5, abs=0.05)

    def test_curve_is_monotone(self, rng):
        labels = rng.random(200) < 0.4
        scores = rng.random(200)
        curve = roc_curve(labels, scores)
        assert (np.diff(curve.false_positive_rate) >= 0).all()
        assert (np.diff(curve.true_positive_rate) >= 0).all()

    def test_endpoints(self, rng):
        labels = rng.random(100) < 0.5
        scores = rng.random(100)
        curve = roc_curve(labels, scores)
        assert curve.false_positive_rate[0] == 0.0
        assert curve.true_positive_rate[0] == 0.0
        assert curve.false_positive_rate[-1] == pytest.approx(1.0)
        assert curve.true_positive_rate[-1] == pytest.approx(1.0)

    def test_degenerate_labels_rejected(self):
        with pytest.raises(InvalidParameterError):
            roc_curve(np.array([True, True]), np.array([0.1, 0.2]))
        with pytest.raises(InvalidParameterError):
            roc_curve(np.array([False, False]), np.array([0.1, 0.2]))

    def test_tie_handling(self):
        labels = np.array([True, False, True, False])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        curve = roc_curve(labels, scores)
        assert curve.auc == pytest.approx(0.5)


class TestDetectionRates:
    def test_rates(self):
        labels = np.array([True, True, False, False])
        scores = np.array([0.9, 0.1, 0.8, 0.2])
        tpr, fpr = detection_rates(labels, scores, threshold=0.5)
        assert tpr == pytest.approx(0.5)
        assert fpr == pytest.approx(0.5)


class TestEndToEnd:
    def test_accurate_release_has_high_auc(self, rng):
        truth_series = np.concatenate([np.full(50, 0.1), np.full(10, 0.5)])
        truth = np.column_stack([1 - truth_series, truth_series])
        released = truth + rng.normal(0, 0.01, size=truth.shape)
        assert monitoring_roc(released, truth).auc > 0.95

    def test_noisy_release_has_lower_auc(self, rng):
        truth_series = np.concatenate([np.full(50, 0.1), np.full(10, 0.5)])
        truth = np.column_stack([1 - truth_series, truth_series])
        good = truth + rng.normal(0, 0.01, size=truth.shape)
        bad = truth + rng.normal(0, 0.5, size=truth.shape)
        assert monitoring_roc(good, truth).auc > monitoring_roc(bad, truth).auc
