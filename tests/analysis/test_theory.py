"""Unit tests for the closed-form utility theory (Sections 5.4 / 6.3)."""

import numpy as np
import pytest

from repro.analysis import (
    lsp_drift_term,
    mse_lbu,
    mse_lpu,
    mse_lsp,
    publication_variance_lba,
    publication_variance_lbd,
    publication_variance_lpa,
    publication_variance_lpd,
    theorem_6_1_gap,
)
from repro.engine import run_stream
from repro.exceptions import InvalidParameterError
from repro.freq_oracles.variance import grr_mean_variance


class TestBaselineMSE:
    def test_lbu_formula(self):
        assert mse_lbu(1.0, 10_000, 20, 2) == pytest.approx(
            grr_mean_variance(0.05, 10_000, 2)
        )

    def test_lpu_formula(self):
        assert mse_lpu(1.0, 10_000, 20, 2) == pytest.approx(
            grr_mean_variance(1.0, 500, 2)
        )

    def test_lsp_adds_drift(self):
        base = mse_lsp(1.0, 10_000, 20, 2, drift_term=0.0)
        with_drift = mse_lsp(1.0, 10_000, 20, 2, drift_term=0.01)
        assert with_drift == pytest.approx(base + 0.01)

    def test_lsp_drift_term_zero_for_constant(self):
        freqs = np.tile([0.3, 0.7], (40, 1))
        assert lsp_drift_term(freqs, 10) == 0.0

    def test_lsp_drift_term_positive_for_moving(self):
        t = np.linspace(0, 0.3, 40)
        freqs = np.column_stack([0.5 + t, 0.5 - t])
        assert lsp_drift_term(freqs, 10) > 0


class TestTheorem61:
    def test_gap_positive_everywhere(self):
        for eps in (0.5, 1.0, 2.5):
            for w in (5, 20, 50):
                for d in (2, 77):
                    assert theorem_6_1_gap(eps, 200_000, w, d) > 0

    def test_empirical_agreement_lbu(self, constant_stream):
        """Measured LBU MSE matches V(eps/w, N) on a static stream."""
        eps, w = 1.0, 5
        mses = []
        for seed in range(10):
            result = run_stream(
                "LBU", constant_stream, epsilon=eps, window=w, seed=seed
            )
            mses.append(np.mean(result.errors() ** 2))
        predicted = mse_lbu(eps, constant_stream.n_users, w, 2)
        assert np.mean(mses) == pytest.approx(predicted, rel=0.3)

    def test_empirical_agreement_lpu(self, constant_stream):
        eps, w = 1.0, 5
        mses = []
        for seed in range(10):
            result = run_stream(
                "LPU", constant_stream, epsilon=eps, window=w, seed=seed
            )
            mses.append(np.mean(result.errors() ** 2))
        predicted = mse_lpu(eps, constant_stream.n_users, w, 2)
        assert np.mean(mses) == pytest.approx(predicted, rel=0.3)

    def test_empirical_ordering(self, constant_stream):
        """LPU empirically beats LBU, as Theorem 6.1 demands."""
        lbu, lpu = [], []
        for seed in range(5):
            lbu.append(
                np.mean(
                    run_stream(
                        "LBU", constant_stream, epsilon=1.0, window=5, seed=seed
                    ).errors()
                    ** 2
                )
            )
            lpu.append(
                np.mean(
                    run_stream(
                        "LPU", constant_stream, epsilon=1.0, window=5, seed=seed
                    ).errors()
                    ** 2
                )
            )
        assert np.mean(lpu) < np.mean(lbu)


class TestAdaptiveVariances:
    def test_lpd_beats_lbd_per_eq_10(self):
        """Σ Var of LPD's publications < LBD's for the same m (Sec. 6.3.2)."""
        for m in (1, 2, 4, 8):
            assert publication_variance_lpd(1.0, 200_000, m, 2) < (
                publication_variance_lbd(1.0, 200_000, m, 2)
            )

    def test_lpa_beats_lba_per_eq_11(self):
        for m in (1, 2, 4, 8):
            assert publication_variance_lpa(1.0, 200_000, m, 20, 2) < (
                publication_variance_lba(1.0, 200_000, m, 20, 2)
            )

    def test_lbd_error_explodes_with_m(self):
        """Exponential budget decay: error grows dramatically with m."""
        v2 = publication_variance_lbd(1.0, 200_000, 2, 2)
        v8 = publication_variance_lbd(1.0, 200_000, 8, 2)
        assert v8 > 10 * v2

    def test_lba_error_grows_mildly_with_m(self):
        v2 = publication_variance_lba(1.0, 200_000, 2, 20, 2)
        v8 = publication_variance_lba(1.0, 200_000, 8, 20, 2)
        assert v8 < 50 * v2

    def test_invalid_m_rejected(self):
        with pytest.raises(InvalidParameterError):
            publication_variance_lbd(1.0, 1_000, 0, 2)
        with pytest.raises(InvalidParameterError):
            publication_variance_lba(1.0, 1_000, 30, 20, 2)
