"""Tests for top-k tracking and change-point detection utilities."""

import numpy as np
import pytest

from repro.analysis import (
    cusum_detect,
    rank_displacement,
    score_change_points,
    topk_precision,
    topk_recall_curve,
    topk_sets,
)
from repro.exceptions import InvalidParameterError


class TestTopK:
    @pytest.fixture
    def trace(self):
        return np.array([[0.5, 0.3, 0.15, 0.05], [0.1, 0.2, 0.3, 0.4]])

    def test_topk_sets(self, trace):
        sets = topk_sets(trace, 2)
        assert sets[0] == {0, 1}
        assert sets[1] == {2, 3}

    def test_perfect_precision(self, trace):
        assert topk_precision(trace, trace, 2) == 1.0

    def test_partial_precision(self, trace):
        shuffled = trace[:, [1, 0, 3, 2]]
        precision = topk_precision(shuffled, trace, 1)
        assert 0.0 <= precision < 1.0

    def test_noise_degrades_precision(self, rng):
        truth = np.tile(np.linspace(1.0, 0.1, 10) / 5.5, (20, 1))
        slight = truth + rng.normal(0, 0.001, size=truth.shape)
        heavy = truth + rng.normal(0, 0.2, size=truth.shape)
        assert topk_precision(slight, truth, 3) > topk_precision(heavy, truth, 3)

    def test_recall_curve_keys(self, trace):
        curve = topk_recall_curve(trace, trace, 3)
        assert set(curve) == {1, 2, 3}
        assert all(v == 1.0 for v in curve.values())

    def test_rank_displacement_zero_for_exact(self, trace):
        assert rank_displacement(trace, trace, 2) == 0.0

    def test_rank_displacement_positive_when_swapped(self, trace):
        swapped = trace[:, [3, 2, 1, 0]]
        assert rank_displacement(swapped, trace, 2) > 0

    def test_invalid_k(self, trace):
        with pytest.raises(InvalidParameterError):
            topk_precision(trace, trace, 0)
        with pytest.raises(InvalidParameterError):
            topk_precision(trace, trace, 5)

    def test_shape_mismatch(self, trace):
        with pytest.raises(InvalidParameterError):
            topk_precision(trace, trace[:1], 2)


class TestCUSUM:
    def test_detects_a_level_shift(self):
        series = np.concatenate([np.full(50, 0.1), np.full(50, 0.3)])
        alarms = cusum_detect(series, drift=0.05, threshold=0.2)
        assert any(50 <= t <= 55 for t in alarms)

    def test_quiet_on_constant_series(self):
        alarms = cusum_detect(np.full(100, 0.2), drift=0.01, threshold=0.1)
        assert alarms == []

    def test_detects_downward_shift(self):
        series = np.concatenate([np.full(40, 0.5), np.full(40, 0.2)])
        alarms = cusum_detect(series, drift=0.05, threshold=0.2)
        assert any(40 <= t <= 45 for t in alarms)

    def test_noise_robustness_via_drift(self, rng):
        series = 0.2 + rng.normal(0, 0.01, size=200)
        alarms = cusum_detect(series, drift=0.05, threshold=0.3)
        assert len(alarms) == 0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            cusum_detect(np.array([1.0]), drift=-0.1, threshold=1.0)
        with pytest.raises(InvalidParameterError):
            cusum_detect(np.array([1.0]), drift=0.1, threshold=0.0)
        with pytest.raises(InvalidParameterError):
            cusum_detect(np.empty(0), drift=0.1, threshold=1.0)


class TestScoring:
    def test_perfect_match(self):
        report = score_change_points([52, 101], [50, 100], tolerance=5)
        assert report.matched == 2
        assert report.recall == 1.0
        assert report.mean_delay == pytest.approx(1.5)
        assert report.false_alarms == 0

    def test_false_alarms_counted(self):
        report = score_change_points([10, 52], [50], tolerance=5)
        assert report.matched == 1
        assert report.false_alarms == 1

    def test_missed_points(self):
        report = score_change_points([], [50, 100], tolerance=5)
        assert report.matched == 0
        assert report.recall == 0.0
        assert np.isnan(report.mean_delay)

    def test_detection_cannot_precede_change(self):
        report = score_change_points([48], [50], tolerance=5)
        assert report.matched == 0
        assert report.false_alarms == 1

    def test_end_to_end_on_private_release(self):
        """LPA's release supports CUSUM change detection on a step stream."""
        from repro.analysis import monitored_statistic
        from repro.engine import run_stream
        from repro.streams import make_step

        stream = make_step(
            n_users=20_000, horizon=90, low=0.05, high=0.3, period=30, seed=6
        )
        result = run_stream("LPA", stream, epsilon=2.0, window=10, seed=2)
        series = monitored_statistic(result.releases)
        alarms = cusum_detect(series, drift=0.05, threshold=0.1)
        report = score_change_points(alarms, [30, 60], tolerance=8)
        assert report.recall >= 0.5
