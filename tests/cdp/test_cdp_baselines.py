"""Unit tests for the CDP substrate: Laplace baselines, BD and BA."""

import numpy as np
import pytest

from repro.cdp import BA, BD, CDPSample, CDPUniform, frequency_noise_scale
from repro.exceptions import InvalidParameterError


@pytest.fixture
def flat_stream():
    """A static (T=40, d=3) frequency matrix."""
    return np.tile(np.array([0.5, 0.3, 0.2]), (40, 1))


@pytest.fixture
def drifting_stream(rng):
    base = np.array([0.5, 0.3, 0.2])
    drift = np.cumsum(rng.normal(0, 0.01, size=(40, 3)), axis=0)
    freqs = np.clip(base + drift, 0.01, None)
    return freqs / freqs.sum(axis=1, keepdims=True)


class TestNoiseScale:
    def test_formula(self):
        assert frequency_noise_scale(1.0, 100) == pytest.approx(2.0 / 100)

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            frequency_noise_scale(0.0, 100)
        with pytest.raises(InvalidParameterError):
            frequency_noise_scale(1.0, 0)


class TestCDPUniform:
    def test_unbiased(self, flat_stream):
        result = CDPUniform().release(flat_stream, 10_000, 5.0, 5, seed=0)
        assert np.allclose(result.releases.mean(axis=0), [0.5, 0.3, 0.2], atol=0.01)

    def test_noise_scale_matches_budget_split(self, flat_stream):
        runs = [
            CDPUniform().release(flat_stream, 1_000, 1.0, 10, seed=s).releases
            for s in range(30)
        ]
        noise = np.concatenate([r - flat_stream for r in runs]).ravel()
        expected_std = np.sqrt(2) * frequency_noise_scale(0.1, 1_000)
        assert noise.std() == pytest.approx(expected_std, rel=0.1)

    def test_all_publish(self, flat_stream):
        result = CDPUniform().release(flat_stream, 1_000, 1.0, 5, seed=0)
        assert result.publication_count == flat_stream.shape[0]


class TestCDPSample:
    def test_publishes_once_per_window(self, flat_stream):
        result = CDPSample().release(flat_stream, 1_000, 1.0, 8, seed=0)
        publish_idx = [i for i, s in enumerate(result.strategies) if s == "publish"]
        assert publish_idx == [0, 8, 16, 24, 32]

    def test_approximations_repeat(self, flat_stream):
        result = CDPSample().release(flat_stream, 1_000, 1.0, 8, seed=0)
        for t in range(1, 8):
            assert np.array_equal(result.releases[t], result.releases[0])


@pytest.mark.parametrize("mechanism_cls", [BD, BA])
class TestAdaptiveCDP:
    def test_releases_shape(self, mechanism_cls, drifting_stream):
        result = mechanism_cls().release(drifting_stream, 10_000, 1.0, 5, seed=0)
        assert result.releases.shape == drifting_stream.shape

    def test_tracks_stream(self, mechanism_cls, drifting_stream):
        result = mechanism_cls().release(drifting_stream, 100_000, 2.0, 5, seed=0)
        mae = np.mean(np.abs(result.releases - drifting_stream))
        assert mae < 0.05

    def test_flat_stream_mostly_approximates(self, mechanism_cls, flat_stream):
        result = mechanism_cls().release(flat_stream, 100_000, 1.0, 5, seed=0)
        assert result.publication_count < flat_stream.shape[0] / 2

    def test_validation(self, mechanism_cls, flat_stream):
        with pytest.raises(InvalidParameterError):
            mechanism_cls().release(flat_stream, 0, 1.0, 5)
        with pytest.raises(InvalidParameterError):
            mechanism_cls().release(flat_stream, 100, -1.0, 5)
        with pytest.raises(InvalidParameterError):
            mechanism_cls().release(np.zeros(5), 100, 1.0, 5)


class TestBABudgetInvariant:
    def test_ba_beats_uniform_on_flat_stream(self, flat_stream):
        """Absorption concentrates budget: smaller error than uniform."""
        n, eps, w = 5_000, 1.0, 10
        uniform_err = []
        ba_err = []
        for seed in range(10):
            u = CDPUniform().release(flat_stream, n, eps, w, seed=seed)
            b = BA().release(flat_stream, n, eps, w, seed=seed)
            uniform_err.append(np.mean((u.releases - flat_stream) ** 2))
            ba_err.append(np.mean((b.releases - flat_stream) ** 2))
        assert np.mean(ba_err) < np.mean(uniform_err)
