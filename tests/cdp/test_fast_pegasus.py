"""Unit tests for the FAST and PeGaSus CDP substrates."""

import numpy as np
import pytest

from repro.cdp import FAST, PeGaSus, PIDController, ScalarKalmanFilter
from repro.exceptions import InvalidParameterError


class TestKalmanFilter:
    def test_converges_to_constant_signal(self):
        kf = ScalarKalmanFilter(process_variance=1e-6, measurement_variance=0.01)
        rng = np.random.default_rng(0)
        for _ in range(200):
            kf.predict()
            kf.correct(0.5 + rng.normal(0, 0.1))
        assert kf.x == pytest.approx(0.5, abs=0.05)

    def test_uncertainty_shrinks_with_observations(self):
        kf = ScalarKalmanFilter(process_variance=1e-6, measurement_variance=0.01)
        kf.predict()
        p0 = kf.p
        for _ in range(20):
            kf.predict()
            kf.correct(0.0)
        assert kf.p < p0

    def test_gain_in_unit_interval(self):
        kf = ScalarKalmanFilter(1e-4, 1e-2)
        kf.predict()
        assert 0.0 < kf.innovation_gain < 1.0

    def test_invalid_variances(self):
        with pytest.raises(InvalidParameterError):
            ScalarKalmanFilter(0.0, 1.0)
        with pytest.raises(InvalidParameterError):
            ScalarKalmanFilter(1.0, -1.0)


class TestPIDController:
    def test_zero_error_at_setpoint(self):
        pid = PIDController(kp=1.0, ki=0.0, kd=0.0, setpoint=0.1)
        assert pid.update(0.1) == pytest.approx(0.0)

    def test_proportional_response(self):
        pid = PIDController(kp=2.0, ki=0.0, kd=0.0, setpoint=0.0)
        assert pid.update(0.5) == pytest.approx(1.0)

    def test_integral_accumulates(self):
        pid = PIDController(kp=0.0, ki=1.0, kd=0.0, setpoint=0.0)
        pid.update(0.1)
        assert pid.update(0.1) == pytest.approx(0.2)


class TestFAST:
    @pytest.fixture
    def slow_stream(self, rng):
        t = np.arange(120)
        series = 0.3 + 0.05 * np.sin(0.05 * t)
        return np.column_stack([series, 1.0 - series])

    def test_release_shape(self, slow_stream):
        result = FAST(max_samples=20).release(slow_stream, 10_000, 1.0, 10, seed=0)
        assert result.releases.shape == slow_stream.shape

    def test_sample_budget_respected(self, slow_stream):
        fast = FAST(max_samples=15)
        result = fast.release(slow_stream, 10_000, 1.0, 10, seed=0)
        assert result.publication_count <= 15

    def test_tracks_slow_stream(self, slow_stream):
        result = FAST(max_samples=30).release(slow_stream, 100_000, 2.0, 10, seed=0)
        mae = np.mean(np.abs(result.releases - slow_stream))
        assert mae < 0.03

    def test_invalid_max_samples(self):
        with pytest.raises(InvalidParameterError):
            FAST(max_samples=0)


class TestPeGaSus:
    @pytest.fixture
    def piecewise_stream(self):
        level1 = np.tile([0.2, 0.8], (30, 1))
        level2 = np.tile([0.6, 0.4], (30, 1))
        return np.vstack([level1, level2])

    def test_release_shape(self, piecewise_stream):
        result = PeGaSus().release(piecewise_stream, 10_000, 1.0, 10, seed=0)
        assert result.releases.shape == piecewise_stream.shape

    def test_smoothing_beats_raw_perturbation(self, piecewise_stream):
        """Grouped smoothing reduces MSE vs pure Laplace noise in the
        noise-dominated regime PeGaSus targets (small population/budget)."""
        n, eps = 100, 0.3
        mse_pegasus, mse_raw = [], []
        for seed in range(20):
            result = PeGaSus(
                perturber_fraction=0.8, deviation_threshold=0.2
            ).release(piecewise_stream, n, eps, 10, seed=seed)
            rng = np.random.default_rng(seed + 100)
            raw = piecewise_stream + rng.laplace(
                0, 2.0 / (eps * n), size=piecewise_stream.shape
            )
            mse_pegasus.append(np.mean((result.releases - piecewise_stream) ** 2))
            mse_raw.append(np.mean((raw - piecewise_stream) ** 2))
        assert np.mean(mse_pegasus) < np.mean(mse_raw)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            PeGaSus(perturber_fraction=1.5)
        with pytest.raises(InvalidParameterError):
            PeGaSus(deviation_threshold=-0.1)
