"""Tests for the RescueDP substrate."""

import numpy as np
import pytest

from repro.cdp import RescueDP, group_dimensions
from repro.exceptions import InvalidParameterError


class TestGrouping:
    def test_similar_values_grouped(self):
        groups = group_dimensions(np.array([0.10, 0.11, 0.50, 0.51]), 0.05)
        as_sets = {frozenset(g.tolist()) for g in groups}
        assert frozenset({0, 1}) in as_sets
        assert frozenset({2, 3}) in as_sets

    def test_zero_tolerance_splits_distinct(self):
        groups = group_dimensions(np.array([0.1, 0.2, 0.3]), 0.0)
        assert len(groups) == 3

    def test_huge_tolerance_single_group(self):
        groups = group_dimensions(np.array([0.1, 0.2, 0.9]), 10.0)
        assert len(groups) == 1
        assert set(groups[0].tolist()) == {0, 1, 2}

    def test_partition_is_complete_and_disjoint(self, rng):
        values = rng.random(20)
        groups = group_dimensions(values, 0.1)
        seen = np.concatenate(groups)
        assert sorted(seen.tolist()) == list(range(20))


class TestRescueDP:
    @pytest.fixture
    def multi_stream(self, rng):
        base = np.array([0.3, 0.25, 0.2, 0.15, 0.1])
        drift = np.cumsum(rng.normal(0, 0.005, size=(80, 5)), axis=0)
        freqs = np.clip(base + drift, 0.01, None)
        return freqs / freqs.sum(axis=1, keepdims=True)

    def test_release_shape(self, multi_stream):
        result = RescueDP().release(multi_stream, 10_000, 1.0, 10, seed=0)
        assert result.releases.shape == multi_stream.shape

    def test_tracks_stream(self, multi_stream):
        result = RescueDP().release(multi_stream, 100_000, 2.0, 10, seed=0)
        assert np.mean(np.abs(result.releases - multi_stream)) < 0.05

    def test_budget_window_bounded(self, multi_stream):
        """Internal ledger keeps any w consecutive sampling budgets <= eps.
        Verified indirectly: with tiny budget the mechanism still runs and
        samples sparsely instead of crashing."""
        result = RescueDP().release(multi_stream, 10_000, 0.1, 5, seed=0)
        assert result.publication_count < multi_stream.shape[0]

    def test_samples_not_every_timestamp(self, multi_stream):
        result = RescueDP().release(multi_stream, 10_000, 1.0, 10, seed=0)
        assert 0 < result.publication_count < multi_stream.shape[0]

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            RescueDP(budget_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            RescueDP(grouping_tolerance=-1.0)

    def test_grouping_helps_on_many_small_cells(self, rng):
        """With many similar small cells, grouping shares noise and should
        beat FAST's independent per-cell observations at the same budget."""
        from repro.cdp import FAST

        d = 40
        base = np.full(d, 1.0 / d)
        freqs = np.tile(base, (60, 1))
        n, eps, w = 2_000, 0.5, 10
        rescue, fast = [], []
        for seed in range(6):
            r = RescueDP(grouping_tolerance=0.05).release(freqs, n, eps, w, seed=seed)
            f = FAST(max_samples=10).release(freqs, n, eps, w, seed=seed)
            rescue.append(np.mean((r.releases - freqs) ** 2))
            fast.append(np.mean((f.releases - freqs) ** 2))
        assert np.mean(rescue) < np.mean(fast)
