"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams import BinaryStream, MaterializedStream, make_lns, make_sin


@pytest.fixture
def rng():
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_binary_stream():
    """A small LNS-like binary stream: 2,000 users, 40 timestamps."""
    return make_lns(n_users=2_000, horizon=40, seed=7)


@pytest.fixture
def small_sin_stream():
    """A small Sin binary stream: 2,000 users, 40 timestamps."""
    return make_sin(n_users=2_000, horizon=40, seed=7)


@pytest.fixture
def tiny_multicat_stream(rng):
    """A 5-category materialised stream: 600 users, 25 timestamps."""
    values = rng.integers(0, 5, size=(25, 600))
    return MaterializedStream(values, domain_size=5)


@pytest.fixture
def constant_stream():
    """A stream whose histogram never changes (p = 0.2)."""
    probs = np.full(30, 0.2)
    return BinaryStream(probs, n_users=2_000, seed=3, name="const")
