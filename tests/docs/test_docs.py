"""Docs can't rot: link integrity + executable quickstart snippets.

Thin pytest shim over ``tools/check_docs.py`` (CI also runs it as a
script) so the tier-1 suite fails when a doc links to a moved file or a
fenced ``>>>`` snippet stops matching the library's behaviour.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def test_docs_suite_is_present():
    names = {path.name for path in checker.markdown_files()}
    for required in (
        "README.md",
        "ARCHITECTURE.md",
        "MECHANISMS.md",
        "QUERIES.md",
        "BENCHMARKS.md",
    ):
        assert required in names, f"missing doc: {required}"


def test_relative_links_resolve():
    problems = checker.check_links(checker.markdown_files())
    assert not problems, "\n".join(problems)


def test_quickstart_snippets_execute():
    problems, blocks = checker.run_doctests(checker.markdown_files())
    assert not problems, "\n".join(problems)
    # The suite must actually be exercising snippets, not silently
    # skipping everything because of a fence-regex regression.
    assert blocks >= 2


def test_link_checker_catches_breakage(tmp_path, monkeypatch):
    bad = tmp_path / "bad.md"
    bad.write_text("[dead](does-not-exist.md) and [ok](#anchor)")
    monkeypatch.setattr(checker, "DOC_DIRS", (tmp_path,))
    problems = checker.check_links(checker.markdown_files())
    assert len(problems) == 1
    assert "does-not-exist.md" in problems[0]


def test_doctest_runner_catches_failure(tmp_path, monkeypatch):
    bad = tmp_path / "bad.md"
    bad.write_text("```python\n>>> 1 + 1\n3\n```\n")
    monkeypatch.setattr(checker, "DOC_DIRS", (tmp_path,))
    problems, blocks = checker.run_doctests(checker.markdown_files())
    assert blocks == 1
    assert len(problems) == 1


def test_non_doctest_blocks_are_not_executed(tmp_path, monkeypatch):
    pseudo = tmp_path / "pseudo.md"
    pseudo.write_text(
        "```python\nthis is illustrative pseudo-code, not runnable\n```\n"
    )
    monkeypatch.setattr(checker, "DOC_DIRS", (tmp_path,))
    problems, blocks = checker.run_doctests(checker.markdown_files())
    assert blocks == 0
    assert not problems
