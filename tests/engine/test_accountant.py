"""Unit tests for the w-event LDP accountant."""

import numpy as np
import pytest

from repro.engine import WEventAccountant
from repro.exceptions import InvalidParameterError, PrivacyViolationError


class TestBasicCharging:
    def test_single_charge_within_budget(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=5)
        acc.charge(0, None, 0.5)
        assert acc.window_spend(0) == pytest.approx(0.5)

    def test_exact_budget_is_allowed(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=5)
        for t in range(5):
            acc.charge(t, None, 0.2)
        assert acc.max_window_spend == pytest.approx(1.0)

    def test_overspend_raises(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=5)
        acc.charge(0, None, 0.9)
        with pytest.raises(PrivacyViolationError):
            acc.charge(1, None, 0.2)

    def test_zero_charge_is_free(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=5)
        acc.charge(0, None, 1.0)
        acc.charge(1, None, 0.0)  # must not raise
        assert acc.window_spend(0) == pytest.approx(1.0)

    def test_negative_charge_rejected(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=5)
        with pytest.raises(InvalidParameterError):
            acc.charge(0, None, -0.1)


class TestWindowEviction:
    def test_budget_recovers_after_window(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=3)
        acc.charge(0, None, 1.0)
        # t=1, 2 are inside the window of the t=0 charge.
        with pytest.raises(PrivacyViolationError):
            acc.charge(2, None, 0.5)
        # Rebuild: the failed charge above still recorded spend? No — it
        # raised before recording?  It records then raises; use a fresh one.
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=3)
        acc.charge(0, None, 1.0)
        acc.charge(3, None, 1.0)  # t=0 charge expired: window [1..3]
        assert acc.window_spend(0) == pytest.approx(1.0)

    def test_sliding_sum_is_over_w_timestamps(self):
        acc = WEventAccountant(n_users=4, epsilon=1.0, window=4)
        for t in range(12):
            acc.charge(t, None, 0.25)
        assert acc.max_window_spend == pytest.approx(1.0)

    def test_time_must_be_monotone(self):
        acc = WEventAccountant(n_users=4, epsilon=1.0, window=4)
        acc.charge(5, None, 0.1)
        with pytest.raises(InvalidParameterError):
            acc.charge(4, None, 0.1)


class TestSubsetCharging:
    def test_disjoint_groups_full_budget(self):
        """Parallel composition: disjoint groups can each spend eps."""
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=5)
        acc.charge(0, np.array([0, 1, 2]), 1.0)
        acc.charge(1, np.array([3, 4, 5]), 1.0)
        acc.charge(2, np.array([6, 7]), 1.0)
        assert acc.max_window_spend == pytest.approx(1.0)

    def test_same_user_twice_in_window_raises(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=5)
        acc.charge(0, np.array([0, 1]), 1.0)
        with pytest.raises(PrivacyViolationError):
            acc.charge(1, np.array([1, 2]), 1.0)

    def test_same_user_after_window_ok(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=3)
        acc.charge(0, np.array([0]), 1.0)
        acc.charge(3, np.array([0]), 1.0)

    def test_out_of_range_ids_rejected(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=3)
        with pytest.raises(InvalidParameterError):
            acc.charge(0, np.array([10]), 0.1)

    def test_empty_group_is_noop(self):
        acc = WEventAccountant(n_users=10, epsilon=1.0, window=3)
        acc.charge(0, np.empty(0, dtype=np.int64), 1.0)
        assert acc.max_window_spend == 0.0


class TestEnforceFlag:
    def test_disabled_enforcement_records_only(self):
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=5, enforce=False)
        acc.charge(0, None, 0.8)
        acc.charge(1, None, 0.8)  # would violate, but only recorded
        assert acc.max_window_spend == pytest.approx(1.6)

    def test_snapshot_copy(self):
        acc = WEventAccountant(n_users=3, epsilon=1.0, window=5)
        acc.charge(0, np.array([1]), 0.4)
        snap = acc.spend_snapshot()
        snap[1] = 99.0
        assert acc.window_spend(1) == pytest.approx(0.4)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_users": 0, "epsilon": 1.0, "window": 5},
            {"n_users": 10, "epsilon": 0.0, "window": 5},
            {"n_users": 10, "epsilon": 1.0, "window": 0},
        ],
    )
    def test_bad_constructor_args(self, kwargs):
        with pytest.raises(InvalidParameterError):
            WEventAccountant(**kwargs)


class TestWindowEdgeCases:
    """Boundary regimes: w larger than the run, w == 1, and re-release
    spend accounting exactly at the window boundary."""

    def test_window_larger_than_horizon_never_evicts(self):
        # w = 100 over a 10-step run: nothing ever leaves the window, so
        # the whole run must fit inside one epsilon.
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=100)
        for t in range(10):
            acc.charge(t, None, 0.1)
        assert acc.max_window_spend == pytest.approx(1.0)
        acc2 = WEventAccountant(n_users=5, epsilon=1.0, window=100)
        for t in range(10):
            acc2.charge(t, None, 0.1)
        with pytest.raises(PrivacyViolationError):
            acc2.charge(10, None, 0.1)

    def test_window_larger_than_horizon_via_mechanism(self):
        """Uniform methods stay private even when w exceeds the horizon."""
        from repro.engine import run_stream
        from repro.streams import make_lns

        dataset = make_lns(n_users=200, horizon=6, seed=1)
        result = run_stream("LBU", dataset, epsilon=1.0, window=50, seed=0)
        assert result.horizon == 6
        assert result.max_window_spend <= 1.0 + 1e-9

    def test_window_one_full_budget_every_timestamp(self):
        # w = 1: each timestamp is its own window; full epsilon every t.
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=1)
        for t in range(20):
            acc.charge(t, None, 1.0)
        assert acc.max_window_spend == pytest.approx(1.0)

    def test_window_one_two_charges_same_timestamp_violate(self):
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=1)
        acc.charge(0, None, 0.6)
        with pytest.raises(PrivacyViolationError):
            acc.charge(0, None, 0.6)

    def test_window_one_via_mechanism(self):
        from repro.engine import run_stream
        from repro.streams import make_lns

        dataset = make_lns(n_users=200, horizon=8, seed=1)
        result = run_stream("LBU", dataset, epsilon=1.0, window=1, seed=0)
        assert result.max_window_spend <= 1.0 + 1e-9

    def test_re_release_exactly_at_window_boundary(self):
        # A full-budget release at t may be repeated no earlier than
        # t + w: at t + w - 1 the old charge is still inside the window.
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=4)
        acc.charge(0, None, 1.0)
        with pytest.raises(PrivacyViolationError):
            acc.charge(3, None, 1.0)  # window [0..3] still holds t=0
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=4)
        acc.charge(0, None, 1.0)
        acc.charge(4, None, 1.0)  # window [1..4]: t=0 spend evicted
        assert acc.max_window_spend == pytest.approx(1.0)
        assert acc.window_spend(0) == pytest.approx(1.0)

    def test_boundary_spend_recovers_incrementally(self):
        # Partial spends expire charge by charge, not all at once.
        acc = WEventAccountant(n_users=3, epsilon=1.0, window=3)
        acc.charge(0, None, 0.5)
        acc.charge(1, None, 0.5)  # window [/-1..1] holds 1.0 exactly
        with pytest.raises(PrivacyViolationError):
            acc.charge(2, None, 0.5)
        acc = WEventAccountant(n_users=3, epsilon=1.0, window=3)
        acc.charge(0, None, 0.5)
        acc.charge(1, None, 0.5)
        acc.charge(3, None, 0.5)  # t=0 expired, 1.0 in window [1..3]
        assert acc.max_window_spend == pytest.approx(1.0)
        with pytest.raises(PrivacyViolationError):
            acc.charge(3, None, 0.1)  # anything more at t=3 violates


class TestUniformFastPathAndChargeMany:
    """The scalar uniform ledger and its bulk kernel must be observably
    indistinguishable from the per-user array path."""

    def _mirror(self, n_users=12, epsilon=1.0, window=4, enforce=True):
        return (
            WEventAccountant(n_users, epsilon, window, enforce),
            WEventAccountant(n_users, epsilon, window, enforce),
        )

    def test_charge_many_equals_charge_loop(self):
        bulk, loop = self._mirror()
        bulk.charge_many(range(10), 0.2)
        for t in range(10):
            loop.charge(t, None, 0.2)
        assert bulk.max_window_spend == loop.max_window_spend
        assert bulk.total_charges == loop.total_charges
        assert np.array_equal(bulk.spend_snapshot(), loop.spend_snapshot())

    def test_charge_many_violation_at_same_timestamp(self):
        bulk, loop = self._mirror(window=5)
        with pytest.raises(PrivacyViolationError):
            bulk.charge_many(range(8), 0.3)
        with pytest.raises(PrivacyViolationError):
            for t in range(8):
                loop.charge(t, None, 0.3)
        assert bulk.max_window_spend == loop.max_window_spend
        assert bulk.total_charges == loop.total_charges

    def test_charge_many_evicts_like_charges(self):
        bulk, loop = self._mirror(window=3)
        bulk.charge_many(range(20), 0.3)
        for t in range(20):
            loop.charge(t, None, 0.3)
        assert bulk.window_spend(0) == loop.window_spend(0)
        assert bulk.max_window_spend == pytest.approx(0.9)

    def test_charge_many_time_order_enforced(self):
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=4)
        acc.charge_many([0, 1, 2], 0.1)
        with pytest.raises(InvalidParameterError):
            acc.charge_many([1], 0.1)

    def test_charge_many_rejects_negative_budget(self):
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=4)
        with pytest.raises(InvalidParameterError):
            acc.charge_many([0], -0.1)

    def test_group_charge_materializes_uniform_ledger(self):
        acc = WEventAccountant(n_users=6, epsilon=2.0, window=4)
        acc.charge_many([0, 1], 0.25)
        acc.charge(2, np.array([1, 3]), 0.5)
        snapshot = acc.spend_snapshot()
        assert snapshot[1] == pytest.approx(1.0)
        assert snapshot[0] == pytest.approx(0.5)
        assert acc.max_window_spend == pytest.approx(1.0)

    def test_charge_many_after_group_charge_falls_back(self):
        acc = WEventAccountant(n_users=6, epsilon=2.0, window=4)
        acc.charge(0, np.array([0]), 0.5)
        acc.charge_many([1, 2], 0.25)
        assert acc.window_spend(0) == pytest.approx(1.0)
        assert acc.window_spend(5) == pytest.approx(0.5)

    def test_uniform_window_spend_bounds_checked(self):
        acc = WEventAccountant(n_users=4, epsilon=1.0, window=2)
        acc.charge(0, None, 0.5)
        with pytest.raises(IndexError):
            acc.window_spend(4)

    def test_empty_charge_many_is_noop(self):
        acc = WEventAccountant(n_users=4, epsilon=1.0, window=2)
        acc.charge_many([], 0.5)
        assert acc.total_charges == 0


class TestChargeSpan:
    """The SoA span kernel must mirror charge_many on every observable."""

    def _mirror(self, n_users=12, epsilon=1.0, window=4, enforce=True):
        return (
            WEventAccountant(n_users, epsilon, window, enforce),
            WEventAccountant(n_users, epsilon, window, enforce),
        )

    def test_span_equals_charge_many(self):
        span, many = self._mirror(window=3)
        span.charge_span(0, 20, 0.3)
        many.charge_many(range(20), 0.3)
        assert span.max_window_spend == many.max_window_spend
        assert span.total_charges == many.total_charges
        assert span.window_spend(0) == many.window_spend(0)
        assert np.array_equal(span.spend_snapshot(), many.spend_snapshot())

    def test_span_violation_matches_charge_many(self):
        span, many = self._mirror(window=5)
        with pytest.raises(PrivacyViolationError):
            span.charge_span(0, 8, 0.3)
        with pytest.raises(PrivacyViolationError):
            many.charge_many(range(8), 0.3)
        assert span.max_window_spend == many.max_window_spend
        assert span.total_charges == many.total_charges

    def test_span_time_order_enforced(self):
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=4)
        acc.charge_span(0, 3, 0.1)
        with pytest.raises(InvalidParameterError):
            acc.charge_span(1, 2, 0.1)

    def test_span_after_group_charge_delegates(self):
        # A per-user charge de-uniformizes the ledger; the span must
        # fall back to the array path and still agree with charge_many.
        span, many = self._mirror(n_users=6, epsilon=2.0)
        for acc in (span, many):
            acc.charge(0, np.array([1, 3]), 0.5)
        span.charge_span(1, 4, 0.25)
        many.charge_many([1, 2, 3, 4], 0.25)
        assert np.array_equal(span.spend_snapshot(), many.spend_snapshot())
        assert span.max_window_spend == many.max_window_spend

    def test_empty_span_is_noop(self):
        acc = WEventAccountant(n_users=4, epsilon=1.0, window=2)
        acc.charge_span(0, 0, 0.5)
        assert acc.total_charges == 0

    def test_span_rejects_negative_budget(self):
        acc = WEventAccountant(n_users=5, epsilon=1.0, window=4)
        with pytest.raises(InvalidParameterError):
            acc.charge_span(0, 2, -0.1)


class TestLedgerRestore:
    """state_dict/load_state round trips: the satellite gap — a restored
    ledger must make the *same* future decisions as the live one, in
    both the scalar-uniform and the materialised per-event regimes,
    including charge_many spans that straddle window boundaries."""

    def _roundtrip(self, acc):
        twin = WEventAccountant(
            acc.n_users, acc.epsilon, acc.window, acc.enforce
        )
        twin.load_state(acc.state_dict())
        return twin

    def test_scalar_and_per_event_ledgers_agree_after_restore(self):
        """The same charge history through the uniform fast path and
        through the materialised array path leaves identical remaining
        budget after a snapshot/restore of each."""
        uniform = WEventAccountant(n_users=8, epsilon=1.0, window=4)
        perevent = WEventAccountant(n_users=8, epsilon=1.0, window=4)
        uniform.charge_many(range(6), 0.2)
        for t in range(6):
            perevent.charge(t, np.arange(8), 0.2)

        u_twin = self._roundtrip(uniform)
        p_twin = self._roundtrip(perevent)
        assert u_twin._uniform and not p_twin._uniform
        assert np.array_equal(u_twin.spend_snapshot(), p_twin.spend_snapshot())
        assert u_twin.max_window_spend == p_twin.max_window_spend

        # Identical remaining budget: both accept the same boundary
        # charge and both reject the same overdraft.
        for twin in (u_twin, p_twin):
            assert twin.window_spend(0) == pytest.approx(0.8)
            # Charging at t=6 evicts t=2 first (0.6 left in window), so
            # 0.4 exactly exhausts the budget.
            twin.charge(6, None, 0.4)
        for twin in (u_twin, p_twin):
            with pytest.raises(PrivacyViolationError):
                twin.charge(7, None, 0.5)

    def test_restore_preserves_uniform_regime(self):
        acc = WEventAccountant(n_users=8, epsilon=1.0, window=4)
        acc.charge_many(range(5), 0.1)
        twin = self._roundtrip(acc)
        assert twin._uniform
        assert twin._window_spend is None
        assert twin.window_spend(3) == acc.window_spend(3)

    def test_restore_preserves_materialized_regime(self):
        acc = WEventAccountant(n_users=8, epsilon=1.0, window=4)
        acc.charge(0, None, 0.1)
        acc.charge(1, np.array([2, 5]), 0.3)
        twin = self._roundtrip(acc)
        assert not twin._uniform
        assert np.array_equal(twin.spend_snapshot(), acc.spend_snapshot())
        # Group eviction still works on the restored deque.
        twin.charge(4, None, 0.1)
        acc.charge(4, None, 0.1)
        assert np.array_equal(twin.spend_snapshot(), acc.spend_snapshot())

    def test_charge_many_across_window_boundary_after_restore(self):
        """Restore mid-span, then a charge_many that evicts restored
        charges as it crosses the window boundary — the twin's evictions
        must mirror the live accountant's exactly."""
        acc = WEventAccountant(n_users=8, epsilon=1.0, window=3)
        acc.charge_many([0, 1, 2], 0.3)  # window full at 0.9
        twin = self._roundtrip(acc)
        # Crossing t=3 evicts the t=0 charge; t=4 evicts t=1; the span
        # is only legal because eviction keeps the window at 0.9.
        acc.charge_many([3, 4, 5], 0.3)
        twin.charge_many([3, 4, 5], 0.3)
        assert twin.window_spend(0) == acc.window_spend(0)
        assert twin.max_window_spend == acc.max_window_spend
        assert twin.total_charges == acc.total_charges
        assert twin._current_t == acc._current_t

    def test_restored_ledger_rejects_what_live_rejects(self):
        acc = WEventAccountant(n_users=4, epsilon=1.0, window=2)
        acc.charge(0, None, 0.9)
        twin = self._roundtrip(acc)
        with pytest.raises(PrivacyViolationError):
            acc.charge(1, None, 0.2)
        with pytest.raises(PrivacyViolationError):
            twin.charge(1, None, 0.2)
        # ... and both recover once the offending charge leaves the window.
        acc2 = WEventAccountant(n_users=4, epsilon=1.0, window=2)
        acc2.charge(0, None, 0.9)
        twin2 = self._roundtrip(acc2)
        twin2.charge(2, None, 0.9)
        acc2.charge(2, None, 0.9)
        assert twin2.window_spend(0) == acc2.window_spend(0)

    def test_state_dict_is_a_deep_copy(self):
        acc = WEventAccountant(n_users=4, epsilon=1.0, window=3)
        acc.charge(0, np.array([1]), 0.2)
        state = acc.state_dict()
        state["window_spend"][1] = 99.0
        state["charges"][0][1][0] = 3
        assert acc.window_spend(1) == pytest.approx(0.2)
        assert acc.state_dict()["charges"][0][1][0] == 1
