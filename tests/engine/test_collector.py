"""Unit tests for the collection engine."""

import numpy as np
import pytest

from repro.engine import Collector, TimestepContext, WEventAccountant
from repro.exceptions import InvalidParameterError, PrivacyViolationError
from repro.freq_oracles import GRR


def make_collector(stream, fast=True, epsilon=1.0, window=5, enforce=True):
    accountant = WEventAccountant(
        n_users=stream.n_users, epsilon=epsilon, window=window, enforce=enforce
    )
    return Collector(
        dataset=stream,
        oracle=GRR(),
        accountant=accountant,
        rng=np.random.default_rng(0),
        fast=fast,
    )


class TestCollect:
    def test_collect_all_users(self, small_binary_stream):
        collector = make_collector(small_binary_stream)
        estimate = collector.collect(0, 0.2)
        assert estimate.n_reports == small_binary_stream.n_users
        assert collector.total_reports == small_binary_stream.n_users

    def test_collect_subset(self, small_binary_stream):
        collector = make_collector(small_binary_stream)
        ids = np.arange(100)
        estimate = collector.collect(0, 1.0, user_ids=ids)
        assert estimate.n_reports == 100
        assert collector.total_reports == 100

    def test_estimate_tracks_subset_truth(self, small_binary_stream):
        collector = make_collector(small_binary_stream)
        estimate = collector.collect(0, 1.0, user_ids=np.arange(1_000))
        truth = small_binary_stream.true_frequencies(0)
        assert np.allclose(estimate.frequencies, truth, atol=0.1)

    def test_empty_group_rejected(self, small_binary_stream):
        collector = make_collector(small_binary_stream)
        with pytest.raises(InvalidParameterError):
            collector.collect(0, 1.0, user_ids=np.empty(0, dtype=np.int64))

    def test_slow_path_equivalent_interface(self, small_binary_stream):
        collector = make_collector(small_binary_stream, fast=False)
        estimate = collector.collect(0, 0.5)
        assert estimate.n_reports == small_binary_stream.n_users

    def test_accountant_is_charged(self, small_binary_stream):
        collector = make_collector(small_binary_stream, epsilon=1.0, window=5)
        collector.collect(0, 0.6)
        with pytest.raises(PrivacyViolationError):
            collector.collect(1, 0.6)

    def test_no_accountant_allowed(self, small_binary_stream):
        collector = Collector(
            dataset=small_binary_stream,
            oracle=GRR(),
            accountant=None,
            rng=np.random.default_rng(0),
        )
        collector.collect(0, 10.0)  # unmetered, must not raise


class TestTimestepContext:
    def test_binds_timestamp(self, small_binary_stream):
        collector = make_collector(small_binary_stream)
        ctx = TimestepContext(collector, 0)
        assert ctx.t == 0
        assert ctx.n_users == small_binary_stream.n_users
        assert ctx.domain_size == 2

    def test_collect_uses_bound_t(self, small_binary_stream):
        collector = make_collector(small_binary_stream, epsilon=5.0)
        ctx0 = TimestepContext(collector, 0)
        ctx0.collect(1.0)
        ctx1 = TimestepContext(collector, 1)
        estimate = ctx1.collect(1.0)
        truth = small_binary_stream.true_frequencies(1)
        assert np.allclose(estimate.frequencies, truth, atol=0.05)

    def test_oracle_exposed_for_error_prediction(self, small_binary_stream):
        collector = make_collector(small_binary_stream)
        ctx = TimestepContext(collector, 0)
        assert ctx.oracle.variance(1.0, 100, 2) > 0
