"""Backend parity for the optional compiled kernels.

The pure-numpy implementations are the conformance reference; the
pure-python loop forms are exactly what numba compiles, so asserting
``numpy == loop`` on every bucket shape the scheduler emits proves the
compiled backend bit-exact wherever numba is available — and the
``importorskip`` leg re-proves it against the real jitted kernels."""

import subprocess
import sys

import numpy as np
import pytest

from repro.engine import kernels_fast as kf

# (rows, n_users/d) shapes the SoA scheduler actually emits: singleton
# chunks, ragged tails, full truth chunks.
BLOCK_SHAPES = [(0, 7), (1, 1), (1, 50), (5, 33), (64, 20), (128, 300)]
DEBIAS_SHAPES = [(0, 4), (1, 2), (7, 16), (64, 128)]


def _block(rows, n_users, d, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, d, size=(rows, n_users), dtype=np.int64)


class TestNumpyVsLoopReference:
    @pytest.mark.parametrize("rows,n_users", BLOCK_SHAPES)
    def test_block_histograms(self, rows, n_users):
        d = 9
        block = _block(rows, n_users, d, seed=rows + n_users)
        got = kf.NUMPY_REFERENCE["block_histograms"](block, d)
        want = kf.LOOP_REFERENCE["block_histograms"](block, d)
        assert got.dtype == want.dtype == np.int64
        assert np.array_equal(got, want)
        # Columns sum back to the population: exact counting.
        if rows:
            assert np.array_equal(got.sum(axis=1), np.full(rows, n_users))

    @pytest.mark.parametrize("rows,d", DEBIAS_SHAPES)
    def test_debias_rows(self, rows, d):
        rng = np.random.default_rng(rows * 31 + d)
        supports = rng.integers(0, 500, size=(rows, d)).astype(np.float64)
        n_reports = rng.integers(1, 600, size=rows).astype(np.float64)
        p, q = 0.75, 1.0 / (1.0 + np.e)
        got = kf.NUMPY_REFERENCE["debias_rows"](supports, n_reports, p, q)
        want = kf.LOOP_REFERENCE["debias_rows"](supports, n_reports, p, q)
        # Bitwise equality, not allclose: the loop must evaluate the
        # same elementwise expression in the same order.
        assert np.array_equal(got, want)

    @pytest.mark.parametrize(
        "dis,err,expect",
        [
            ([], [], -1),
            ([1.0], [2.0], -1),
            ([3.0], [2.0], 0),
            ([0.1, 0.2, 5.0, 9.0], [1.0, 1.0, 1.0, 1.0], 2),
            ([0.1, np.nan, 5.0], [1.0, np.nan, np.inf], -1),
            ([2.0, 1.0], [np.nan, 0.5], 1),
        ],
    )
    def test_first_exceed(self, dis, err, expect):
        dis = np.asarray(dis, dtype=np.float64)
        err = np.asarray(err, dtype=np.float64)
        assert kf.NUMPY_REFERENCE["first_exceed"](dis, err) == expect
        assert kf.LOOP_REFERENCE["first_exceed"](dis, err) == expect


class TestBackendSelection:
    def test_active_backend_matches_references(self):
        d = 6
        block = _block(17, 40, d, seed=5)
        assert np.array_equal(
            kf.block_histograms(block, d),
            kf.NUMPY_REFERENCE["block_histograms"](block, d),
        )
        rng = np.random.default_rng(8)
        supports = rng.integers(0, 40, size=(17, d)).astype(np.float64)
        n = np.full(17, 40.0)
        assert np.array_equal(
            kf.debias_rows(supports, n, 0.6, 0.2),
            kf.NUMPY_REFERENCE["debias_rows"](supports, n, 0.6, 0.2),
        )

    def test_env_off_forces_numpy(self):
        code = (
            "import repro.engine.kernels_fast as kf; print(kf.backend())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"REPRO_FAST_KERNELS": "0", "PYTHONPATH": "src"},
            cwd=".",
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "numpy"

    def test_env_on_without_numba_warns_and_falls_back(self):
        code = (
            "import warnings, repro.engine.kernels_fast as kf;"
            "print(kf.backend())"
        )
        out = subprocess.run(
            [sys.executable, "-W", "error::RuntimeWarning", "-c", code],
            capture_output=True,
            text=True,
            env={"REPRO_FAST_KERNELS": "1", "PYTHONPATH": "src"},
            cwd=".",
        )
        try:
            import numba  # noqa: F401
        except ImportError:
            # No numba in this environment: the forced-on flag must warn
            # (escalated to an error here) rather than silently degrade.
            assert out.returncode != 0
            assert "RuntimeWarning" in out.stderr
        else:
            assert out.returncode == 0, out.stderr
            assert out.stdout.strip() == "numba"


class TestJittedParity:
    """Real compiled-kernel parity; skipped where numba is absent."""

    @pytest.fixture(scope="class")
    def jitted(self):
        pytest.importorskip("numba")
        return kf._load_numba()

    @pytest.mark.parametrize("rows,n_users", BLOCK_SHAPES)
    def test_block_histograms(self, jitted, rows, n_users):
        d = 9
        block = _block(rows, n_users, d, seed=rows * 7 + n_users)
        assert np.array_equal(
            jitted["block_histograms"](block, d),
            kf.NUMPY_REFERENCE["block_histograms"](block, d),
        )

    @pytest.mark.parametrize("rows,d", DEBIAS_SHAPES)
    def test_debias_rows(self, jitted, rows, d):
        rng = np.random.default_rng(rows + 97 * d)
        supports = rng.integers(0, 500, size=(rows, d)).astype(np.float64)
        n_reports = rng.integers(1, 600, size=rows).astype(np.float64)
        assert np.array_equal(
            jitted["debias_rows"](supports, n_reports, 0.7, 0.1),
            kf.NUMPY_REFERENCE["debias_rows"](supports, n_reports, 0.7, 0.1),
        )

    def test_first_exceed(self, jitted):
        dis = np.array([0.0, np.nan, 2.0, 3.0])
        err = np.array([1.0, np.nan, np.inf, 1.0])
        assert jitted["first_exceed"](dis, err) == 3
